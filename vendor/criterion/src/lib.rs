//! Offline drop-in subset of the `criterion` 0.3 API.
//!
//! The build environment for this workspace has no crates.io mirror, so the
//! real `criterion` crate cannot be fetched. This vendored stand-in keeps the
//! same bench-authoring surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`, `black_box`) and runs each
//! benchmark with a calibrated wall-clock loop, reporting min/median/mean
//! nanoseconds per iteration on stdout.
//!
//! It intentionally skips criterion's statistical machinery (outlier
//! classification, regression analysis, HTML reports); the numbers printed
//! here are honest medians over `sample_size` samples and are what the
//! documented performance tables in this repository quote.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to every group function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Creates a driver with criterion's defaults (used by `criterion_main!`).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Criterion {
            default_sample_size: 100,
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: calibrates an iteration count targeting a few
    /// milliseconds per sample, then times `sample_size` samples.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);

        // Warm-up + calibration: find how many closure calls fit in ~5 ms.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let target = Duration::from_millis(5);
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= target || bencher.iters >= 1 << 30 {
                break;
            }
            let grow = if bencher.elapsed.is_zero() {
                16
            } else {
                let ratio = target.as_nanos() / bencher.elapsed.as_nanos().max(1);
                (ratio as u64).clamp(2, 16)
            };
            bencher.iters = bencher.iters.saturating_mul(grow);
        }
        let iters = bencher.iters;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter_ns[0];
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        println!(
            "bench {full:<40} {:>12}/iter  (min {}, mean {}, {} samples x {iters} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean),
            per_iter_ns.len(),
        );
        self
    }

    /// Ends the group (report separator; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times the closure passed to [`Bencher::iter`] over a batch of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the calibrated number of iterations and records the
    /// total elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn_a, fn_b, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(group_a, group_b)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("us"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(12_300_000_000.0).ends_with('s'));
    }
}
