//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment for this workspace has no crates.io mirror, so the
//! real `proptest` crate cannot be fetched. This vendored stand-in keeps
//! the workspace's property tests running: it implements the `proptest!`
//! macro, the `Strategy` trait with `prop_map`, integer/float range and
//! tuple strategies, `collection::vec`, `array::uniform12/16`,
//! `sample::Index`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs via the panic
//!   message (the case index and seed), not a minimized counterexample.
//! * **Deterministic.** Cases derive from a fixed seed so CI failures
//!   reproduce locally byte-for-byte. Set `PROPTEST_CASES` to change the
//!   case count (default 64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
pub use rand::SeedableRng;

/// Everything a `proptest!` test body usually imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;

    /// Generates values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }
}

use strategy::Strategy;

/// Marker for types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical full-range strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A / 0, B / 1), (A / 0, B / 1, C / 2));

/// Collection strategies (subset: [`collection::vec`]).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number-of-elements specification: a fixed count or a half-open or
    /// inclusive range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies (subset: `uniform12`, `uniform16`).
pub mod array {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    macro_rules! uniform {
        ($name:ident, $n:expr, $doc:expr) => {
            #[doc = $doc]
            pub fn $name<S: Strategy>(element: S) -> Uniform<S, $n> {
                Uniform { element }
            }
        };
    }

    /// Strategy for `[S::Value; N]`.
    #[derive(Debug, Clone)]
    pub struct Uniform<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut StdRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.generate(rng))
        }
    }

    uniform!(uniform12, 12, "Generates `[T; 12]` arrays element-wise.");
    uniform!(uniform16, 16, "Generates `[T; 16]` arrays element-wise.");
}

/// Index-into-a-collection support (subset: [`sample::Index`]).
pub mod sample {
    use super::Arbitrary;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// An index drawn independently of the collection it will address:
    /// `index(len)` maps it uniformly into `0..len`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        #[must_use]
        pub fn index(self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            // Widening multiply keeps the mapping uniform and monotone.
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Test-case plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    /// Runs the configured number of deterministic cases.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `PROPTEST_CASES` deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::test_runner::Config::default();
                for case in 0..config.cases {
                    // Each (test, case) pair gets its own reproducible
                    // stream; the name hash decorrelates sibling tests.
                    let mut seed: u64 = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1);
                    for b in stringify!($name).bytes() {
                        seed = seed.wrapping_mul(31).wrapping_add(u64::from(b));
                    }
                    let mut proptest_rng =
                        <$crate::__StdRng as $crate::SeedableRng>::seed_from_u64(seed);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut proptest_rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {case} (seed {seed:#x}): {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case unless `cond` holds (counts as neither pass nor
/// fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn fixed_size_vec(v in crate::collection::vec(any::<u8>(), 16)) {
            prop_assert_eq!(v.len(), 16);
        }

        #[test]
        fn arrays_and_maps(a in crate::array::uniform16(any::<u8>())) {
            let doubled = crate::array::uniform16(any::<u8>())
                .prop_map(|arr: [u8; 16]| arr.len());
            let mut rng = <crate::__StdRng as crate::SeedableRng>::seed_from_u64(1);
            prop_assert_eq!(crate::strategy::Strategy::generate(&doubled, &mut rng), 16);
            prop_assert_eq!(a.len(), 16);
        }

        #[test]
        fn tuples_generate(pair in (0usize..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn index_maps_uniformly_into_len() {
        use crate::sample::Index;
        use crate::Arbitrary;
        let mut rng = <crate::__StdRng as crate::SeedableRng>::seed_from_u64(9);
        for _ in 0..100 {
            let idx = Index::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_context() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
