//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment for this workspace has no crates.io mirror, so the
//! real `rand` crate cannot be fetched. This vendored stand-in implements
//! exactly the surface the workspace uses — `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::random_range` and `Rng::random_bool` — on top of a
//! seeded xoshiro256++ generator.
//!
//! Determinism contract: for a fixed seed the stream is fixed forever. The
//! upstream `StdRng` makes **no** cross-version stream guarantee, so
//! swapping its ChaCha12 stream for xoshiro256++ here is within contract;
//! every experiment in this repository remains bit-reproducible against
//! *this* implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard open [0,1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample itself (mirrors `rand::distr`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by Lemire-style widening multiply with
/// rejection, so every bound is exactly uniform.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let wide = u128::from(x) * u128::from(bound);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // For floats the closed upper bound is measure-zero; reuse the
        // half-open sampler.
        (*self.start()..*self.end()).sample_from(rng)
    }
}

/// Named generators (subset: [`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(42);
    /// let mut b = StdRng::seed_from_u64(42);
    /// assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
    /// ```
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..u64::MAX),
                b.random_range(0u64..u64::MAX)
            );
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random_range(0u64..1 << 60), c.random_range(0u64..1 << 60));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(2..=16usize);
            assert!((2..=16).contains(&y));
            let f = rng.random_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_width_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.random_range(5u64..6), 5);
        assert_eq!(rng.random_range(9usize..=9), 9);
    }
}
