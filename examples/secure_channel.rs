//! Drive the *functional* secure channel end to end with real AES-GCM
//! bits: normal transfers, batched transfers with out-of-order delivery,
//! and a gallery of attacks that must all be detected.
//!
//! ```text
//! cargo run --release --example secure_channel
//! ```

use secure_mgpu::secure::channel::Endpoint;
use secure_mgpu::secure::key_exchange::KeyExchange;
use secure_mgpu::types::{MgpuError, NodeId};

fn main() {
    // Boot-time key exchange between the TEEs (paper §IV-A).
    let kx = KeyExchange::boot(*b"boot-master-key!");
    let mut gpu1 = Endpoint::new(NodeId::gpu(1), 4, &kx);
    let mut gpu2 = Endpoint::new(NodeId::gpu(2), 4, &kx);

    // --- 1. A protected cacheline transfer with replay-checked ACK. ---
    let cacheline = [0xC5u8; 64];
    let wire = gpu1.seal_block(gpu2.id(), &cacheline);
    println!(
        "block ctr={} ciphertext[..8]={:02x?}",
        wire.counter,
        &wire.ciphertext[..8]
    );
    let (plain, ack) = gpu2.open_block(&wire).expect("authentic block");
    assert_eq!(plain, cacheline);
    gpu1.accept_ack(&ack).expect("fresh ACK");
    println!("single block: decrypted and ACKed\n");

    // --- 2. A 16-block batch delivered out of order (lazy verification). ---
    let blocks: Vec<[u8; 64]> = (0..16u8).map(|i| [i; 64]).collect();
    let (mut wires, trailer) = gpu1.seal_batch(gpu2.id(), &blocks);
    println!(
        "batch id={} len={} batched MAC={:02x?}",
        trailer.id, trailer.len, trailer.mac
    );
    // The trailer races ahead; blocks arrive evens-then-odds.
    assert!(gpu2
        .accept_trailer(&trailer)
        .expect("no tamper yet")
        .is_none());
    wires.rotate_left(1); // mild reordering on top
    let mut ack = None;
    for wire in &wires {
        let (plain, maybe_ack) = gpu2.open_batched_block(wire).expect("lazy decrypt");
        assert_eq!(plain[0] as u64, wire.counter - 1); // payload matches counter
        if let Some(a) = maybe_ack {
            ack = Some(a);
        }
    }
    gpu1.accept_ack(&ack.expect("batch verified"))
        .expect("fresh batch ACK");
    println!("batch: all 16 blocks verified lazily, single ACK\n");

    // --- 3. Attack gallery: every tamper must be caught. ---
    println!("attack gallery:");

    // 3a. Bit-flip in flight.
    let mut flipped = gpu1.seal_block(gpu2.id(), &[1; 64]);
    flipped.ciphertext[13] ^= 0x40;
    match gpu2.open_block(&flipped) {
        Err(MgpuError::AuthenticationFailed { context }) => {
            println!("  bit-flip        -> rejected ({context})");
        }
        other => panic!("bit-flip not detected: {other:?}"),
    }

    // 3b. Replay of an earlier block.
    let wire = gpu1.seal_block(gpu2.id(), &[2; 64]);
    let (_, ack) = gpu2.open_block(&wire).expect("first delivery fine");
    gpu1.accept_ack(&ack).expect("fresh");
    match gpu2.open_block(&wire) {
        Err(MgpuError::ReplayDetected { counter }) => {
            println!("  block replay    -> rejected (stale counter {counter})");
        }
        other => panic!("replay not detected: {other:?}"),
    }

    // 3c. Forged ACK on the return path.
    let wire = gpu1.seal_block(gpu2.id(), &[3; 64]);
    let (_, mut ack) = gpu2.open_block(&wire).expect("delivery fine");
    ack.mac[0] ^= 1;
    match gpu1.accept_ack(&ack) {
        Err(MgpuError::AuthenticationFailed { .. }) => {
            println!("  forged ACK      -> rejected (MAC mismatch)");
        }
        other => panic!("forged ACK not detected: {other:?}"),
    }

    // 3d. Tampered block hidden inside a batch: caught at batch close.
    let blocks: Vec<[u8; 64]> = (0..4u8).map(|i| [i.wrapping_mul(41); 64]).collect();
    let (mut wires, trailer) = gpu1.seal_batch(gpu2.id(), &blocks);
    wires[2].ciphertext[0] ^= 2;
    for wire in &wires {
        // Lazy verification: decryption proceeds...
        gpu2.open_batched_block(wire).expect("lazy path continues");
    }
    match gpu2.accept_trailer(&trailer) {
        Err(MgpuError::AuthenticationFailed { .. }) => {
            println!("  batched tamper  -> rejected at batch verification");
        }
        other => panic!("batched tamper not detected: {other:?}"),
    }

    println!("\nall attacks detected; protocol holds.");
}
