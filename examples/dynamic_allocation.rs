//! Watch the paper's Dynamic OTP allocator adapt: a traffic pattern that
//! shifts between peers and directions, with the per-window buffer
//! allocation printed at each monitoring interval (paper §IV-B).
//!
//! ```text
//! cargo run --release --example dynamic_allocation
//! ```

use secure_mgpu::crypto::AesEngine;
use secure_mgpu::secure::schemes::{DynamicScheme, OtpScheme};
use secure_mgpu::types::{Cycle, Direction, Duration, NodeId, SystemConfig};

fn print_allocation(scheme: &DynamicScheme, label: &str) {
    print!("{label:28}");
    for peer in NodeId::gpu(1).peers(4) {
        print!(
            "  {peer}: S={} R={}",
            scheme.depth(peer, Direction::Send),
            scheme.depth(peer, Direction::Recv)
        );
    }
    println!();
}

fn main() {
    let cfg = SystemConfig::paper_4gpu();
    let mut engine = AesEngine::new(cfg.security.aes_latency);
    let mut scheme = DynamicScheme::new(NodeId::gpu(1), &cfg, &mut engine);

    println!(
        "GPU1's OTP buffer pool: {} entries, re-partitioned every {} (α={}, β={})\n",
        cfg.total_otp_buffers_per_node(),
        cfg.security.dynamic.interval,
        cfg.security.dynamic.alpha,
        cfg.security.dynamic.beta,
    );
    print_allocation(&scheme, "boot (even, like Private)");

    // Phase 1: heavy sends to GPU2 (e.g. GPU1 produces tiles GPU2 consumes).
    let mut now = Cycle::new(1);
    for _ in 0..5 {
        for _ in 0..60 {
            scheme.on_send(now, NodeId::gpu(2), &mut engine);
            now += Duration::cycles(15);
        }
        scheme.advance(now, &mut engine);
    }
    print_allocation(&scheme, "after send-heavy to GPU2");

    // Phase 2: the kernel flips — GPU1 now mostly pulls from GPU4.
    for _ in 0..5 {
        for i in 0..60u64 {
            let ctr = i; // receive path tracks the sender's counters
            let _ = ctr;
            scheme.on_recv(
                now,
                NodeId::gpu(4),
                recv_ctr(&scheme, NodeId::gpu(4)),
                &mut engine,
            );
            now += Duration::cycles(15);
        }
        scheme.advance(now, &mut engine);
    }
    print_allocation(&scheme, "after recv-heavy from GPU4");

    // Phase 3: balanced chatter with the CPU.
    for _ in 0..5 {
        for _ in 0..30 {
            scheme.on_send(now, NodeId::CPU, &mut engine);
            now += Duration::cycles(15);
            scheme.on_recv(
                now,
                NodeId::CPU,
                recv_ctr(&scheme, NodeId::CPU),
                &mut engine,
            );
            now += Duration::cycles(15);
        }
        scheme.advance(now, &mut engine);
    }
    print_allocation(&scheme, "after balanced CPU traffic");

    println!(
        "\n{} re-allocations performed; pool stayed at {} entries throughout.",
        scheme.rebalances(),
        scheme.allocated()
    );
}

/// The next in-sync counter for the receive window from `peer` (keeps the
/// demonstration's receive path hitting, as a synchronized sender would).
fn recv_ctr(scheme: &DynamicScheme, peer: NodeId) -> u64 {
    scheme.recv_next_counter(peer)
}
