//! Quickstart: simulate one benchmark on the paper's 4-GPU system and
//! print what securing the communication costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use secure_mgpu::system::Simulation;
use secure_mgpu::types::{Direction, OtpSchemeKind, SystemConfig};
use secure_mgpu::workloads::Benchmark;

fn main() {
    // The paper's baseline system: 4 GPUs + CPU, NVLink2-class fabric,
    // 40-cycle AES-GCM engines, OTP 4x buffers (Table III).
    let mut config = SystemConfig::paper_4gpu();
    let benchmark = Benchmark::MatrixMultiplication;
    let requests_per_gpu = 1_000;

    // 1. Unsecure baseline.
    config.security.scheme = OtpSchemeKind::Unsecure;
    let baseline =
        Simulation::new(config.clone(), benchmark, 42).run_for_requests(requests_per_gpu);

    // 2. The paper's full proposal: Dynamic OTP management + batching.
    config.security.scheme = OtpSchemeKind::Dynamic;
    config.security.batching.enabled = true;
    let secured = Simulation::new(config.clone(), benchmark, 42).run_for_requests(requests_per_gpu);

    println!("benchmark        : {benchmark} ({})", benchmark.suite());
    println!(
        "requests         : {} ({} blocks)",
        secured.requests, secured.blocks
    );
    println!("unsecure time    : {}", baseline.total_cycles);
    println!("secured time     : {}", secured.total_cycles);
    println!(
        "slowdown         : {:.1}%",
        (secured.normalized_time(&baseline).unwrap_or(1.0) - 1.0) * 100.0
    );
    println!(
        "traffic increase : {:.1}%",
        (secured.traffic_ratio(&baseline).unwrap_or(1.0) - 1.0) * 100.0
    );
    println!(
        "send pads hidden : {:.1}%",
        secured.otp.hidden_fraction(Direction::Send) * 100.0
    );
    println!(
        "recv pads hidden : {:.1}%",
        secured.otp.hidden_fraction(Direction::Recv) * 100.0
    );
    println!(
        "batch occupancy  : {:.1} blocks",
        secured.mean_batch_occupancy
    );
}
