//! Compare every OTP buffer management scheme across the benchmark suite
//! — a miniature of the paper's Figs. 9 and 21.
//!
//! ```text
//! cargo run --release --example scheme_comparison [requests-per-gpu]
//! ```

use secure_mgpu::system::runner::{compare_schemes, configs};
use secure_mgpu::types::SystemConfig;
use secure_mgpu::workloads::Benchmark;

fn main() {
    let per_gpu: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let base = SystemConfig::paper_4gpu();
    let cfgs = vec![
        ("private-4x".to_string(), configs::private(&base, 4)),
        ("shared".to_string(), configs::shared(&base, 4)),
        ("cached-4x".to_string(), configs::cached(&base, 4)),
        ("dynamic-4x".to_string(), configs::dynamic(&base, 4)),
        ("batching-4x".to_string(), configs::batching(&base, 4)),
    ];

    println!(
        "{:8} {:>11} {:>9} {:>11} {:>11} {:>11}",
        "bench", "private-4x", "shared", "cached-4x", "dynamic-4x", "batching-4x"
    );
    let mut sums = vec![0.0f64; cfgs.len()];
    let suite = Benchmark::ALL;
    for bench in suite {
        let results = compare_schemes(bench, &cfgs, per_gpu, 42);
        print!("{:8}", bench.abbrev());
        for (i, r) in results.iter().enumerate() {
            print!(" {:>11.3}", r.normalized_time);
            sums[i] += r.normalized_time.ln();
        }
        println!();
    }
    print!("{:8}", "geomean");
    for s in &sums {
        print!(" {:>11.3}", (s / suite.len() as f64).exp());
    }
    println!();
    println!();
    println!("(normalized execution time vs the unsecure 4-GPU system; lower is better)");
}
