//! Break interconnect traffic down by class and show how batching
//! amortizes security metadata, plus the burstiness statistics the
//! batching design relies on (paper §III-B, Figs. 12/15/23).
//!
//! ```text
//! cargo run --release --example traffic_analysis [benchmark-abbrev]
//! ```

use secure_mgpu::sim::link::TrafficClass;
use secure_mgpu::system::runner::configs;
use secure_mgpu::system::Simulation;
use secure_mgpu::types::{OtpSchemeKind, SystemConfig};
use secure_mgpu::workloads::{Benchmark, Trace, TrafficModel};

fn main() {
    let wanted = std::env::args().nth(1);
    let bench = wanted
        .as_deref()
        .and_then(|abbr| Benchmark::ALL.into_iter().find(|b| b.abbrev() == abbr))
        .unwrap_or(Benchmark::MatrixTranspose);
    let base = SystemConfig::paper_4gpu();
    let per_gpu = 1_000;

    // Burstiness of the raw communication pattern.
    let trace = Trace::new(TrafficModel::new(bench, 4, 42).generate_all(per_gpu * 4));
    println!("benchmark: {bench} ({})", bench.suite());
    println!(
        "16-block groups within 160 cycles: {:.1}% (paper avg: 69.2%)",
        trace.accumulation_fraction_within(16, 160) * 100.0
    );
    println!(
        "32-block groups within 160 cycles: {:.1}% (paper avg: 44.2%)\n",
        trace.accumulation_fraction_within(32, 160) * 100.0
    );
    println!(
        "16-block accumulation histogram:\n{}",
        trace.accumulation_histogram(16)
    );

    // Traffic breakdown: unsecure vs Private vs the full batched scheme.
    let mut unsecure_cfg = base.clone();
    unsecure_cfg.security.scheme = OtpSchemeKind::Unsecure;
    let runs = [
        ("unsecure", unsecure_cfg),
        ("private-4x", configs::private(&base, 4)),
        ("ours (dyn+batch)", configs::batching(&base, 4)),
    ];
    println!(
        "{:18} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "config", "data", "counter", "mac", "id", "ack", "batchhdr", "total"
    );
    let mut baseline_total = None;
    for (label, cfg) in runs {
        let report = Simulation::new(cfg, bench, 42).run_for_requests(per_gpu);
        let t = &report.traffic;
        let kb = |c: TrafficClass| format!("{:.0}K", t.get(c).as_u64() as f64 / 1024.0);
        let total = t.total().as_u64();
        let suffix = match baseline_total {
            None => {
                baseline_total = Some(total);
                String::new()
            }
            Some(base_total) => format!(
                " ({:+.1}%)",
                (total as f64 / base_total as f64 - 1.0) * 100.0
            ),
        };
        println!(
            "{label:18} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6.0}K{suffix}",
            kb(TrafficClass::Data),
            kb(TrafficClass::Counter),
            kb(TrafficClass::Mac),
            kb(TrafficClass::SenderId),
            kb(TrafficClass::Ack),
            kb(TrafficClass::BatchHeader),
            total as f64 / 1024.0,
        );
    }
    println!("\n(batching keeps per-block counters but amortizes MACs and ACKs per batch)");
}
