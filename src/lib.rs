//! Umbrella crate for the secure multi-GPU communication workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single crate. See the individual
//! crates for details:
//!
//! * [`types`] — shared identifiers, units and configuration.
//! * [`crypto`] — from-scratch AES-128 / CTR / GHASH / AES-GCM plus the
//!   pipelined engine timing model.
//! * [`sim`] — discrete-event multi-GPU simulator substrate.
//! * [`workloads`] — synthetic models of the paper's 17 benchmarks.
//! * [`secure`] — the paper's contribution: OTP buffer management schemes
//!   (Private / Shared / Cached / Dynamic) and security-metadata batching.
//! * [`system`] — full-system composition and metrics.
//! * [`experiments`] — the per-table/per-figure reproduction harness.
//!
//! # Examples
//!
//! ```
//! use secure_mgpu::types::SystemConfig;
//! use secure_mgpu::system::Simulation;
//! use secure_mgpu::workloads::Benchmark;
//!
//! let cfg = SystemConfig::paper_4gpu();
//! let report = Simulation::new(cfg, Benchmark::MatrixMultiplication, 1)
//!     .run_for_requests(2_000);
//! assert!(report.total_cycles.as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mgpu_crypto as crypto;
pub use mgpu_experiments as experiments;
pub use mgpu_secure as secure;
pub use mgpu_sim as sim;
pub use mgpu_system as system;
pub use mgpu_types as types;
pub use mgpu_workloads as workloads;
