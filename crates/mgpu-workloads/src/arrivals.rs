//! Open-loop serving arrivals: seeded Poisson / MMPP inter-arrival
//! processes with Zipf-skewed destination mixes and per-request SLO
//! deadlines.
//!
//! Unlike [`TrafficModel`](crate::TrafficModel) — which replays a batch
//! kernel's bursty pull pattern — this module models *request serving*:
//! an open-loop stream of independent remote accesses whose arrival times
//! are governed by an offered load, not by the progress of a kernel. What
//! matters downstream is tail latency against each request's deadline,
//! reported by the system layer's latency stamps.
//!
//! All randomness comes from a seeded [`rand::rngs::StdRng`] with one
//! stream per `(seed, requester)`, so traces are bit-reproducible.

use crate::request::Request;
use mgpu_types::{Cycle, Duration, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The inter-arrival process of one GPU's request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential gaps with the given mean (cycles).
    /// The classic open-loop load generator — `mean_gap = 1/λ`.
    Poisson {
        /// Mean inter-arrival gap in cycles (`1/λ`).
        mean_gap: f64,
    },
    /// Markov-modulated Poisson process: a two-state on/off chain where
    /// each state is itself Poisson with its own gap, and dwell times in
    /// each state are exponential. Models bursty serving traffic (request
    /// floods separated by lulls) while staying fully seeded.
    Mmpp {
        /// Mean inter-arrival gap while in the *on* (burst) state.
        on_gap: f64,
        /// Mean inter-arrival gap while in the *off* (lull) state.
        off_gap: f64,
        /// Mean dwell time in each state, in cycles.
        mean_dwell: f64,
    },
}

impl ArrivalProcess {
    /// A Poisson process with the given mean inter-arrival gap (cycles).
    ///
    /// # Panics
    ///
    /// Panics unless `mean_gap` is positive and finite.
    #[must_use]
    pub fn poisson(mean_gap: f64) -> Self {
        assert!(
            mean_gap > 0.0 && mean_gap.is_finite(),
            "mean_gap must be positive and finite, got {mean_gap}"
        );
        ArrivalProcess::Poisson { mean_gap }
    }

    /// A bursty on/off MMPP that preserves the *time-averaged* arrival
    /// rate of [`poisson(mean_gap)`](ArrivalProcess::poisson): with equal
    /// expected dwell in both states, the on-state rate is `burst_factor`
    /// times the off-state rate while `(λ_on + λ_off) / 2 = 1 / mean_gap`.
    /// `burst_factor = 1` degenerates to plain Poisson.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_gap`, `burst_factor ≥ 1` and `mean_dwell` are
    /// positive and finite.
    #[must_use]
    pub fn bursty(mean_gap: f64, burst_factor: f64, mean_dwell: f64) -> Self {
        assert!(
            mean_gap > 0.0 && mean_gap.is_finite(),
            "mean_gap must be positive and finite, got {mean_gap}"
        );
        assert!(
            burst_factor >= 1.0 && burst_factor.is_finite(),
            "burst_factor must be >= 1, got {burst_factor}"
        );
        assert!(
            mean_dwell > 0.0 && mean_dwell.is_finite(),
            "mean_dwell must be positive and finite, got {mean_dwell}"
        );
        // λ_on = 2λ·f/(1+f), λ_off = 2λ/(1+f) keeps the mean rate at λ.
        let on_gap = mean_gap * (1.0 + burst_factor) / (2.0 * burst_factor);
        let off_gap = mean_gap * (1.0 + burst_factor) / 2.0;
        ArrivalProcess::Mmpp {
            on_gap,
            off_gap,
            mean_dwell,
        }
    }

    /// The time-averaged mean inter-arrival gap in cycles.
    #[must_use]
    pub fn mean_gap(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => mean_gap,
            // Equal expected dwell in both states: average the rates.
            ArrivalProcess::Mmpp {
                on_gap, off_gap, ..
            } => 2.0 / (1.0 / on_gap + 1.0 / off_gap),
        }
    }
}

/// Exponential gap with the given mean, rounded to whole cycles.
fn exp_gap(rng: &mut StdRng, mean: f64) -> u64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    (-mean * u.ln()).round() as u64
}

/// Open-loop serving-trace generator: one request stream per GPU with the
/// configured arrival process, a Zipf-skewed destination mix, and an
/// absolute deadline stamped on every request.
///
/// # Examples
///
/// ```
/// use mgpu_workloads::{ArrivalProcess, ServingModel};
/// use mgpu_types::{Duration, NodeId};
///
/// let model = ServingModel::new(4, 42, ArrivalProcess::poisson(50.0))
///     .with_zipf(1.2)
///     .with_deadline(Duration::cycles(2_000));
/// let a = model.generate_for(NodeId::gpu(1), 100);
/// let b = model.generate_for(NodeId::gpu(1), 100);
/// assert_eq!(a, b, "same seed, same trace");
/// assert!(a.iter().all(|r| r.deadline.is_some()));
/// ```
#[derive(Debug, Clone)]
pub struct ServingModel {
    gpu_count: u16,
    seed: u64,
    process: ArrivalProcess,
    /// Zipf skew exponent `s` over each requester's peer list; `0` is
    /// uniform, larger is more skewed toward the hot peer.
    zipf_s: f64,
    /// Relative SLO budget added to each arrival time, or `None` for
    /// deadline-free requests.
    deadline: Option<Duration>,
    /// Memoized Zipf CDF. The peer count `n` is fixed per model (every
    /// requester has the same number of peers) and `s` is fixed after
    /// construction, so the CDF is a pure function of the model — built
    /// once on first use instead of per `generate_for` call.
    zipf_cache: std::cell::OnceCell<Vec<f64>>,
}

impl ServingModel {
    /// Creates a serving generator for a system with `gpu_count` GPUs.
    ///
    /// Defaults: uniform destination mix (`s = 0`), no deadlines.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count < 2`.
    #[must_use]
    pub fn new(gpu_count: u16, seed: u64, process: ArrivalProcess) -> Self {
        assert!(gpu_count >= 2, "need at least 2 GPUs for remote traffic");
        ServingModel {
            gpu_count,
            seed,
            process,
            zipf_s: 0.0,
            deadline: None,
            zipf_cache: std::cell::OnceCell::new(),
        }
    }

    /// Sets the Zipf skew exponent of the destination mix.
    ///
    /// # Panics
    ///
    /// Panics unless `s` is non-negative and finite.
    #[must_use]
    pub fn with_zipf(mut self, s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "zipf s must be >= 0, got {s}");
        self.zipf_s = s;
        // The memoized CDF is a function of `s`; invalidate it.
        self.zipf_cache = std::cell::OnceCell::new();
        self
    }

    /// Stamps every generated request with `available_at + budget` as its
    /// absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// The configured arrival process.
    #[must_use]
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    fn rng_for(&self, requester: NodeId) -> StdRng {
        // Distinct, stable stream per (seed, requester); a different
        // mixing constant than TrafficModel so the two families never
        // alias on the same seed.
        let mix = self
            .seed
            .wrapping_mul(0xD1B5_4A32_D192_ED03)
            .wrapping_add(u64::from(requester.raw()) << 32);
        StdRng::seed_from_u64(mix)
    }

    /// The requester's peers in Zipf rank order (hottest first). The
    /// ranking is rotated by the requester index so each tenant has its
    /// own hot peer instead of the whole system piling onto one node.
    fn ranked_peers(&self, requester: NodeId) -> Vec<NodeId> {
        let peers: Vec<NodeId> = requester.peers(self.gpu_count).collect();
        let n = peers.len();
        let off = requester.raw() as usize % n;
        (0..n).map(|i| peers[(i + off) % n]).collect()
    }

    /// Cumulative Zipf weights over `n` ranks: `w_i ∝ (i + 1)^-s`.
    /// Memoized on the model — `n` and `s` are both fixed per model, so
    /// the vector is built exactly once across all `generate_for` calls.
    fn zipf_cdf(&self, n: usize) -> &[f64] {
        let cdf = self.zipf_cache.get_or_init(|| {
            let mut cdf = Vec::with_capacity(n);
            let mut acc = 0.0;
            for i in 0..n {
                acc += 1.0 / ((i + 1) as f64).powf(self.zipf_s);
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            cdf
        });
        assert_eq!(cdf.len(), n, "peer count is fixed per model");
        cdf
    }

    /// Generates `count` open-loop requests for `requester`.
    #[must_use]
    pub fn generate_for(&self, requester: NodeId, count: usize) -> Vec<Request> {
        let mut rng = self.rng_for(requester);
        let peers = self.ranked_peers(requester);
        let cdf = self.zipf_cdf(peers.len());
        let mut requests = Vec::with_capacity(count);

        // MMPP state; unused (but kept deterministic) for plain Poisson.
        let mut on = true;
        let mut state_end = match self.process {
            ArrivalProcess::Poisson { .. } => Cycle::new(u64::MAX),
            ArrivalProcess::Mmpp { mean_dwell, .. } => {
                Cycle::ZERO + Duration::cycles(exp_gap(&mut rng, mean_dwell))
            }
        };

        let mut now = Cycle::ZERO;
        while requests.len() < count {
            let gap = match self.process {
                ArrivalProcess::Poisson { mean_gap } => exp_gap(&mut rng, mean_gap),
                ArrivalProcess::Mmpp {
                    on_gap,
                    off_gap,
                    mean_dwell,
                } => {
                    let gap = exp_gap(&mut rng, if on { on_gap } else { off_gap });
                    // Advance the modulating chain past this arrival.
                    while now + Duration::cycles(gap) >= state_end {
                        on = !on;
                        state_end += Duration::cycles(exp_gap(&mut rng, mean_dwell));
                    }
                    gap
                }
            };
            now += Duration::cycles(gap);
            let u: f64 = rng.random_range(0.0..1.0);
            let rank = cdf.partition_point(|&c| c < u).min(peers.len() - 1);
            let mut r = Request::direct(now, requester, peers[rank]);
            if let Some(budget) = self.deadline {
                r = r.with_deadline(now + budget);
            }
            requests.push(r);
        }
        requests
    }

    /// Generates the whole system's serving traffic: `count_per_gpu`
    /// requests per GPU, merged and sorted by availability time.
    #[must_use]
    pub fn generate_all(&self, count_per_gpu: usize) -> Vec<Request> {
        let mut all = Vec::with_capacity(count_per_gpu * usize::from(self.gpu_count));
        for gpu in 1..=self.gpu_count {
            all.extend(self.generate_for(NodeId::gpu(gpu), count_per_gpu));
        }
        all.sort_by_key(|r| (r.available_at, r.requester, r.target));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn top_peer_fraction(s: f64) -> f64 {
        let model = ServingModel::new(4, 7, ArrivalProcess::poisson(40.0)).with_zipf(s);
        let reqs = model.generate_for(NodeId::gpu(1), 4_000);
        let hot = model.ranked_peers(NodeId::gpu(1))[0];
        reqs.iter().filter(|r| r.target == hot).count() as f64 / reqs.len() as f64
    }

    #[test]
    fn seeded_determinism() {
        for process in [
            ArrivalProcess::poisson(80.0),
            ArrivalProcess::bursty(80.0, 8.0, 5_000.0),
        ] {
            let m = ServingModel::new(4, 42, process).with_deadline(Duration::cycles(1_000));
            let a = m.generate_for(NodeId::gpu(2), 500);
            let b = m.generate_for(NodeId::gpu(2), 500);
            assert_eq!(a, b, "same seed must reproduce bit-identically");
            let other = ServingModel::new(4, 43, process).generate_for(NodeId::gpu(2), 500);
            assert_ne!(a, other, "different seed must differ");
        }
    }

    #[test]
    fn distinct_streams_per_requester() {
        let m = ServingModel::new(4, 42, ArrivalProcess::poisson(60.0));
        assert_ne!(
            m.generate_for(NodeId::gpu(1), 200),
            m.generate_for(NodeId::gpu(2), 200)
        );
    }

    #[test]
    fn poisson_mean_gap_close_to_configured() {
        let mean = 120.0;
        let m = ServingModel::new(4, 1, ArrivalProcess::poisson(mean));
        let reqs = m.generate_for(NodeId::gpu(1), 20_000);
        let span = reqs.last().unwrap().available_at.as_u64() as f64;
        let empirical = span / (reqs.len() - 1) as f64;
        let rel = (empirical - mean).abs() / mean;
        assert!(rel < 0.05, "empirical mean gap {empirical} vs {mean}");
    }

    #[test]
    fn mmpp_preserves_average_rate() {
        let mean = 100.0;
        let m = ServingModel::new(4, 5, ArrivalProcess::bursty(mean, 6.0, 10_000.0));
        let reqs = m.generate_for(NodeId::gpu(1), 50_000);
        let span = reqs.last().unwrap().available_at.as_u64() as f64;
        let empirical = span / (reqs.len() - 1) as f64;
        let rel = (empirical - mean).abs() / mean;
        // Time-averaged rate matches Poisson's within a loose tolerance
        // (dwell randomness makes this noisier than plain Poisson).
        assert!(rel < 0.25, "empirical mean gap {empirical} vs {mean}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Dispersion test: the MMPP's gap variance must exceed Poisson's
        // at the same average rate (CoV^2 > 1 for an on/off MMPP).
        let gaps = |process: ArrivalProcess| -> Vec<f64> {
            let m = ServingModel::new(4, 9, process);
            let reqs = m.generate_for(NodeId::gpu(1), 20_000);
            reqs.windows(2)
                .map(|w| (w[1].available_at.as_u64() - w[0].available_at.as_u64()) as f64)
                .collect()
        };
        let cov2 = |g: &[f64]| {
            let mean = g.iter().sum::<f64>() / g.len() as f64;
            let var = g.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / g.len() as f64;
            var / (mean * mean)
        };
        let poisson = cov2(&gaps(ArrivalProcess::poisson(100.0)));
        let mmpp = cov2(&gaps(ArrivalProcess::bursty(100.0, 8.0, 20_000.0)));
        assert!(
            mmpp > poisson * 1.5,
            "mmpp CoV^2 {mmpp} should exceed poisson {poisson}"
        );
    }

    #[test]
    fn zipf_skew_monotone_in_s() {
        let f0 = top_peer_fraction(0.0);
        let f1 = top_peer_fraction(0.8);
        let f2 = top_peer_fraction(1.6);
        assert!(
            f0 < f1 && f1 < f2,
            "top-peer fraction must grow with s: {f0} {f1} {f2}"
        );
        // s = 0 is uniform over 4 peers.
        assert!((f0 - 0.25).abs() < 0.05, "uniform fraction {f0}");
    }

    #[test]
    fn deadlines_are_arrival_plus_budget() {
        let budget = Duration::cycles(1_500);
        let m = ServingModel::new(4, 3, ArrivalProcess::poisson(70.0)).with_deadline(budget);
        for r in m.generate_for(NodeId::gpu(2), 300) {
            assert_eq!(r.deadline, Some(r.available_at + budget));
        }
    }

    #[test]
    fn deadline_trace_roundtrips_through_text() {
        let m = ServingModel::new(4, 11, ArrivalProcess::bursty(90.0, 4.0, 8_000.0))
            .with_zipf(1.0)
            .with_deadline(Duration::cycles(2_000));
        let t = Trace::new(m.generate_all(100));
        let back: Trace = t.to_text().parse().unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn never_targets_self_and_covers_gpus() {
        let m = ServingModel::new(4, 2, ArrivalProcess::poisson(50.0)).with_zipf(0.9);
        let all = m.generate_all(250);
        assert_eq!(all.len(), 1_000);
        for r in &all {
            assert_ne!(r.target, r.requester);
        }
        for gpu in 1..=4u16 {
            assert!(all.iter().any(|r| r.requester == NodeId::gpu(gpu)));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_gpu_panics() {
        let _ = ServingModel::new(1, 0, ArrivalProcess::poisson(10.0));
    }

    #[test]
    #[should_panic(expected = "burst_factor")]
    fn sub_unit_burst_factor_panics() {
        let _ = ArrivalProcess::bursty(10.0, 0.5, 100.0);
    }

    #[test]
    fn mean_gap_accessor() {
        assert_eq!(ArrivalProcess::poisson(64.0).mean_gap(), 64.0);
        let b = ArrivalProcess::bursty(64.0, 8.0, 100.0);
        assert!((b.mean_gap() - 64.0).abs() < 1e-9);
    }
}
