//! The primary stochastic traffic generator.
//!
//! Each GPU's remote-request arrival process is a sequence of *bursts*
//! (geometric length around the benchmark's mean, fixed intra-burst
//! spacing) separated by exponential-ish idle gaps, with a per-phase hot
//! destination that rotates over time. All randomness is drawn from a
//! seeded [`rand::rngs::StdRng`], so every experiment is reproducible.

use crate::bench_params::{Benchmark, WorkloadParams};
use crate::request::Request;
use mgpu_types::{Cycle, Duration, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic, per-benchmark remote-traffic generator.
///
/// # Examples
///
/// ```
/// use mgpu_workloads::{Benchmark, TrafficModel};
/// use mgpu_types::NodeId;
///
/// let model = TrafficModel::new(Benchmark::PageRank, 4, 7);
/// let a = model.generate_for(NodeId::gpu(2), 100);
/// let b = model.generate_for(NodeId::gpu(2), 100);
/// assert_eq!(a, b, "same seed, same trace");
/// ```
#[derive(Debug, Clone)]
pub struct TrafficModel {
    benchmark: Benchmark,
    params: WorkloadParams,
    gpu_count: u16,
    seed: u64,
}

impl TrafficModel {
    /// Creates a generator for `benchmark` on a system with `gpu_count`
    /// GPUs, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count < 2`.
    #[must_use]
    pub fn new(benchmark: Benchmark, gpu_count: u16, seed: u64) -> Self {
        Self::with_params(benchmark, benchmark.params(), gpu_count, seed)
    }

    /// Creates a generator with explicit parameters (calibration sweeps,
    /// what-if studies).
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count < 2`.
    #[must_use]
    pub fn with_params(
        benchmark: Benchmark,
        params: WorkloadParams,
        gpu_count: u16,
        seed: u64,
    ) -> Self {
        assert!(gpu_count >= 2, "need at least 2 GPUs for remote traffic");
        TrafficModel {
            benchmark,
            params,
            gpu_count,
            seed,
        }
    }

    /// The modeled benchmark.
    #[must_use]
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The underlying parameters.
    #[must_use]
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    fn rng_for(&self, requester: NodeId) -> StdRng {
        // Distinct, stable stream per (seed, benchmark, requester).
        let mix = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(requester.raw()) << 32)
            .wrapping_add(self.benchmark as u64);
        StdRng::seed_from_u64(mix)
    }

    /// Samples a geometric-ish burst length with the configured mean
    /// (minimum 1).
    fn sample_burst_len(&self, rng: &mut StdRng) -> u32 {
        let mean = f64::from(self.params.burst_len_mean);
        // Uniform in [0.5, 1.5) × mean keeps the mean while varying size.
        let len = mean * rng.random_range(0.5..1.5);
        (len.round() as u32).max(1)
    }

    /// Samples the idle gap between bursts (exponential with the
    /// configured mean), scaled by the requester's current duty phase: a
    /// "producer" phase pulls less (longer gaps), a "consumer" phase pulls
    /// more — the send/receive asymmetry of the paper's Fig. 13.
    fn sample_inter_gap(&self, requester: NodeId, now: Cycle, rng: &mut StdRng) -> u64 {
        let phase = now.as_u64() / self.params.phase_len;
        let heavy = (phase + u64::from(requester.raw())).is_multiple_of(2);
        let duty = self.params.duty_variation;
        let factor = if heavy {
            1.0 - 0.6 * duty
        } else {
            1.0 + 2.0 * duty
        };
        let mean = self.params.inter_burst_gap_mean as f64 * factor;
        let u: f64 = rng.random_range(f64::EPSILON..1.0);
        (-mean * u.ln()).round() as u64
    }

    /// Picks a destination for a burst beginning at `now`.
    ///
    /// Per the paper's Fig. 14 analysis, "during a time interval, GPU1
    /// sends most of its send requests to the CPU or one or two remote
    /// GPUs": traffic concentrates on a primary and a secondary hot peer
    /// that both rotate with the phase, with only a small uniform
    /// remainder.
    fn pick_destination(&self, requester: NodeId, now: Cycle, rng: &mut StdRng) -> NodeId {
        // CPU traffic first: host orchestration, input/output pages.
        if rng.random_bool(self.params.cpu_weight) && !requester.is_cpu() {
            return NodeId::CPU;
        }
        let gpu_peers: Vec<NodeId> = requester
            .peers(self.gpu_count)
            .filter(|n| n.is_gpu())
            .collect();
        // Primary/secondary hot GPUs rotate per phase at different
        // strides, offset by the requester so traffic is not globally
        // synchronized on one victim.
        let phase = (now.as_u64() / self.params.phase_len) as usize;
        let n = gpu_peers.len();
        let hot = gpu_peers[(phase + requester.raw() as usize) % n];
        let hot2 = gpu_peers[(phase / 2 + requester.raw() as usize + 1) % n];
        if rng.random_bool(self.params.locality) {
            hot
        } else if rng.random_bool(0.75) && hot2 != hot {
            hot2
        } else {
            gpu_peers[rng.random_range(0..n)]
        }
    }

    /// Generates `count` remote requests for `requester`.
    ///
    /// Page-migration bursts emit a single [`AccessKind::PageMigration`]
    /// request (64 blocks at the transport level); direct bursts emit one
    /// request per block.
    #[must_use]
    pub fn generate_for(&self, requester: NodeId, count: usize) -> Vec<Request> {
        let mut rng = self.rng_for(requester);
        let mut requests = Vec::with_capacity(count);
        let mut now =
            Cycle::ZERO + Duration::cycles(self.sample_inter_gap(requester, Cycle::ZERO, &mut rng));
        while requests.len() < count {
            let dst = self.pick_destination(requester, now, &mut rng);
            if rng.random_bool(self.params.migration_fraction) {
                // One page migration replaces a whole burst.
                requests.push(Request::migration(now, requester, dst));
                now += Duration::cycles(64 * self.params.intra_burst_gap);
            } else {
                let len = self.sample_burst_len(&mut rng);
                for i in 0..len {
                    if requests.len() >= count {
                        break;
                    }
                    let t = now + Duration::cycles(u64::from(i) * self.params.intra_burst_gap);
                    requests.push(Request::direct(t, requester, dst));
                }
                now += Duration::cycles(u64::from(len) * self.params.intra_burst_gap);
            }
            now += Duration::cycles(self.sample_inter_gap(requester, now, &mut rng));
        }
        requests.truncate(count);
        requests
    }

    /// Generates the whole system's traffic: `count` requests per GPU
    /// (the CPU does not originate remote pulls in this model), merged and
    /// sorted by availability time.
    #[must_use]
    pub fn generate_all(&self, count_per_gpu: usize) -> Vec<Request> {
        let mut all = Vec::with_capacity(count_per_gpu * usize::from(self.gpu_count));
        for gpu in 1..=self.gpu_count {
            all.extend(self.generate_for(NodeId::gpu(gpu), count_per_gpu));
        }
        all.sort_by_key(|r| (r.available_at, r.requester, r.target));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AccessKind;
    use std::collections::BTreeMap;

    fn model(b: Benchmark) -> TrafficModel {
        TrafficModel::new(b, 4, 42)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = model(Benchmark::Spmv).generate_for(NodeId::gpu(1), 200);
        let b = model(Benchmark::Spmv).generate_for(NodeId::gpu(1), 200);
        assert_eq!(a, b);
        let c = TrafficModel::new(Benchmark::Spmv, 4, 43).generate_for(NodeId::gpu(1), 200);
        assert_ne!(a, c);
    }

    #[test]
    fn distinct_streams_per_requester() {
        let m = model(Benchmark::Spmv);
        let a = m.generate_for(NodeId::gpu(1), 100);
        let b = m.generate_for(NodeId::gpu(2), 100);
        assert_ne!(a, b);
    }

    #[test]
    fn times_are_nondecreasing() {
        for b in Benchmark::ALL {
            let reqs = model(b).generate_for(NodeId::gpu(1), 300);
            assert!(
                reqs.windows(2)
                    .all(|w| w[0].available_at <= w[1].available_at),
                "{b}"
            );
        }
    }

    #[test]
    fn never_targets_self() {
        for b in [Benchmark::PageRank, Benchmark::Kmeans, Benchmark::Aes] {
            for r in model(b).generate_for(NodeId::gpu(2), 500) {
                assert_ne!(r.target, r.requester);
                assert_eq!(r.requester, NodeId::gpu(2));
            }
        }
    }

    #[test]
    fn cpu_weight_produces_host_traffic() {
        let reqs = model(Benchmark::Kmeans).generate_for(NodeId::gpu(1), 2_000);
        let cpu = reqs.iter().filter(|r| r.target.is_cpu()).count();
        // km has cpu_weight 0.25 at the burst level; the per-request share
        // is similar (whole bursts go to the CPU).
        let frac = cpu as f64 / reqs.len() as f64;
        assert!(frac > 0.10 && frac < 0.45, "cpu fraction {frac}");
    }

    #[test]
    fn migration_fraction_produces_migrations() {
        let reqs = model(Benchmark::FloydWarshall).generate_for(NodeId::gpu(1), 2_000);
        let migrations = reqs
            .iter()
            .filter(|r| r.kind == AccessKind::PageMigration)
            .count();
        assert!(migrations > 0, "floyd should migrate pages");
        let pr = model(Benchmark::PageRank).generate_for(NodeId::gpu(1), 2_000);
        let pr_migr = pr
            .iter()
            .filter(|r| r.kind == AccessKind::PageMigration)
            .count();
        assert!(
            migrations * pr.len() > pr_migr * reqs.len(),
            "floyd migrates more than pagerank"
        );
    }

    #[test]
    fn hot_destination_rotates_across_phases() {
        // Count per-destination traffic in early vs late windows; the hot
        // destination must change (Figs. 13/14 drift).
        let m = model(Benchmark::MatrixMultiplication);
        let reqs = m.generate_for(NodeId::gpu(1), 20_000);
        let phase_len = m.params().phase_len;
        let hot_in = |lo: u64, hi: u64| -> NodeId {
            let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
            for r in reqs
                .iter()
                .filter(|r| r.available_at.as_u64() >= lo && r.available_at.as_u64() < hi)
                .filter(|r| r.target.is_gpu())
            {
                *counts.entry(r.target).or_default() += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(_, c)| c)
                .map(|(n, _)| n)
                .expect("traffic in window")
        };
        let h0 = hot_in(0, phase_len);
        let h1 = hot_in(phase_len, 2 * phase_len);
        assert_ne!(h0, h1, "hot destination should rotate");
    }

    #[test]
    fn high_rpki_is_denser_than_low() {
        let dense = model(Benchmark::MatrixTranspose).generate_for(NodeId::gpu(1), 1_000);
        let sparse = model(Benchmark::Fir).generate_for(NodeId::gpu(1), 1_000);
        let span = |r: &[Request]| r.last().unwrap().available_at.as_u64();
        assert!(
            span(&sparse) > 10 * span(&dense),
            "fir span {} vs mt span {}",
            span(&sparse),
            span(&dense)
        );
    }

    #[test]
    fn generate_all_covers_every_gpu() {
        let all = model(Benchmark::Atax).generate_all(50);
        assert_eq!(all.len(), 200);
        for gpu in 1..=4u16 {
            assert_eq!(
                all.iter()
                    .filter(|r| r.requester == NodeId::gpu(gpu))
                    .count(),
                50
            );
        }
        assert!(all
            .windows(2)
            .all(|w| w[0].available_at <= w[1].available_at));
    }

    #[test]
    fn exact_request_count() {
        for n in [1usize, 17, 100] {
            assert_eq!(
                model(Benchmark::Fft).generate_for(NodeId::gpu(3), n).len(),
                n
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_gpu_panics() {
        let _ = TrafficModel::new(Benchmark::Fft, 1, 0);
    }
}
