//! Remote-request records produced by the workload generators.

use mgpu_types::{Cycle, NodeId};

/// How a remote access is serviced (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Cacheline-granularity direct block access: one 64 B response.
    DirectBlock,
    /// Page migration: the whole 4 KB page (64 blocks) moves to the
    /// requester.
    PageMigration,
}

impl AccessKind {
    /// Number of 64 B blocks this access moves.
    #[must_use]
    pub fn blocks(self) -> u32 {
        match self {
            AccessKind::DirectBlock => 1,
            AccessKind::PageMigration => 64,
        }
    }
}

/// One remote request: `requester` pulls data from `target`.
///
/// `available_at` is when the GPU's compute produces the request — the
/// system model may service it later if request slots or links are busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Earliest cycle the request can issue.
    pub available_at: Cycle,
    /// The node performing the access.
    pub requester: NodeId,
    /// The node whose memory holds the data.
    pub target: NodeId,
    /// Direct block access or page migration.
    pub kind: AccessKind,
    /// Absolute SLO deadline: the cycle by which the last block must be
    /// usable at the requester, or `None` for batch-style requests without
    /// a latency objective. Carried verbatim through the system model and
    /// checked against the completion stamp — missing it never changes
    /// scheduling, it only counts as a violation in the run report.
    pub deadline: Option<Cycle>,
}

impl Request {
    /// Creates a direct-block request.
    #[must_use]
    pub fn direct(available_at: Cycle, requester: NodeId, target: NodeId) -> Self {
        Request {
            available_at,
            requester,
            target,
            kind: AccessKind::DirectBlock,
            deadline: None,
        }
    }

    /// Creates a page-migration request.
    #[must_use]
    pub fn migration(available_at: Cycle, requester: NodeId, target: NodeId) -> Self {
        Request {
            available_at,
            requester,
            target,
            kind: AccessKind::PageMigration,
            deadline: None,
        }
    }

    /// The same request with an absolute SLO deadline attached.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Cycle) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts() {
        assert_eq!(AccessKind::DirectBlock.blocks(), 1);
        assert_eq!(AccessKind::PageMigration.blocks(), 64);
    }

    #[test]
    fn constructors() {
        let r = Request::direct(Cycle::new(5), NodeId::gpu(1), NodeId::gpu(2));
        assert_eq!(r.kind, AccessKind::DirectBlock);
        assert_eq!(r.deadline, None);
        let m = Request::migration(Cycle::new(5), NodeId::gpu(1), NodeId::CPU);
        assert_eq!(m.kind.blocks(), 64);
        assert_eq!(m.target, NodeId::CPU);
        assert_eq!(m.deadline, None);
    }

    #[test]
    fn deadline_builder() {
        let r = Request::direct(Cycle::new(5), NodeId::gpu(1), NodeId::gpu(2))
            .with_deadline(Cycle::new(505));
        assert_eq!(r.deadline, Some(Cycle::new(505)));
        // The deadline does not participate in the base identity fields.
        assert_eq!(r.available_at, Cycle::new(5));
        assert_eq!(r.kind, AccessKind::DirectBlock);
    }
}
