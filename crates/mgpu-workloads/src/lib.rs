//! Synthetic communication-pattern models of the paper's 17 GPU
//! benchmarks (Table IV).
//!
//! The paper traces real OpenCL binaries through MGPUSim; this
//! reproduction cannot, so each benchmark is modeled as a *stochastic
//! remote-request process* calibrated to the communication statistics the
//! paper reports: request intensity (the RPKI classes of Table IV),
//! burstiness (Figs. 15/16: most 16-block groups accumulate within 160
//! cycles), time-varying send/receive mix and destination locality
//! (Figs. 13/14), and the page-migration vs. direct-block-access split
//! (§II-A).
//!
//! Three generators are provided:
//!
//! * [`model::TrafficModel`] — the primary batch generator: emits each
//!   GPU's remote-request arrival process directly.
//! * [`arrivals::ServingModel`] — open-loop serving traffic: seeded
//!   Poisson/MMPP arrivals, Zipf-skewed destination mixes, and
//!   per-request SLO deadlines for tail-latency studies.
//! * [`address_mode::AddressTraceWorkload`] — a finer-grained alternative
//!   that generates *address* streams and derives remote requests by
//!   filtering them through the cache hierarchy and page-migration policy
//!   of `mgpu-sim`, demonstrating the full memory path.
//!
//! # Examples
//!
//! ```
//! use mgpu_workloads::{Benchmark, TrafficModel};
//! use mgpu_types::NodeId;
//!
//! let model = TrafficModel::new(Benchmark::MatrixMultiplication, 4, 42);
//! let requests = model.generate_for(NodeId::gpu(1), 500);
//! assert_eq!(requests.len(), 500);
//! // Requests arrive in nondecreasing time order.
//! assert!(requests.windows(2).all(|w| w[0].available_at <= w[1].available_at));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address_mode;
pub mod arrivals;
pub mod bench_params;
pub mod model;
pub mod request;
pub mod trace;

pub use arrivals::{ArrivalProcess, ServingModel};
pub use bench_params::{Benchmark, RpkiClass, WorkloadParams};
pub use model::TrafficModel;
pub use request::{AccessKind, Request};
pub use trace::Trace;
