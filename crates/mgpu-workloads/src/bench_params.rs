//! The 17 evaluated benchmarks (paper Table IV) and their calibrated
//! traffic-model parameters.
//!
//! Parameters are calibrated to reproduce the *communication statistics*
//! the paper reports, not the benchmarks' arithmetic:
//!
//! * RPKI class (Table IV) → request intensity (burst rate).
//! * Burstiness (Figs. 15/16) → burst length and intra-burst spacing, such
//!   that most 16-block groups accumulate within 160 cycles.
//! * Destination locality and its drift (Figs. 13/14) → per-phase hot
//!   destination with a rotation period.
//! * Page-migration vs. direct-access mix (§II-A, §V-A) → per-benchmark
//!   migration fraction.
//!
//! The per-benchmark values are stated in one table below so the
//! calibration is auditable at a glance.

use core::fmt;

/// Remote-requests-per-kilo-instruction class (paper Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RpkiClass {
    /// RPKI > 1000.
    High,
    /// 100 < RPKI ≤ 1000.
    Medium,
    /// RPKI ≤ 100.
    Low,
}

impl fmt::Display for RpkiClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpkiClass::High => f.write_str("high"),
            RpkiClass::Medium => f.write_str("medium"),
            RpkiClass::Low => f.write_str("low"),
        }
    }
}

/// Parameters of one benchmark's stochastic traffic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Mean blocks per communication burst.
    pub burst_len_mean: u32,
    /// Cycles between consecutive blocks within a burst.
    pub intra_burst_gap: u64,
    /// Mean idle cycles between bursts (exponential-ish).
    pub inter_burst_gap_mean: u64,
    /// Probability a burst targets the current phase's hot destination
    /// (rest is uniform over the other peers).
    pub locality: f64,
    /// Probability mass of the CPU as a destination (host traffic).
    pub cpu_weight: f64,
    /// Fraction of bursts serviced by 4 KB page migration instead of
    /// direct block access.
    pub migration_fraction: f64,
    /// Cycles per destination-rotation phase (drives Figs. 13/14 drift).
    pub phase_len: u64,
    /// Phase-dependent pull-intensity swing in [0, 1): during alternating
    /// phases a GPU pulls less (producer role) or more (consumer role),
    /// producing the time-varying send/receive mix of the paper's Fig. 13
    /// that the `Dynamic` allocator exploits.
    pub duty_variation: f64,
    /// The kernel's achievable memory-level parallelism: how many remote
    /// requests its wavefronts keep in flight before compute stalls on
    /// data. Streaming kernels run far ahead; latency-sensitive tiled
    /// kernels only cover a couple of bursts.
    pub outstanding: u32,
}

impl WorkloadParams {
    /// Mean requests per kilocycle implied by the parameters (the
    /// intensity proxy used to sanity-check RPKI classes).
    #[must_use]
    pub fn requests_per_kilocycle(&self) -> f64 {
        let burst_span = u64::from(self.burst_len_mean) * self.intra_burst_gap;
        let period = burst_span + self.inter_burst_gap_mean;
        f64::from(self.burst_len_mean) * 1000.0 / period as f64
    }
}

/// The 17 evaluated workloads (paper Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // benchmark names are self-describing
pub enum Benchmark {
    MatrixTranspose,
    Relu,
    PageRank,
    Syr2k,
    Spmv,
    SimpleConvolution,
    MatrixMultiplication,
    Atax,
    Bicg,
    Gesummv,
    Mvt,
    Stencil2d,
    Fft,
    Kmeans,
    FloydWarshall,
    Aes,
    Fir,
}

impl Benchmark {
    /// All benchmarks in Table IV order (grouped by RPKI class).
    pub const ALL: [Benchmark; 17] = [
        Benchmark::MatrixTranspose,
        Benchmark::Relu,
        Benchmark::PageRank,
        Benchmark::Syr2k,
        Benchmark::Spmv,
        Benchmark::SimpleConvolution,
        Benchmark::MatrixMultiplication,
        Benchmark::Atax,
        Benchmark::Bicg,
        Benchmark::Gesummv,
        Benchmark::Mvt,
        Benchmark::Stencil2d,
        Benchmark::Fft,
        Benchmark::Kmeans,
        Benchmark::FloydWarshall,
        Benchmark::Aes,
        Benchmark::Fir,
    ];

    /// The paper's abbreviation (Table IV).
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            Benchmark::MatrixTranspose => "mt",
            Benchmark::Relu => "relu",
            Benchmark::PageRank => "pr",
            Benchmark::Syr2k => "syr2k",
            Benchmark::Spmv => "spmv",
            Benchmark::SimpleConvolution => "sc",
            Benchmark::MatrixMultiplication => "mm",
            Benchmark::Atax => "atax",
            Benchmark::Bicg => "bicg",
            Benchmark::Gesummv => "ges",
            Benchmark::Mvt => "mvt",
            Benchmark::Stencil2d => "st",
            Benchmark::Fft => "fft",
            Benchmark::Kmeans => "km",
            Benchmark::FloydWarshall => "floyd",
            Benchmark::Aes => "aes",
            Benchmark::Fir => "fir",
        }
    }

    /// The suite the benchmark comes from (Table IV).
    #[must_use]
    pub fn suite(self) -> &'static str {
        match self {
            Benchmark::MatrixTranspose
            | Benchmark::SimpleConvolution
            | Benchmark::MatrixMultiplication
            | Benchmark::FloydWarshall => "AMD APP SDK",
            Benchmark::Relu => "DNNMark",
            Benchmark::PageRank | Benchmark::Kmeans | Benchmark::Aes | Benchmark::Fir => {
                "Hetero-Mark"
            }
            Benchmark::Syr2k
            | Benchmark::Atax
            | Benchmark::Bicg
            | Benchmark::Gesummv
            | Benchmark::Mvt => "Polybench",
            Benchmark::Spmv | Benchmark::Stencil2d | Benchmark::Fft => "SHOC",
        }
    }

    /// The paper's RPKI classification (Table IV).
    #[must_use]
    pub fn rpki_class(self) -> RpkiClass {
        match self {
            Benchmark::MatrixTranspose
            | Benchmark::Relu
            | Benchmark::PageRank
            | Benchmark::Syr2k
            | Benchmark::Spmv => RpkiClass::High,
            Benchmark::SimpleConvolution
            | Benchmark::MatrixMultiplication
            | Benchmark::Atax
            | Benchmark::Bicg
            | Benchmark::Gesummv
            | Benchmark::Mvt
            | Benchmark::Stencil2d
            | Benchmark::Fft
            | Benchmark::Kmeans => RpkiClass::Medium,
            Benchmark::FloydWarshall | Benchmark::Aes | Benchmark::Fir => RpkiClass::Low,
        }
    }

    /// Calibrated traffic-model parameters (see module docs).
    ///
    /// | bench | burst | intra | inter | locality | cpu | migr | phase | duty |
    /// |-------|-------|-------|-------|----------|-----|------|-------|------|
    /// | mt    | 36    | 3     | 80    | 0.75     | 0.10| 0.02 | 60k   | 0.7  |
    /// | relu  | 28    | 3     | 90    | 0.70     | 0.15| 0.05 | 50k   | 0.6  |
    /// | pr    | 32    | 3     | 60    | 0.40     | 0.10| 0.01 | 40k   | 0.5  |
    /// | syr2k | 36    | 3     | 100   | 0.65     | 0.08| 0.04 | 70k   | 0.6  |
    /// | spmv  | 28    | 3     | 80    | 0.35     | 0.12| 0.01 | 45k   | 0.5  |
    /// | sc    | 16    | 4     | 240   | 0.70     | 0.15| 0.10 | 80k   | 0.5  |
    /// | mm    | 28    | 2     | 140   | 0.80     | 0.20| 0.08 | 50k   | 0.7  |
    /// | atax  | 16    | 4     | 260   | 0.60     | 0.15| 0.05 | 70k   | 0.5  |
    /// | bicg  | 16    | 4     | 280   | 0.60     | 0.15| 0.05 | 75k   | 0.5  |
    /// | ges   | 14    | 4     | 320   | 0.65     | 0.12| 0.06 | 90k   | 0.5  |
    /// | mvt   | 16    | 4     | 300   | 0.62     | 0.14| 0.05 | 85k   | 0.5  |
    /// | st    | 12    | 5     | 380   | 0.85     | 0.10| 0.12 | 100k  | 0.6  |
    /// | fft   | 18    | 3     | 220   | 0.55     | 0.18| 0.10 | 60k   | 0.5  |
    /// | km    | 12    | 6     | 450   | 0.70     | 0.25| 0.15 | 110k  | 0.4  |
    /// | floyd | 8     | 8     | 2600  | 0.80     | 0.15| 0.20 | 150k  | 0.3  |
    /// | aes   | 64    | 1     | 2500  | 0.85     | 0.30| 0.10 | 120k  | 0.2  |
    /// | fir   | 6     | 8     | 5200  | 0.75     | 0.30| 0.15 | 140k  | 0.2  |
    #[must_use]
    pub fn params(self) -> WorkloadParams {
        #[allow(clippy::too_many_arguments)]
        let p = |burst_len_mean,
                 intra_burst_gap,
                 inter_burst_gap_mean,
                 locality,
                 cpu_weight,
                 migration_fraction,
                 phase_len,
                 duty_variation,
                 outstanding| WorkloadParams {
            burst_len_mean,
            intra_burst_gap,
            inter_burst_gap_mean,
            locality,
            cpu_weight,
            migration_fraction,
            phase_len,
            duty_variation,
            outstanding,
        };
        match self {
            // High RPKI: dense, near link saturation.
            Benchmark::MatrixTranspose => p(36, 3, 80, 0.75, 0.10, 0.02, 60_000, 0.7, 128),
            Benchmark::Relu => p(28, 3, 90, 0.70, 0.15, 0.05, 50_000, 0.6, 128),
            // PageRank/spmv: irregular, low locality (graph/sparse).
            Benchmark::PageRank => p(32, 3, 60, 0.40, 0.10, 0.01, 40_000, 0.5, 128),
            Benchmark::Syr2k => p(36, 3, 100, 0.65, 0.08, 0.04, 70_000, 0.6, 128),
            Benchmark::Spmv => p(28, 3, 80, 0.35, 0.12, 0.01, 45_000, 0.5, 128),
            // Medium RPKI.
            Benchmark::SimpleConvolution => p(16, 4, 240, 0.70, 0.15, 0.10, 80_000, 0.5, 32),
            Benchmark::MatrixMultiplication => p(28, 2, 140, 0.80, 0.20, 0.08, 50_000, 0.7, 40),
            Benchmark::Atax => p(16, 4, 260, 0.60, 0.15, 0.05, 70_000, 0.5, 28),
            Benchmark::Bicg => p(16, 4, 280, 0.60, 0.15, 0.05, 75_000, 0.5, 28),
            Benchmark::Gesummv => p(14, 4, 320, 0.65, 0.12, 0.06, 90_000, 0.5, 24),
            Benchmark::Mvt => p(16, 4, 300, 0.62, 0.14, 0.05, 85_000, 0.5, 28),
            Benchmark::Stencil2d => p(12, 5, 380, 0.85, 0.10, 0.12, 100_000, 0.6, 20),
            Benchmark::Fft => p(18, 3, 220, 0.55, 0.18, 0.10, 60_000, 0.5, 32),
            Benchmark::Kmeans => p(12, 6, 450, 0.70, 0.25, 0.15, 110_000, 0.4, 20),
            // Low RPKI: sparse traffic; aes is rare-but-giant bursts (bulk
            // state transfers), which is why the paper still sees large
            // secure-communication degradation on it (Fig. 21).
            Benchmark::FloydWarshall => p(8, 8, 2_600, 0.80, 0.15, 0.20, 150_000, 0.3, 16),
            Benchmark::Aes => p(64, 1, 2_500, 0.85, 0.30, 0.10, 120_000, 0.2, 96),
            Benchmark::Fir => p(6, 8, 5_200, 0.75, 0.30, 0.15, 140_000, 0.2, 12),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_benchmarks() {
        assert_eq!(Benchmark::ALL.len(), 17);
        let mut abbrevs: Vec<_> = Benchmark::ALL.iter().map(|b| b.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 17, "abbreviations must be unique");
    }

    #[test]
    fn class_counts_match_table_iv() {
        let count = |class| {
            Benchmark::ALL
                .iter()
                .filter(|b| b.rpki_class() == class)
                .count()
        };
        assert_eq!(count(RpkiClass::High), 5);
        assert_eq!(count(RpkiClass::Medium), 9);
        assert_eq!(count(RpkiClass::Low), 3);
    }

    #[test]
    fn intensity_ordering_follows_classes() {
        // Every high-RPKI workload must be more intense than every
        // medium one, and medium more than low (aes excepted: its rare
        // giant bursts give it low average intensity by design).
        let intensity = |b: Benchmark| b.params().requests_per_kilocycle();
        for &hi in &[
            Benchmark::MatrixTranspose,
            Benchmark::PageRank,
            Benchmark::Spmv,
        ] {
            for &mid in &[Benchmark::MatrixMultiplication, Benchmark::Fft] {
                assert!(intensity(hi) > intensity(mid), "{hi} vs {mid}");
            }
        }
        for &mid in &[Benchmark::MatrixMultiplication, Benchmark::Kmeans] {
            for &lo in &[Benchmark::FloydWarshall, Benchmark::Fir] {
                assert!(intensity(mid) > intensity(lo), "{mid} vs {lo}");
            }
        }
    }

    #[test]
    fn high_rpki_is_near_link_saturation() {
        // 0.3 requests/cycle × 72 B ≈ 22 B/cy from one requester; several
        // requesters sharing a 50 B/cy link saturate it — the regime where
        // metadata bandwidth hurts most.
        for b in Benchmark::ALL {
            if b.rpki_class() == RpkiClass::High {
                let r = b.params().requests_per_kilocycle();
                assert!(r > 120.0, "{b}: {r}");
            }
        }
    }

    #[test]
    fn burstiness_supports_batching() {
        // A 16-block group must be able to accumulate within 160 cycles
        // for most workloads (Fig. 15: 69.2 % on average): the intra-burst
        // span of 16 blocks must be < 160 cycles for all but the sparsest.
        let mut fast = 0;
        for b in Benchmark::ALL {
            let p = b.params();
            if u64::from(p.burst_len_mean.min(16)) * p.intra_burst_gap <= 160
                && p.burst_len_mean >= 16
            {
                fast += 1;
            }
        }
        assert!(fast >= 10, "only {fast}/17 workloads burst fast enough");
    }

    #[test]
    fn probabilities_are_valid() {
        for b in Benchmark::ALL {
            let p = b.params();
            assert!((0.0..=1.0).contains(&p.locality), "{b}");
            assert!((0.0..=1.0).contains(&p.cpu_weight), "{b}");
            assert!((0.0..=1.0).contains(&p.migration_fraction), "{b}");
            assert!(p.burst_len_mean > 0 && p.phase_len > 0, "{b}");
        }
    }

    #[test]
    fn suites_match_table_iv() {
        assert_eq!(Benchmark::MatrixTranspose.suite(), "AMD APP SDK");
        assert_eq!(Benchmark::Relu.suite(), "DNNMark");
        assert_eq!(Benchmark::PageRank.suite(), "Hetero-Mark");
        assert_eq!(Benchmark::Syr2k.suite(), "Polybench");
        assert_eq!(Benchmark::Spmv.suite(), "SHOC");
        assert_eq!(Benchmark::Fir.suite(), "Hetero-Mark");
    }

    #[test]
    fn display_uses_abbrev() {
        assert_eq!(Benchmark::Gesummv.to_string(), "ges");
        assert_eq!(RpkiClass::High.to_string(), "high");
    }
}
