//! Request-trace container with the pattern statistics the paper's
//! motivation figures report.
//!
//! A [`Trace`] wraps a request stream and computes:
//!
//! * per-window send/receive mixes as seen from one GPU (Fig. 13),
//! * per-window destination decomposition (Fig. 14), and
//! * block-accumulation intervals — how long it takes for `n` blocks to
//!   gather on a directed pair (Figs. 15/16).

use crate::request::{AccessKind, Request};
use mgpu_sim::stats::Histogram;
use mgpu_types::{Cycle, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// An ordered remote-request trace plus analysis helpers.
///
/// # Examples
///
/// ```
/// use mgpu_workloads::{Benchmark, Trace, TrafficModel};
/// use mgpu_types::NodeId;
///
/// let model = TrafficModel::new(Benchmark::MatrixMultiplication, 4, 1);
/// let trace = Trace::new(model.generate_all(500));
/// let hist = trace.accumulation_histogram(16);
/// assert!(hist.total() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Wraps a request stream, sorting it by availability time.
    #[must_use]
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| (r.available_at, r.requester, r.target));
        Trace { requests }
    }

    /// The requests in time order.
    #[must_use]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-block arrival cycles of one request: a direct access is a single
    /// block at `available_at`; a page migration is 64 blocks spaced one
    /// cycle apart. Every view in this module (accumulation *and* the
    /// windowed timelines) expands migrations through this one helper so
    /// their per-window counts agree across window boundaries.
    fn request_block_cycles(r: &Request) -> impl Iterator<Item = Cycle> {
        let start = r.available_at;
        (0..u64::from(r.kind.blocks())).map(move |i| start + mgpu_types::Duration::cycles(i))
    }

    /// Expands requests into per-block arrivals on directed pairs
    /// `(data owner → requester)` — the data-response streams whose
    /// burstiness the batching scheme exploits. Page migrations expand to
    /// 64 blocks spaced one cycle apart.
    fn block_arrivals(&self) -> BTreeMap<(NodeId, NodeId), Vec<Cycle>> {
        let mut arrivals: BTreeMap<(NodeId, NodeId), Vec<Cycle>> = BTreeMap::new();
        for r in &self.requests {
            let stream = arrivals.entry((r.target, r.requester)).or_default();
            stream.extend(Self::request_block_cycles(r));
        }
        for stream in arrivals.values_mut() {
            stream.sort();
        }
        arrivals
    }

    /// Histogram of the cycles needed for `group` consecutive blocks to
    /// accumulate on a directed pair (Figs. 15/16; paper buckets).
    #[must_use]
    pub fn accumulation_histogram(&self, group: usize) -> Histogram {
        let mut hist = Histogram::paper_burst_edges();
        for stream in self.block_arrivals().values() {
            for window in stream.chunks(group) {
                if window.len() == group {
                    let span = window[group - 1].as_u64() - window[0].as_u64();
                    hist.record(span);
                }
            }
        }
        hist
    }

    /// Fraction of `group`-block windows that accumulate within
    /// `within_cycles` (the paper quotes 69.2 % of 16-block groups within
    /// 160 cycles).
    ///
    /// Boundary convention: "within `w`" counts spans **strictly below**
    /// `w`, matching [`Histogram`]'s half-open `[lo, hi)` buckets on the
    /// same spans — a span of exactly 160 cycles is *not* within 160 and
    /// lands in the `[160, 640)` bucket, so `fraction_within(group, edge)`
    /// always equals the summed fractions of the histogram buckets strictly
    /// below `edge` (pinned by tests at both sites).
    #[must_use]
    pub fn accumulation_fraction_within(&self, group: usize, within_cycles: u64) -> f64 {
        let mut total = 0u64;
        let mut fast = 0u64;
        for stream in self.block_arrivals().values() {
            for window in stream.chunks(group) {
                if window.len() == group {
                    total += 1;
                    if window[group - 1].as_u64() - window[0].as_u64() < within_cycles {
                        fast += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            fast as f64 / total as f64
        }
    }

    /// Send/receive block counts for `node` over consecutive windows of
    /// `window` cycles (Fig. 13). "Send" counts blocks `node` serves to
    /// others (it is the data owner); "receive" counts blocks it pulls.
    ///
    /// Page migrations are expanded to their 64 one-cycle-spaced blocks,
    /// each attributed to the window containing *its own* arrival cycle —
    /// the same expansion the accumulation views use — so a migration
    /// straddling a window boundary is split across both windows rather
    /// than lumped into the window of `available_at`.
    #[must_use]
    pub fn send_recv_timeline(&self, node: NodeId, window: u64) -> Vec<(u64, u64)> {
        assert!(window > 0, "window must be non-zero");
        let mut timeline: Vec<(u64, u64)> = Vec::new();
        for r in &self.requests {
            if r.target != node && r.requester != node {
                continue;
            }
            for cycle in Self::request_block_cycles(r) {
                let idx = (cycle.as_u64() / window) as usize;
                if timeline.len() <= idx {
                    timeline.resize(idx + 1, (0, 0));
                }
                if r.target == node {
                    timeline[idx].0 += 1; // node sends data
                } else {
                    timeline[idx].1 += 1; // node receives data
                }
            }
        }
        timeline
    }

    /// Serializes the trace to a line-oriented text format
    /// (`cycle requester target kind [deadline]`), suitable for archiving a
    /// workload and replaying it bit-identically later. Requests without a
    /// deadline serialize exactly as before (v1 lines); deadline-carrying
    /// requests append the absolute deadline cycle as a fifth field.
    ///
    /// # Examples
    ///
    /// ```
    /// use mgpu_workloads::{Request, Trace};
    /// use mgpu_types::{Cycle, NodeId};
    ///
    /// let t = Trace::new(vec![Request::direct(
    ///     Cycle::new(5), NodeId::gpu(1), NodeId::CPU)]);
    /// let text = t.to_text();
    /// let back: Trace = text.parse().unwrap();
    /// assert_eq!(back, t);
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.requests.len() * 16);
        if self.requests.iter().any(|r| r.deadline.is_some()) {
            out.push_str(
                "# mgpu-trace v2: cycle requester target kind [deadline]
",
            );
        } else {
            out.push_str(
                "# mgpu-trace v1: cycle requester target kind
",
            );
        }
        for r in &self.requests {
            let kind = match r.kind {
                AccessKind::DirectBlock => "D",
                AccessKind::PageMigration => "M",
            };
            out.push_str(&format!(
                "{} {} {} {}",
                r.available_at.as_u64(),
                r.requester.raw(),
                r.target.raw(),
                kind
            ));
            if let Some(d) = r.deadline {
                out.push_str(&format!(" {}", d.as_u64()));
            }
            out.push('\n');
        }
        out
    }

    /// Destination decomposition of `node`'s outgoing *requests* over
    /// consecutive windows (Fig. 14): for each window, blocks pulled from
    /// each peer. Migrations are expanded per block exactly like
    /// [`send_recv_timeline`](Trace::send_recv_timeline).
    #[must_use]
    pub fn destination_timeline(&self, node: NodeId, window: u64) -> Vec<BTreeMap<NodeId, u64>> {
        assert!(window > 0, "window must be non-zero");
        let mut timeline: Vec<BTreeMap<NodeId, u64>> = Vec::new();
        for r in self.requests.iter().filter(|r| r.requester == node) {
            for cycle in Self::request_block_cycles(r) {
                let idx = (cycle.as_u64() / window) as usize;
                if timeline.len() <= idx {
                    timeline.resize(idx + 1, BTreeMap::new());
                }
                *timeline[idx].entry(r.target).or_default() += 1;
            }
        }
        timeline
    }
}

/// Error parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for Trace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut requests = Vec::new();
        for (i, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: &str| ParseTraceError {
                line: i + 1,
                message: message.to_string(),
            };
            let mut fields = line.split_whitespace();
            let cycle: u64 = fields
                .next()
                .ok_or_else(|| err("missing cycle"))?
                .parse()
                .map_err(|_| err("bad cycle"))?;
            let requester: u16 = fields
                .next()
                .ok_or_else(|| err("missing requester"))?
                .parse()
                .map_err(|_| err("bad requester"))?;
            let target: u16 = fields
                .next()
                .ok_or_else(|| err("missing target"))?
                .parse()
                .map_err(|_| err("bad target"))?;
            let kind = match fields.next() {
                Some("D") => AccessKind::DirectBlock,
                Some("M") => AccessKind::PageMigration,
                Some(_) => return Err(err("kind must be D or M")),
                None => return Err(err("missing kind")),
            };
            // Optional fifth field (v2): absolute SLO deadline cycle.
            let deadline = match fields.next() {
                Some(d) => Some(Cycle::new(d.parse().map_err(|_| err("bad deadline"))?)),
                None => None,
            };
            if fields.next().is_some() {
                return Err(err("trailing fields"));
            }
            if requester == target {
                return Err(err("requester and target must differ"));
            }
            requests.push(Request {
                available_at: Cycle::new(cycle),
                requester: NodeId::from_raw(requester),
                target: NodeId::from_raw(target),
                kind,
                deadline,
            });
        }
        Ok(Trace::new(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_params::Benchmark;
    use crate::model::TrafficModel;
    use mgpu_types::Duration;

    fn trace(b: Benchmark) -> Trace {
        Trace::new(TrafficModel::new(b, 4, 42).generate_all(2_000))
    }

    #[test]
    fn new_sorts_requests() {
        let r1 = Request::direct(Cycle::new(10), NodeId::gpu(1), NodeId::gpu(2));
        let r2 = Request::direct(Cycle::new(5), NodeId::gpu(1), NodeId::gpu(2));
        let t = Trace::new(vec![r1, r2]);
        assert_eq!(t.requests()[0].available_at, Cycle::new(5));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn bursty_workloads_accumulate_fast() {
        // High-RPKI workloads should put most 16-block groups well within
        // 160 cycles (Fig. 15 shape).
        let t = trace(Benchmark::MatrixTranspose);
        let frac = t.accumulation_fraction_within(16, 160);
        assert!(frac > 0.5, "mt 16-block fraction {frac}");
    }

    #[test]
    fn sparse_workloads_accumulate_slowly() {
        let t = trace(Benchmark::Fir);
        let frac = t.accumulation_fraction_within(16, 160);
        let t2 = trace(Benchmark::MatrixTranspose);
        assert!(
            frac < t2.accumulation_fraction_within(16, 160),
            "fir should be slower than mt"
        );
    }

    #[test]
    fn thirty_two_block_groups_are_slower_than_sixteen() {
        // Fig. 16 vs Fig. 15: bigger groups take longer to fill.
        let t = trace(Benchmark::MatrixMultiplication);
        let f16 = t.accumulation_fraction_within(16, 160);
        let f32 = t.accumulation_fraction_within(32, 160);
        assert!(f32 <= f16, "f32={f32} > f16={f16}");
    }

    #[test]
    fn histogram_fractions_cover_everything() {
        let t = trace(Benchmark::Fft);
        let h = t.accumulation_histogram(16);
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn send_recv_timeline_counts_both_roles() {
        let r1 = Request::direct(Cycle::new(10), NodeId::gpu(1), NodeId::gpu(2));
        let r2 = Request::direct(Cycle::new(20), NodeId::gpu(2), NodeId::gpu(1));
        let r3 = Request::migration(Cycle::new(30), NodeId::gpu(3), NodeId::gpu(1));
        let t = Trace::new(vec![r1, r2, r3]);
        let tl = t.send_recv_timeline(NodeId::gpu(1), 100);
        // Window 0: GPU1 receives 1 block (r1), sends 1 (r2) + 64 (r3).
        assert_eq!(tl[0], (65, 1));
    }

    #[test]
    fn destination_timeline_tracks_pulls() {
        let r1 = Request::direct(Cycle::new(10), NodeId::gpu(1), NodeId::gpu(2));
        let r2 = Request::direct(Cycle::new(150), NodeId::gpu(1), NodeId::CPU);
        let t = Trace::new(vec![r1, r2]);
        let tl = t.destination_timeline(NodeId::gpu(1), 100);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0][&NodeId::gpu(2)], 1);
        assert_eq!(tl[1][&NodeId::CPU], 1);
    }

    #[test]
    fn destination_mix_varies_over_time() {
        // Fig. 14: the dominant pull source changes across phases.
        let m = TrafficModel::new(Benchmark::MatrixMultiplication, 4, 42);
        let t = Trace::new(m.generate_for(NodeId::gpu(1), 30_000));
        let tl = t.destination_timeline(NodeId::gpu(1), m.params().phase_len);
        let dominant: Vec<Option<NodeId>> = tl
            .iter()
            .map(|w| {
                w.iter()
                    .filter(|(n, _)| n.is_gpu())
                    .max_by_key(|&(_, c)| c)
                    .map(|(&n, _)| n)
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> = dominant.iter().flatten().copied().collect();
        assert!(distinct.len() >= 2, "dominant peers: {dominant:?}");
    }

    #[test]
    fn page_migration_expands_to_64_blocks() {
        let r = Request::migration(Cycle::new(0), NodeId::gpu(1), NodeId::gpu(2));
        let t = Trace::new(vec![r]);
        let h = t.accumulation_histogram(16);
        // 64 blocks -> 4 complete windows of 16.
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn empty_trace_behaves() {
        let t = Trace::new(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.accumulation_fraction_within(16, 160), 0.0);
        assert_eq!(t.accumulation_histogram(16).total(), 0);
        assert!(t.send_recv_timeline(NodeId::gpu(1), 100).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let t = Trace::new(Vec::new());
        let _ = t.send_recv_timeline(NodeId::gpu(1), 0);
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let original = trace(Benchmark::Kmeans);
        let text = original.to_text();
        let parsed: Trace = text.parse().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!("1 2".parse::<Trace>().is_err()); // missing fields
        assert!("x 1 2 D".parse::<Trace>().is_err()); // bad cycle
        assert!("1 1 1 D".parse::<Trace>().is_err()); // self target
        assert!("1 1 2 Q".parse::<Trace>().is_err()); // bad kind
        assert!("1 1 2 D extra".parse::<Trace>().is_err()); // bad deadline
        assert!("1 1 2 D 5 extra".parse::<Trace>().is_err()); // trailing
        let err = "ok
"
        .parse::<Trace>()
        .unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let t: Trace = "# header

10 1 2 D
20 2 0 M
"
        .parse()
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[1].kind, AccessKind::PageMigration);
        assert_eq!(t.requests()[1].target, NodeId::CPU);
    }

    #[test]
    fn windowed_views_split_migrations_across_boundaries() {
        // A migration at cycle 90 with window 100 spans blocks 90..=153:
        // 10 blocks land in window 0 and 54 in window 1 — previously all 64
        // were lumped into window 0.
        let r = Request::migration(Cycle::new(90), NodeId::gpu(1), NodeId::gpu(2));
        let t = Trace::new(vec![r]);
        let send = t.send_recv_timeline(NodeId::gpu(2), 100);
        assert_eq!(send, vec![(10, 0), (54, 0)]);
        let recv = t.send_recv_timeline(NodeId::gpu(1), 100);
        assert_eq!(recv, vec![(0, 10), (0, 54)]);
        let dst = t.destination_timeline(NodeId::gpu(1), 100);
        assert_eq!(dst.len(), 2);
        assert_eq!(dst[0][&NodeId::gpu(2)], 10);
        assert_eq!(dst[1][&NodeId::gpu(2)], 54);
    }

    #[test]
    fn windowed_views_agree_with_block_arrivals() {
        // Fig. 13/14 counts must agree with the accumulation view's block
        // expansion on every window, for a workload full of migrations.
        let t = trace(Benchmark::Kmeans);
        let node = NodeId::gpu(1);
        let window = 500u64;
        let mut expected_recv: Vec<u64> = Vec::new();
        let mut expected_send: Vec<u64> = Vec::new();
        for ((owner, requester), stream) in t.block_arrivals() {
            for c in stream {
                let idx = (c.as_u64() / window) as usize;
                if owner == node {
                    if expected_send.len() <= idx {
                        expected_send.resize(idx + 1, 0);
                    }
                    expected_send[idx] += 1;
                }
                if requester == node {
                    if expected_recv.len() <= idx {
                        expected_recv.resize(idx + 1, 0);
                    }
                    expected_recv[idx] += 1;
                }
            }
        }
        let tl = t.send_recv_timeline(node, window);
        for (i, &(s, r)) in tl.iter().enumerate() {
            assert_eq!(s, expected_send.get(i).copied().unwrap_or(0), "send w{i}");
            assert_eq!(r, expected_recv.get(i).copied().unwrap_or(0), "recv w{i}");
        }
        let dst = t.destination_timeline(node, window);
        let pulled: u64 = dst.iter().flat_map(|w| w.values()).sum();
        assert_eq!(pulled, tl.iter().map(|&(_, r)| r).sum::<u64>());
    }

    #[test]
    fn accumulation_boundary_is_half_open() {
        // 16 blocks spanning exactly 160 cycles: excluded from
        // "within 160" (strict <) AND counted in the [160, 640) histogram
        // bucket — the two sites share one half-open convention.
        let mut reqs: Vec<Request> = (0..15u64)
            .map(|i| Request::direct(Cycle::new(i), NodeId::gpu(1), NodeId::gpu(2)))
            .collect();
        reqs.push(Request::direct(
            Cycle::new(160),
            NodeId::gpu(1),
            NodeId::gpu(2),
        ));
        let t = Trace::new(reqs);
        assert_eq!(t.accumulation_fraction_within(16, 160), 0.0);
        assert_eq!(t.accumulation_fraction_within(16, 161), 1.0);
        let h = t.accumulation_histogram(16);
        assert_eq!(h.total(), 1);
        // paper_burst_edges: [0,40) [40,160) [160,640) [640,2560) overflow.
        assert_eq!(h.fractions()[2], 1.0, "span 160 lands in [160, 640)");
    }

    #[test]
    fn fraction_within_matches_histogram_prefix() {
        // fraction_within(g, edge) == sum of histogram buckets strictly
        // below edge, for every paper bucket edge.
        let t = trace(Benchmark::MatrixMultiplication);
        let h = t.accumulation_histogram(16);
        let fr = h.fractions();
        for (prefix_len, edge) in [(1usize, 40u64), (2, 160), (3, 640), (4, 2560)] {
            let expect: f64 = fr[..prefix_len].iter().sum();
            let got = t.accumulation_fraction_within(16, edge);
            assert!(
                (got - expect).abs() < 1e-12,
                "edge {edge}: fraction {got} vs histogram prefix {expect}"
            );
        }
    }

    #[test]
    fn paper_sixty_nine_percent_within_160() {
        // Paper §IV-C: "69.2% of 16-block groups accumulate within 160
        // cycles". Pinned on the half-open boundary convention (strict <,
        // matching the [160, 640) histogram bucket): a calibrated bursty
        // benchmark must reproduce the figure within a few points.
        let t = trace(Benchmark::PageRank);
        let frac = t.accumulation_fraction_within(16, 160);
        assert!(
            (frac - 0.692).abs() < 0.05,
            "pr 16-block fraction {frac} should sit near the paper's 0.692"
        );
        // The same number must be exactly the histogram prefix below 160.
        let fr = t.accumulation_histogram(16).fractions();
        assert!((frac - (fr[0] + fr[1])).abs() < 1e-12);
    }

    #[test]
    fn deadline_roundtrip_through_text() {
        let reqs = vec![
            Request::direct(Cycle::new(5), NodeId::gpu(1), NodeId::gpu(2))
                .with_deadline(Cycle::new(905)),
            Request::direct(Cycle::new(9), NodeId::gpu(2), NodeId::CPU),
            Request::migration(Cycle::new(12), NodeId::gpu(3), NodeId::gpu(1))
                .with_deadline(Cycle::new(2_012)),
        ];
        let t = Trace::new(reqs);
        let text = t.to_text();
        assert!(text.starts_with("# mgpu-trace v2"));
        let back: Trace = text.parse().unwrap();
        assert_eq!(back, t);
        assert_eq!(back.requests()[0].deadline, Some(Cycle::new(905)));
        assert_eq!(back.requests()[1].deadline, None);
    }

    #[test]
    fn deadline_free_traces_stay_v1() {
        let t = trace(Benchmark::Atax);
        assert!(t.to_text().starts_with("# mgpu-trace v1"));
    }

    #[test]
    fn migration_blocks_are_spaced() {
        let r = Request::migration(Cycle::new(100), NodeId::gpu(1), NodeId::gpu(2));
        let t = Trace::new(vec![r]);
        // The 64 blocks span 63 cycles -> all 16-block windows within 160.
        assert_eq!(t.accumulation_fraction_within(16, 160), 1.0);
        let _ = Duration::cycles(1); // keep the import exercised
    }
}
