//! Request-trace container with the pattern statistics the paper's
//! motivation figures report.
//!
//! A [`Trace`] wraps a request stream and computes:
//!
//! * per-window send/receive mixes as seen from one GPU (Fig. 13),
//! * per-window destination decomposition (Fig. 14), and
//! * block-accumulation intervals — how long it takes for `n` blocks to
//!   gather on a directed pair (Figs. 15/16).

use crate::request::{AccessKind, Request};
use mgpu_sim::stats::Histogram;
use mgpu_types::{Cycle, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// An ordered remote-request trace plus analysis helpers.
///
/// # Examples
///
/// ```
/// use mgpu_workloads::{Benchmark, Trace, TrafficModel};
/// use mgpu_types::NodeId;
///
/// let model = TrafficModel::new(Benchmark::MatrixMultiplication, 4, 1);
/// let trace = Trace::new(model.generate_all(500));
/// let hist = trace.accumulation_histogram(16);
/// assert!(hist.total() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Wraps a request stream, sorting it by availability time.
    #[must_use]
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| (r.available_at, r.requester, r.target));
        Trace { requests }
    }

    /// The requests in time order.
    #[must_use]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Expands requests into per-block arrivals on directed pairs
    /// `(data owner → requester)` — the data-response streams whose
    /// burstiness the batching scheme exploits. Page migrations expand to
    /// 64 blocks spaced one cycle apart.
    fn block_arrivals(&self) -> BTreeMap<(NodeId, NodeId), Vec<Cycle>> {
        let mut arrivals: BTreeMap<(NodeId, NodeId), Vec<Cycle>> = BTreeMap::new();
        for r in &self.requests {
            let stream = arrivals.entry((r.target, r.requester)).or_default();
            match r.kind {
                AccessKind::DirectBlock => stream.push(r.available_at),
                AccessKind::PageMigration => {
                    for i in 0..64u64 {
                        stream.push(r.available_at + mgpu_types::Duration::cycles(i));
                    }
                }
            }
        }
        for stream in arrivals.values_mut() {
            stream.sort();
        }
        arrivals
    }

    /// Histogram of the cycles needed for `group` consecutive blocks to
    /// accumulate on a directed pair (Figs. 15/16; paper buckets).
    #[must_use]
    pub fn accumulation_histogram(&self, group: usize) -> Histogram {
        let mut hist = Histogram::paper_burst_edges();
        for stream in self.block_arrivals().values() {
            for window in stream.chunks(group) {
                if window.len() == group {
                    let span = window[group - 1].as_u64() - window[0].as_u64();
                    hist.record(span);
                }
            }
        }
        hist
    }

    /// Fraction of `group`-block windows that accumulate within
    /// `within_cycles` (the paper quotes 69.2 % of 16-block groups within
    /// 160 cycles).
    #[must_use]
    pub fn accumulation_fraction_within(&self, group: usize, within_cycles: u64) -> f64 {
        let mut total = 0u64;
        let mut fast = 0u64;
        for stream in self.block_arrivals().values() {
            for window in stream.chunks(group) {
                if window.len() == group {
                    total += 1;
                    if window[group - 1].as_u64() - window[0].as_u64() < within_cycles {
                        fast += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            fast as f64 / total as f64
        }
    }

    /// Send/receive block counts for `node` over consecutive windows of
    /// `window` cycles (Fig. 13). "Send" counts blocks `node` serves to
    /// others (it is the data owner); "receive" counts blocks it pulls.
    #[must_use]
    pub fn send_recv_timeline(&self, node: NodeId, window: u64) -> Vec<(u64, u64)> {
        assert!(window > 0, "window must be non-zero");
        let mut timeline: Vec<(u64, u64)> = Vec::new();
        for r in &self.requests {
            let blocks = u64::from(r.kind.blocks());
            let idx = (r.available_at.as_u64() / window) as usize;
            if timeline.len() <= idx {
                timeline.resize(idx + 1, (0, 0));
            }
            if r.target == node {
                timeline[idx].0 += blocks; // node sends data
            } else if r.requester == node {
                timeline[idx].1 += blocks; // node receives data
            }
        }
        timeline
    }

    /// Serializes the trace to a line-oriented text format
    /// (`cycle requester target kind`), suitable for archiving a workload
    /// and replaying it bit-identically later.
    ///
    /// # Examples
    ///
    /// ```
    /// use mgpu_workloads::{Request, Trace};
    /// use mgpu_types::{Cycle, NodeId};
    ///
    /// let t = Trace::new(vec![Request::direct(
    ///     Cycle::new(5), NodeId::gpu(1), NodeId::CPU)]);
    /// let text = t.to_text();
    /// let back: Trace = text.parse().unwrap();
    /// assert_eq!(back, t);
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.requests.len() * 16);
        out.push_str(
            "# mgpu-trace v1: cycle requester target kind
",
        );
        for r in &self.requests {
            let kind = match r.kind {
                AccessKind::DirectBlock => "D",
                AccessKind::PageMigration => "M",
            };
            out.push_str(&format!(
                "{} {} {} {}
",
                r.available_at.as_u64(),
                r.requester.raw(),
                r.target.raw(),
                kind
            ));
        }
        out
    }

    /// Destination decomposition of `node`'s outgoing *requests* over
    /// consecutive windows (Fig. 14): for each window, blocks pulled from
    /// each peer.
    #[must_use]
    pub fn destination_timeline(&self, node: NodeId, window: u64) -> Vec<BTreeMap<NodeId, u64>> {
        assert!(window > 0, "window must be non-zero");
        let mut timeline: Vec<BTreeMap<NodeId, u64>> = Vec::new();
        for r in self.requests.iter().filter(|r| r.requester == node) {
            let idx = (r.available_at.as_u64() / window) as usize;
            if timeline.len() <= idx {
                timeline.resize(idx + 1, BTreeMap::new());
            }
            *timeline[idx].entry(r.target).or_default() += u64::from(r.kind.blocks());
        }
        timeline
    }
}

/// Error parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for Trace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut requests = Vec::new();
        for (i, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: &str| ParseTraceError {
                line: i + 1,
                message: message.to_string(),
            };
            let mut fields = line.split_whitespace();
            let cycle: u64 = fields
                .next()
                .ok_or_else(|| err("missing cycle"))?
                .parse()
                .map_err(|_| err("bad cycle"))?;
            let requester: u16 = fields
                .next()
                .ok_or_else(|| err("missing requester"))?
                .parse()
                .map_err(|_| err("bad requester"))?;
            let target: u16 = fields
                .next()
                .ok_or_else(|| err("missing target"))?
                .parse()
                .map_err(|_| err("bad target"))?;
            let kind = match fields.next() {
                Some("D") => AccessKind::DirectBlock,
                Some("M") => AccessKind::PageMigration,
                Some(_) => return Err(err("kind must be D or M")),
                None => return Err(err("missing kind")),
            };
            if fields.next().is_some() {
                return Err(err("trailing fields"));
            }
            if requester == target {
                return Err(err("requester and target must differ"));
            }
            requests.push(Request {
                available_at: Cycle::new(cycle),
                requester: NodeId::from_raw(requester),
                target: NodeId::from_raw(target),
                kind,
            });
        }
        Ok(Trace::new(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_params::Benchmark;
    use crate::model::TrafficModel;
    use mgpu_types::Duration;

    fn trace(b: Benchmark) -> Trace {
        Trace::new(TrafficModel::new(b, 4, 42).generate_all(2_000))
    }

    #[test]
    fn new_sorts_requests() {
        let r1 = Request::direct(Cycle::new(10), NodeId::gpu(1), NodeId::gpu(2));
        let r2 = Request::direct(Cycle::new(5), NodeId::gpu(1), NodeId::gpu(2));
        let t = Trace::new(vec![r1, r2]);
        assert_eq!(t.requests()[0].available_at, Cycle::new(5));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn bursty_workloads_accumulate_fast() {
        // High-RPKI workloads should put most 16-block groups well within
        // 160 cycles (Fig. 15 shape).
        let t = trace(Benchmark::MatrixTranspose);
        let frac = t.accumulation_fraction_within(16, 160);
        assert!(frac > 0.5, "mt 16-block fraction {frac}");
    }

    #[test]
    fn sparse_workloads_accumulate_slowly() {
        let t = trace(Benchmark::Fir);
        let frac = t.accumulation_fraction_within(16, 160);
        let t2 = trace(Benchmark::MatrixTranspose);
        assert!(
            frac < t2.accumulation_fraction_within(16, 160),
            "fir should be slower than mt"
        );
    }

    #[test]
    fn thirty_two_block_groups_are_slower_than_sixteen() {
        // Fig. 16 vs Fig. 15: bigger groups take longer to fill.
        let t = trace(Benchmark::MatrixMultiplication);
        let f16 = t.accumulation_fraction_within(16, 160);
        let f32 = t.accumulation_fraction_within(32, 160);
        assert!(f32 <= f16, "f32={f32} > f16={f16}");
    }

    #[test]
    fn histogram_fractions_cover_everything() {
        let t = trace(Benchmark::Fft);
        let h = t.accumulation_histogram(16);
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn send_recv_timeline_counts_both_roles() {
        let r1 = Request::direct(Cycle::new(10), NodeId::gpu(1), NodeId::gpu(2));
        let r2 = Request::direct(Cycle::new(20), NodeId::gpu(2), NodeId::gpu(1));
        let r3 = Request::migration(Cycle::new(30), NodeId::gpu(3), NodeId::gpu(1));
        let t = Trace::new(vec![r1, r2, r3]);
        let tl = t.send_recv_timeline(NodeId::gpu(1), 100);
        // Window 0: GPU1 receives 1 block (r1), sends 1 (r2) + 64 (r3).
        assert_eq!(tl[0], (65, 1));
    }

    #[test]
    fn destination_timeline_tracks_pulls() {
        let r1 = Request::direct(Cycle::new(10), NodeId::gpu(1), NodeId::gpu(2));
        let r2 = Request::direct(Cycle::new(150), NodeId::gpu(1), NodeId::CPU);
        let t = Trace::new(vec![r1, r2]);
        let tl = t.destination_timeline(NodeId::gpu(1), 100);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0][&NodeId::gpu(2)], 1);
        assert_eq!(tl[1][&NodeId::CPU], 1);
    }

    #[test]
    fn destination_mix_varies_over_time() {
        // Fig. 14: the dominant pull source changes across phases.
        let m = TrafficModel::new(Benchmark::MatrixMultiplication, 4, 42);
        let t = Trace::new(m.generate_for(NodeId::gpu(1), 30_000));
        let tl = t.destination_timeline(NodeId::gpu(1), m.params().phase_len);
        let dominant: Vec<Option<NodeId>> = tl
            .iter()
            .map(|w| {
                w.iter()
                    .filter(|(n, _)| n.is_gpu())
                    .max_by_key(|&(_, c)| c)
                    .map(|(&n, _)| n)
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> = dominant.iter().flatten().copied().collect();
        assert!(distinct.len() >= 2, "dominant peers: {dominant:?}");
    }

    #[test]
    fn page_migration_expands_to_64_blocks() {
        let r = Request::migration(Cycle::new(0), NodeId::gpu(1), NodeId::gpu(2));
        let t = Trace::new(vec![r]);
        let h = t.accumulation_histogram(16);
        // 64 blocks -> 4 complete windows of 16.
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn empty_trace_behaves() {
        let t = Trace::new(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.accumulation_fraction_within(16, 160), 0.0);
        assert_eq!(t.accumulation_histogram(16).total(), 0);
        assert!(t.send_recv_timeline(NodeId::gpu(1), 100).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let t = Trace::new(Vec::new());
        let _ = t.send_recv_timeline(NodeId::gpu(1), 0);
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let original = trace(Benchmark::Kmeans);
        let text = original.to_text();
        let parsed: Trace = text.parse().unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!("1 2".parse::<Trace>().is_err()); // missing fields
        assert!("x 1 2 D".parse::<Trace>().is_err()); // bad cycle
        assert!("1 1 1 D".parse::<Trace>().is_err()); // self target
        assert!("1 1 2 Q".parse::<Trace>().is_err()); // bad kind
        assert!("1 1 2 D extra".parse::<Trace>().is_err()); // trailing
        let err = "ok
"
        .parse::<Trace>()
        .unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let t: Trace = "# header

10 1 2 D
20 2 0 M
"
        .parse()
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[1].kind, AccessKind::PageMigration);
        assert_eq!(t.requests()[1].target, NodeId::CPU);
    }

    #[test]
    fn migration_blocks_are_spaced() {
        let r = Request::migration(Cycle::new(100), NodeId::gpu(1), NodeId::gpu(2));
        let t = Trace::new(vec![r]);
        // The 64 blocks span 63 cycles -> all 16-block windows within 160.
        assert_eq!(t.accumulation_fraction_within(16, 160), 1.0);
        let _ = Duration::cycles(1); // keep the import exercised
    }
}
