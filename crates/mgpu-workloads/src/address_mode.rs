//! Address-trace workload mode: the full memory path.
//!
//! Where [`crate::model::TrafficModel`] emits remote requests directly,
//! this generator emits *virtual addresses*, distributes pages across the
//! GPUs' memories (round-robin first-touch, as a unified-memory allocator
//! would), and derives the remote-request stream by running the addresses
//! through a per-GPU cache hierarchy (L1 → L2) and the access-counter
//! page-migration policy from `mgpu-sim`. It demonstrates — and tests —
//! that the communication layer's inputs are consistent with a real
//! memory system: only cache *misses* to *remote* pages become
//! interconnect traffic, and hot remote pages migrate after enough
//! touches.

use crate::request::Request;
use mgpu_sim::cache::{Cache, CacheConfig};
use mgpu_sim::page::{MigrationDecision, PageTracker};
use mgpu_types::{Cycle, Duration, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-GPU address-stream parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddressStreamParams {
    /// Size of each GPU's working set in 4 KB pages.
    pub pages_per_gpu: u64,
    /// Fraction of accesses that touch another GPU's pages.
    pub remote_fraction: f64,
    /// Sequential-run length: consecutive addresses stride within a page
    /// before jumping (models coalesced wavefront accesses).
    pub run_length: u32,
    /// Cycles between consecutive accesses.
    pub access_gap: u64,
}

impl Default for AddressStreamParams {
    fn default() -> Self {
        AddressStreamParams {
            pages_per_gpu: 256,
            remote_fraction: 0.3,
            run_length: 16,
            access_gap: 2,
        }
    }
}

/// Derives remote-request traces from synthetic address streams filtered
/// through caches and the page-migration policy.
///
/// # Examples
///
/// ```
/// use mgpu_workloads::address_mode::{AddressStreamParams, AddressTraceWorkload};
/// use mgpu_types::NodeId;
///
/// let mut wl = AddressTraceWorkload::new(4, AddressStreamParams::default(), 3);
/// let requests = wl.run(NodeId::gpu(1), 10_000);
/// // Only a fraction of accesses become remote traffic: caches and
/// // local pages absorb the rest.
/// assert!(requests.len() < 10_000);
/// ```
#[derive(Debug)]
pub struct AddressTraceWorkload {
    gpu_count: u16,
    params: AddressStreamParams,
    seed: u64,
    tracker: PageTracker,
    accesses: u64,
    remote_misses: u64,
}

impl AddressTraceWorkload {
    /// Creates the workload for a `gpu_count`-GPU system.
    ///
    /// Pages are home-assigned round-robin: page `p` lives on GPU
    /// `(p % gpu_count) + 1`. The migration threshold follows the
    /// access-counter policy (3 remote touches, a Volta-like default).
    #[must_use]
    pub fn new(gpu_count: u16, params: AddressStreamParams, seed: u64) -> Self {
        AddressTraceWorkload {
            gpu_count,
            params,
            seed,
            tracker: PageTracker::new(3),
            accesses: 0,
            remote_misses: 0,
        }
    }

    fn page_home(&self, page: u64) -> NodeId {
        NodeId::gpu((page % u64::from(self.gpu_count)) as u16 + 1)
    }

    /// Runs `count` memory accesses from `gpu` and returns the remote
    /// requests they induce.
    pub fn run(&mut self, gpu: NodeId, count: usize) -> Vec<Request> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (u64::from(gpu.raw()) << 48) ^ 0xA076_1D64_78BD_642F);
        let mut l1 = Cache::new(CacheConfig::paper_l1_vector());
        let mut l2 = Cache::new(CacheConfig::paper_l2());
        let mut requests = Vec::new();
        let mut now = Cycle::ZERO;
        let total_pages = self.params.pages_per_gpu * u64::from(self.gpu_count);
        let gpu_index = u64::from(gpu.raw()) - 1;

        let mut run_left = 0u32;
        let mut addr = 0u64;
        for _ in 0..count {
            self.accesses += 1;
            if run_left == 0 {
                // Jump to a new page: local or remote.
                let page = if rng.random_bool(self.params.remote_fraction) {
                    rng.random_range(0..total_pages)
                } else {
                    // A page homed on this GPU.
                    let local = rng.random_range(0..self.params.pages_per_gpu);
                    local * u64::from(self.gpu_count) + gpu_index
                };
                addr = page * 4096 + rng.random_range(0u64..64) * 64;
                run_left = self.params.run_length;
            }
            run_left -= 1;

            let hit_l1 = l1.access(addr, false).is_hit();
            let hit_l2 = hit_l1 || l2.access(addr, false).is_hit();
            if !hit_l2 {
                // A memory access: local or remote page?
                let page = addr / 4096;
                let home = self
                    .tracker
                    .home_of(addr)
                    .unwrap_or_else(|| self.page_home(page));
                self.tracker.set_home(addr, home);
                if home != gpu {
                    self.remote_misses += 1;
                    match self.tracker.on_access(addr, gpu) {
                        MigrationDecision::DirectAccess => {
                            requests.push(Request::direct(now, gpu, home));
                        }
                        MigrationDecision::Migrate => {
                            requests.push(Request::migration(now, gpu, home));
                            // Lines of the migrated page in local caches
                            // stay valid (same virtual address), but the
                            // old home must invalidate its copies; we model
                            // the requester-side flush conservatively.
                            l1.invalidate_page(addr);
                            l2.invalidate_page(addr);
                        }
                        MigrationDecision::Local => {}
                    }
                }
            }
            addr += 64; // next line in the run
            now += Duration::cycles(self.params.access_gap);
        }
        requests
    }

    /// Total accesses issued so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that missed the caches and hit a remote page.
    #[must_use]
    pub fn remote_misses(&self) -> u64 {
        self.remote_misses
    }

    /// Pages migrated so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.tracker.migrations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> AddressTraceWorkload {
        AddressTraceWorkload::new(4, AddressStreamParams::default(), 11)
    }

    #[test]
    fn caches_absorb_most_accesses() {
        let mut wl = workload();
        let reqs = wl.run(NodeId::gpu(1), 50_000);
        assert!(!reqs.is_empty(), "some remote traffic expected");
        // Run length 16 on 64 B lines means ≥ 15/16 of accesses are L1
        // hits; remote requests are a small minority.
        assert!(
            (reqs.len() as f64) < 0.2 * 50_000.0,
            "remote requests: {}",
            reqs.len()
        );
    }

    #[test]
    fn hot_remote_pages_migrate() {
        let params = AddressStreamParams {
            pages_per_gpu: 4,
            remote_fraction: 0.9,
            run_length: 4,
            access_gap: 1,
        };
        let mut wl = AddressTraceWorkload::new(2, params, 5);
        let reqs = wl.run(NodeId::gpu(1), 20_000);
        assert!(wl.migrations() > 0, "hot pages should migrate");
        assert!(reqs
            .iter()
            .any(|r| r.kind == crate::request::AccessKind::PageMigration));
    }

    #[test]
    fn migrated_pages_stop_generating_remote_traffic() {
        // With a tiny working set everything migrates quickly, after which
        // remote traffic dries up.
        let params = AddressStreamParams {
            pages_per_gpu: 2,
            remote_fraction: 1.0,
            run_length: 1,
            access_gap: 1,
        };
        let mut wl = AddressTraceWorkload::new(2, params, 5);
        let first = wl.run(NodeId::gpu(1), 5_000).len();
        let second = wl.run(NodeId::gpu(1), 5_000).len();
        // The tracker persists across runs; later traffic is mostly local.
        assert!(
            second * 2 < first.max(1) * 3,
            "first={first} second={second}"
        );
    }

    #[test]
    fn requests_target_remote_homes_only() {
        let mut wl = workload();
        for r in wl.run(NodeId::gpu(2), 30_000) {
            assert_eq!(r.requester, NodeId::gpu(2));
            assert_ne!(r.target, NodeId::gpu(2));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = workload();
        let mut b = workload();
        assert_eq!(a.run(NodeId::gpu(1), 10_000), b.run(NodeId::gpu(1), 10_000));
    }

    #[test]
    fn counters_accumulate() {
        let mut wl = workload();
        wl.run(NodeId::gpu(1), 1_000);
        assert_eq!(wl.accesses(), 1_000);
        assert!(wl.remote_misses() <= 1_000);
    }
}
