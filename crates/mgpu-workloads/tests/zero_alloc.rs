//! Proof that open-loop arrival generation does not allocate per request
//! (ISSUE: `ServingModel::zipf_cdf` memoization).
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up call (which builds the memoized Zipf CDF), every further
//! `generate_for` must allocate only a small constant number of times —
//! the output vector and the peer-ranking scratch — independent of the
//! request count and with no per-call CDF rebuild.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mgpu_types::NodeId;
use mgpu_workloads::{ArrivalProcess, ServingModel};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator — every contract
// (layout validity, pointer provenance) is forwarded unchanged from the
// caller, and the counter side effect never touches allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `alloc`'s contract; forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds `dealloc`'s contract; forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `realloc`'s contract; forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocations of one `generate_for` call producing `count` requests.
fn allocs_for(model: &ServingModel, count: usize) -> u64 {
    let before = alloc_count();
    let reqs = model.generate_for(NodeId::gpu(1), count);
    let after = alloc_count();
    assert_eq!(reqs.len(), count);
    after - before
}

#[test]
fn generation_allocates_a_small_constant_independent_of_load() {
    let model = ServingModel::new(8, 42, ArrivalProcess::poisson(5.0)).with_zipf(0.9);
    // Warm-up: builds the memoized Zipf CDF.
    let _ = model.generate_for(NodeId::gpu(1), 10);

    let small = allocs_for(&model, 100);
    let large = allocs_for(&model, 10_000);
    // The output vector is sized up front and the CDF is memoized, so the
    // allocation count must not scale with the request count...
    assert_eq!(
        small, large,
        "allocations grew with the request count: {small} at 100 vs {large} at 10,000"
    );
    // ...and must stay at the handful of per-call vectors (output +
    // peer-ranking scratch), with no per-call CDF rebuild on top.
    assert!(
        large <= 4,
        "generate_for allocated {large} times per call after warm-up"
    );
}

#[test]
fn memoized_cdf_reproduces_the_unmemoized_trace() {
    // Two fresh models, one used twice: the second (memoized) call must
    // be bit-identical to a first call on an identical model.
    let once = ServingModel::new(4, 7, ArrivalProcess::bursty(50.0, 8.0, 2_000.0)).with_zipf(1.2);
    let twice = ServingModel::new(4, 7, ArrivalProcess::bursty(50.0, 8.0, 2_000.0)).with_zipf(1.2);
    let _ = twice.generate_for(NodeId::gpu(2), 300);
    assert_eq!(
        once.generate_for(NodeId::gpu(2), 300),
        twice.generate_for(NodeId::gpu(2), 300),
    );
}
