//! Proof that the steady-state secure-channel message path does not
//! allocate (ISSUE: zero-allocation message path).
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up phase (which grows every reusable buffer and dense-table slot to
//! its steady-state size), the unbatched seal → open → ACK round trip must
//! perform exactly zero heap allocations, and the batched path must
//! allocate at most a small constant per *batch* (the `ClosedBatch` MAC
//! vector that escapes to the caller by design), never per block.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mgpu_secure::channel::{Endpoint, WireBlock, BLOCK_SIZE};
use mgpu_secure::key_exchange::KeyExchange;
use mgpu_types::NodeId;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator — every contract
// (layout validity, pointer provenance) is forwarded unchanged from the
// caller, and the counter side effect never touches allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `alloc`'s contract; forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds `dealloc`'s contract; forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `realloc`'s contract; forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn pair() -> (Endpoint, Endpoint) {
    let kx = KeyExchange::boot([42; 16]);
    (
        Endpoint::new(NodeId::gpu(1), 4, &kx),
        Endpoint::new(NodeId::gpu(2), 4, &kx),
    )
}

fn empty_wire(sender: NodeId, receiver: NodeId) -> WireBlock {
    WireBlock {
        sender,
        receiver,
        counter: 0,
        ciphertext: Vec::new(),
        mac: None,
        batch: None,
    }
}

#[test]
fn unbatched_roundtrip_is_allocation_free_after_warmup() {
    let (mut a, mut b) = pair();
    let mut wire = empty_wire(a.id(), b.id());
    let mut plaintext = Vec::new();
    let block = [0x5A; BLOCK_SIZE];

    // Warm-up: grows the ciphertext/plaintext buffers, the dense per-peer
    // tables, and the replay guard's outstanding vectors.
    for _ in 0..16 {
        a.seal_block_into(b.id(), &block, &mut wire);
        let ack = b.open_block_into(&wire, &mut plaintext).expect("authentic");
        a.accept_ack(&ack).expect("fresh");
    }

    let before = alloc_count();
    for i in 0..1000u64 {
        a.seal_block_into(b.id(), &block, &mut wire);
        let ack = b.open_block_into(&wire, &mut plaintext).expect("authentic");
        assert_eq!(plaintext[0], 0x5A, "round {i} decrypted correctly");
        a.accept_ack(&ack).expect("fresh");
    }
    let allocations = alloc_count() - before;
    assert_eq!(
        allocations, 0,
        "steady-state unbatched seal/open/ack must not allocate"
    );
}

#[test]
fn batched_path_allocates_per_batch_not_per_block() {
    let (mut a, mut b) = pair();
    let mut wire = empty_wire(a.id(), b.id());
    let mut plaintext = Vec::new();
    let block = [0xC3; BLOCK_SIZE];
    let batch_size = 16u64;

    // Warm-up: several full batches so the MsgMAC-storage spare pool and
    // every scratch buffer reach steady state.
    for _ in 0..4 * batch_size {
        let trailer = a.seal_batched_block_into(b.id(), &block, &mut wire);
        let ack = b
            .open_batched_block_into(&wire, &mut plaintext)
            .expect("stored");
        assert!(ack.is_none(), "trailer not yet seen");
        if let Some(t) = trailer {
            let ack = b.accept_trailer(&t).expect("verifies").expect("complete");
            a.accept_ack(&ack).expect("fresh");
        }
    }

    let batches = 64u64;
    let before = alloc_count();
    for _ in 0..batches * batch_size {
        let trailer = a.seal_batched_block_into(b.id(), &block, &mut wire);
        let ack = b
            .open_batched_block_into(&wire, &mut plaintext)
            .expect("stored");
        assert!(ack.is_none());
        if let Some(t) = trailer {
            let ack = b.accept_trailer(&t).expect("verifies").expect("complete");
            a.accept_ack(&ack).expect("fresh");
        }
    }
    let allocations = alloc_count() - before;
    // Each closed batch hands its MAC vector to the caller (`ClosedBatch`
    // escapes by design), so a fresh one is allocated per batch — but the
    // per-block path must stay allocation-free.
    assert!(
        allocations <= 2 * batches,
        "batched path allocated {allocations} times over {batches} batches \
         ({} blocks) — expected at most 2 per batch",
        batches * batch_size
    );
}
