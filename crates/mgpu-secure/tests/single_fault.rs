//! Single-fault property tests over the defense primitives.
//!
//! Every *single* mutation an on-wire adversary can make — a replayed or
//! regressed counter, a flipped ACK byte, a forged batched MAC, a wrong
//! trailer length, a within-batch reorder — must be rejected, and every
//! fault-free delivery (including arbitrary arrival orders) must be
//! accepted. These are the unit-level counterparts of the end-to-end
//! `WireHarness` campaign in `mgpu-system`.

use mgpu_secure::batching::{concat_macs, MacStorage, MsgMac};
use mgpu_secure::replay::ReplayGuard;
use mgpu_types::NodeId;
use proptest::prelude::*;

/// Deterministic, index-distinct per-block MAC (valid for `i < 251`).
fn mac_of(i: u32) -> MsgMac {
    [(i % 251) as u8; 8]
}

/// Deterministic shuffle of `0..n` from a seed (same LCG as the in-crate
/// batching property tests).
fn shuffled(n: u32, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..order.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// A `MacStorage` holding batch 0 from `src`, blocks stored in `order`,
/// with `macs[i]` in slot `order[i]`.
fn storage_with(src: NodeId, order: &[u32], mac_at: impl Fn(u32) -> MsgMac) -> MacStorage {
    let mut s = MacStorage::new(order.len());
    for &i in order {
        s.store_block(src, 0, i, mac_at(i)).unwrap();
    }
    s
}

proptest! {
    #[test]
    fn replay_guard_accepts_strictly_advancing_counters(
        start in 0u64..1_000_000,
        increments in proptest::collection::vec(1u64..1_000, 1..64),
    ) {
        let mut g = ReplayGuard::new();
        let src = NodeId::gpu(1);
        let mut ctr = start;
        for inc in increments {
            ctr += inc;
            prop_assert!(g.check_fresh(src, ctr).is_ok());
        }
        prop_assert_eq!(g.replays_detected(), 0);
    }

    #[test]
    fn replay_guard_detects_every_replayed_counter(
        start in 0u64..1_000_000,
        increments in proptest::collection::vec(1u64..1_000, 1..64),
        pick in any::<u64>(),
    ) {
        let mut g = ReplayGuard::new();
        let src = NodeId::gpu(2);
        let mut accepted = Vec::new();
        let mut ctr = start;
        for inc in increments {
            ctr += inc;
            accepted.push(ctr);
            g.check_fresh(src, ctr).unwrap();
        }
        // Replaying ANY previously accepted counter must fail...
        let replayed = accepted[(pick as usize) % accepted.len()];
        prop_assert!(g.check_fresh(src, replayed).is_err());
        prop_assert_eq!(g.replays_detected(), 1);
        // ...and detection does not poison freshness for genuine traffic.
        prop_assert!(g.check_fresh(src, ctr + 1).is_ok());
    }

    #[test]
    fn forged_ack_never_clears_outstanding_state(
        ctr in any::<u64>(),
        mac_seed in any::<u64>(),
        byte in 0usize..8,
        xor in 1u8..=255,
    ) {
        let mac: MsgMac = mac_seed.to_le_bytes();
        let mut g = ReplayGuard::new();
        let dst = NodeId::gpu(3);
        g.register_outstanding(dst, ctr, mac);
        let mut forged = mac;
        forged[byte] ^= xor;
        prop_assert!(g.accept_ack(dst, ctr, forged).is_err());
        prop_assert!(
            g.is_outstanding(dst, ctr),
            "a forged ACK must not clear the outstanding slot"
        );
        prop_assert_eq!(g.ack_mismatches(), 1);
        // The genuine ACK still lands afterwards.
        prop_assert!(g.accept_ack(dst, ctr, mac).is_ok());
        prop_assert!(!g.is_outstanding(dst, ctr));
    }

    #[test]
    fn mac_storage_accepts_any_fault_free_permutation(
        n in 1u32..64,
        seed in any::<u64>(),
    ) {
        let src = NodeId::gpu(1);
        let mut s = storage_with(src, &shuffled(n, seed), mac_of);
        let genuine = concat_macs(&(0..n).map(mac_of).collect::<Vec<_>>());
        prop_assert!(s.complete(src, 0, n, |c| c == genuine).unwrap());
        prop_assert_eq!(s.pending(src, 0), 0);
        prop_assert_eq!(s.rejected_completions(), 0);
    }

    #[test]
    fn mac_storage_rejects_every_single_byte_mac_forgery(
        n in 1u32..64,
        seed in any::<u64>(),
        pos_pick in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let src = NodeId::gpu(1);
        let mut s = storage_with(src, &shuffled(n, seed), mac_of);
        let genuine = concat_macs(&(0..n).map(mac_of).collect::<Vec<_>>());
        // The trailer attests a concatenation that differs in one byte
        // (equivalently: one per-block MAC was flipped on the wire).
        let mut forged = genuine.clone();
        let pos = (pos_pick as usize) % forged.len();
        forged[pos] ^= xor;
        prop_assert!(!s.complete(src, 0, n, |c| c == forged).unwrap());
        // The slot survives the forgery, so the genuine trailer completes.
        prop_assert_eq!(s.pending(src, 0), n as usize);
        prop_assert_eq!(s.rejected_completions(), 1);
        prop_assert!(s.complete(src, 0, n, |c| c == genuine).unwrap());
    }

    #[test]
    fn mac_storage_detects_any_within_batch_reorder(
        n in 2u32..64,
        pick in any::<u64>(),
    ) {
        let src = NodeId::gpu(1);
        let i = (pick as u32) % n;
        let j = (i + 1 + ((pick >> 32) as u32) % (n - 1)) % n;
        prop_assert!(i != j);
        // Blocks i and j arrive with swapped index labels.
        let swap = move |k: u32| mac_of(if k == i { j } else if k == j { i } else { k });
        let mut s = storage_with(src, &(0..n).collect::<Vec<_>>(), swap);
        let genuine = concat_macs(&(0..n).map(mac_of).collect::<Vec<_>>());
        prop_assert!(!s.complete(src, 0, n, |c| c == genuine).unwrap());
        prop_assert_eq!(s.pending(src, 0), n as usize);
    }

    #[test]
    fn mac_storage_rejects_wrong_trailer_length_and_retains_slot(
        n in 1u32..64,
        seed in any::<u64>(),
        wrong in 0u32..128,
    ) {
        prop_assume!(wrong != n);
        let src = NodeId::gpu(1);
        let mut s = storage_with(src, &shuffled(n, seed), mac_of);
        let genuine = concat_macs(&(0..n).map(mac_of).collect::<Vec<_>>());
        prop_assert!(s.complete(src, 0, wrong, |_| true).is_err());
        // Length mismatch must not discard the stored MACs (a forged
        // trailer would otherwise permanently block the genuine one).
        prop_assert_eq!(s.pending(src, 0), n as usize);
        prop_assert_eq!(s.rejected_completions(), 1);
        prop_assert!(s.complete(src, 0, n, |c| c == genuine).unwrap());
    }
}
