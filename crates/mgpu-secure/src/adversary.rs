//! Deterministic wire-level adversary: fault kinds, the seeded injection
//! schedule, and the security-event accounting the defenses feed.
//!
//! The paper's threat model (§II-C) is an attacker with physical access to
//! the interconnect: they can replay ciphertexts, flip MAC bytes, drop or
//! forge ACKs, tamper with batch trailers and reorder blocks — but cannot
//! break AES-GCM. This module gives that attacker a concrete, *seeded*
//! schedule ([`FaultPlan`]) so an adversarial run is exactly reproducible,
//! and a ledger ([`SecurityEventLog`]) recording, per fault kind and per
//! node pair, whether each injected fault was detected and how long
//! detection took.
//!
//! # Examples
//!
//! ```
//! use mgpu_secure::adversary::{FaultKind, FaultPlan};
//! use mgpu_types::AdversaryConfig;
//!
//! let mut plan = FaultPlan::new(&AdversaryConfig::active(1000));
//! // rate 1000‰ strikes at every opportunity; the kind is drawn
//! // uniformly from the kinds applicable to an unbatched block.
//! let kind = plan.draw(&FaultKind::UNBATCHED_BLOCK).unwrap();
//! assert!(FaultKind::UNBATCHED_BLOCK.contains(&kind));
//! ```

use mgpu_types::{AdversaryConfig, Cycle, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// The fault classes the wire adversary can inject (paper §II-C attacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Re-deliver an earlier block with its stale counter.
    ReplayBlock,
    /// Flip a byte of a per-block MAC (or, batched, of the ciphertext the
    /// lazily recomputed MAC covers).
    FlipMac,
    /// Drop an ACK on the return path.
    DropAck,
    /// Forge an ACK's echoed MAC.
    ForgeAck,
    /// Rewrite a batch trailer's 1 B length field.
    TamperTrailerLen,
    /// Flip a byte of a batch trailer's batched MAC.
    TamperTrailerMac,
    /// Swap the batch indices of two adjacent blocks of one batch.
    ReorderBatch,
}

impl FaultKind {
    /// Every fault kind, in declaration order (the log's array index).
    pub const ALL: [FaultKind; 7] = [
        FaultKind::ReplayBlock,
        FaultKind::FlipMac,
        FaultKind::DropAck,
        FaultKind::ForgeAck,
        FaultKind::TamperTrailerLen,
        FaultKind::TamperTrailerMac,
        FaultKind::ReorderBatch,
    ];

    /// Number of fault kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Kinds applicable when an unbatched (per-block-MAC) block crosses
    /// the wire.
    pub const UNBATCHED_BLOCK: [FaultKind; 4] = [
        FaultKind::ReplayBlock,
        FaultKind::FlipMac,
        FaultKind::DropAck,
        FaultKind::ForgeAck,
    ];

    /// Kinds applicable when a batched block crosses the wire.
    pub const BATCHED_BLOCK: [FaultKind; 3] = [
        FaultKind::ReplayBlock,
        FaultKind::FlipMac,
        FaultKind::ReorderBatch,
    ];

    /// Kinds applicable when a batch trailer (and its ACK) crosses.
    pub const TRAILER: [FaultKind; 4] = [
        FaultKind::TamperTrailerLen,
        FaultKind::TamperTrailerMac,
        FaultKind::DropAck,
        FaultKind::ForgeAck,
    ];

    /// Index of this kind within [`FaultKind::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind in ALL")
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::ReplayBlock => "replay-block",
            FaultKind::FlipMac => "flip-mac",
            FaultKind::DropAck => "drop-ack",
            FaultKind::ForgeAck => "forge-ack",
            FaultKind::TamperTrailerLen => "tamper-trailer-len",
            FaultKind::TamperTrailerMac => "tamper-trailer-mac",
            FaultKind::ReorderBatch => "reorder-batch",
        };
        f.write_str(s)
    }
}

/// The adversary's deterministic injection schedule.
///
/// A small xorshift64* generator seeded from [`AdversaryConfig::seed`]
/// decides, at each *opportunity* (a block, trailer or ACK crossing the
/// wire), whether to strike — with probability `rate_permille / 1000` —
/// and which applicable [`FaultKind`] to use. Identical config ⇒ identical
/// schedule ⇒ identical [`SecurityEventLog`], which the attack-campaign
/// experiment asserts.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
    rate_permille: u32,
}

impl FaultPlan {
    /// Builds the schedule for `config`.
    #[must_use]
    pub fn new(config: &AdversaryConfig) -> Self {
        // splitmix64 step scrambles the user seed into a non-zero state.
        let mut z = config.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultPlan {
            state: (z ^ (z >> 31)).max(1),
            rate_permille: config.rate_permille.min(1000),
        }
    }

    /// Next raw pseudo-random word (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draws whether to strike at this opportunity and, if so, which of
    /// the `applicable` kinds to inject. Always advances the generator the
    /// same number of steps, so the schedule does not depend on earlier
    /// outcomes' branches.
    pub fn draw(&mut self, applicable: &[FaultKind]) -> Option<FaultKind> {
        let strike = self.next_u64() % 1000 < u64::from(self.rate_permille);
        let pick = self.next_u64() as usize % applicable.len().max(1);
        (strike && !applicable.is_empty()).then(|| applicable[pick])
    }

    /// Uniform index in `0..n` (byte/bit positions for tampering).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick from empty range");
        self.next_u64() as usize % n
    }
}

/// One injected fault, from injection to (expected) detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityEvent {
    /// What was injected.
    pub kind: FaultKind,
    /// Sender of the attacked stream.
    pub src: NodeId,
    /// Receiver of the attacked stream.
    pub dst: NodeId,
    /// Cycle the fault was put on the wire.
    pub injected_at: Cycle,
    /// Cycle a defense flagged it (inline error, failed batch
    /// verification, or ACK timeout).
    pub detected_at: Cycle,
}

/// Aggregated security-event accounting for one run.
///
/// Counts injections, detections and misses per [`FaultKind`], detections
/// per attacked `(src, dst)` pair, accumulated time-to-detection, and
/// *false positives* — defense errors on traffic the adversary did not
/// touch, which a correct implementation never produces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecurityEventLog {
    injected: [u64; FaultKind::COUNT],
    detected: [u64; FaultKind::COUNT],
    missed: [u64; FaultKind::COUNT],
    false_positives: u64,
    pair_detections: BTreeMap<(NodeId, NodeId), u64>,
    ttd_sum: u128,
    ttd_count: u64,
}

impl SecurityEventLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        SecurityEventLog::default()
    }

    /// Records an injected fault that a defense detected.
    pub fn record_detection(&mut self, event: SecurityEvent) {
        let i = event.kind.index();
        self.injected[i] += 1;
        self.detected[i] += 1;
        *self
            .pair_detections
            .entry((event.src, event.dst))
            .or_insert(0) += 1;
        self.ttd_sum += u128::from(
            event
                .detected_at
                .saturating_since(event.injected_at)
                .as_u64(),
        );
        self.ttd_count += 1;
    }

    /// Records an injected fault that *no* defense flagged — a hole.
    pub fn record_miss(&mut self, kind: FaultKind) {
        let i = kind.index();
        self.injected[i] += 1;
        self.missed[i] += 1;
    }

    /// Records a defense error on untouched traffic.
    pub fn record_false_positive(&mut self) {
        self.false_positives += 1;
    }

    /// Merges another log into this one.
    pub fn merge(&mut self, other: &SecurityEventLog) {
        for i in 0..FaultKind::COUNT {
            self.injected[i] += other.injected[i];
            self.detected[i] += other.detected[i];
            self.missed[i] += other.missed[i];
        }
        self.false_positives += other.false_positives;
        for (&pair, &n) in &other.pair_detections {
            *self.pair_detections.entry(pair).or_insert(0) += n;
        }
        self.ttd_sum += other.ttd_sum;
        self.ttd_count += other.ttd_count;
    }

    /// Faults injected for `kind`.
    #[must_use]
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Detections for `kind`.
    #[must_use]
    pub fn detected_of(&self, kind: FaultKind) -> u64 {
        self.detected[kind.index()]
    }

    /// Misses for `kind`.
    #[must_use]
    pub fn missed_of(&self, kind: FaultKind) -> u64 {
        self.missed[kind.index()]
    }

    /// Total faults injected.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total faults detected.
    #[must_use]
    pub fn total_detected(&self) -> u64 {
        self.detected.iter().sum()
    }

    /// Total faults missed.
    #[must_use]
    pub fn total_missed(&self) -> u64 {
        self.missed.iter().sum()
    }

    /// Defense errors on untouched traffic.
    #[must_use]
    pub fn false_positives(&self) -> u64 {
        self.false_positives
    }

    /// Detections per attacked `(src, dst)` pair, in deterministic order.
    #[must_use]
    pub fn pair_detections(&self) -> &BTreeMap<(NodeId, NodeId), u64> {
        &self.pair_detections
    }

    /// Detected / injected; `1.0` when nothing was injected.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        let injected = self.total_injected();
        if injected == 0 {
            1.0
        } else {
            self.total_detected() as f64 / injected as f64
        }
    }

    /// Mean cycles from injection to detection.
    #[must_use]
    pub fn mean_time_to_detection(&self) -> f64 {
        if self.ttd_count == 0 {
            0.0
        } else {
            self.ttd_sum as f64 / self.ttd_count as f64
        }
    }

    /// Whether the run recorded no security activity at all — what a
    /// fault-free run must look like.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_injected() == 0 && self.false_positives == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_types::Duration;

    fn event(kind: FaultKind, at: u64, ttd: u64) -> SecurityEvent {
        SecurityEvent {
            kind,
            src: NodeId::gpu(1),
            dst: NodeId::gpu(2),
            injected_at: Cycle::new(at),
            detected_at: Cycle::new(at) + Duration::cycles(ttd),
        }
    }

    #[test]
    fn kind_indices_roundtrip() {
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        assert_eq!(FaultKind::COUNT, 7);
        // Display names are unique.
        let mut names: Vec<String> = FaultKind::ALL.iter().map(ToString::to_string).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), FaultKind::COUNT);
    }

    #[test]
    fn plan_is_deterministic() {
        let cfg = AdversaryConfig::active(100);
        let mut a = FaultPlan::new(&cfg);
        let mut b = FaultPlan::new(&cfg);
        for _ in 0..1000 {
            assert_eq!(
                a.draw(&FaultKind::UNBATCHED_BLOCK),
                b.draw(&FaultKind::UNBATCHED_BLOCK)
            );
        }
    }

    #[test]
    fn rate_bounds_strike_frequency() {
        let mut never = FaultPlan::new(&AdversaryConfig::active(0));
        let mut always = FaultPlan::new(&AdversaryConfig::active(1000));
        for _ in 0..500 {
            assert!(never.draw(&FaultKind::TRAILER).is_none());
            assert!(always.draw(&FaultKind::TRAILER).is_some());
        }
        let mut sometimes = FaultPlan::new(&AdversaryConfig::active(200));
        let strikes = (0..10_000)
            .filter(|_| sometimes.draw(&FaultKind::TRAILER).is_some())
            .count();
        assert!(
            (1_000..3_000).contains(&strikes),
            "rate 200‰ drew {strikes} strikes in 10k draws"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(&AdversaryConfig {
            seed: 1,
            ..AdversaryConfig::active(500)
        });
        let mut b = FaultPlan::new(&AdversaryConfig {
            seed: 2,
            ..AdversaryConfig::active(500)
        });
        let seq_a: Vec<_> = (0..64).map(|_| a.next_u64()).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn log_accounting() {
        let mut log = SecurityEventLog::new();
        assert!(log.is_clean());
        log.record_detection(event(FaultKind::FlipMac, 100, 40));
        log.record_detection(event(FaultKind::FlipMac, 200, 60));
        log.record_miss(FaultKind::DropAck);
        log.record_false_positive();
        assert_eq!(log.injected_of(FaultKind::FlipMac), 2);
        assert_eq!(log.detected_of(FaultKind::FlipMac), 2);
        assert_eq!(log.missed_of(FaultKind::DropAck), 1);
        assert_eq!(log.total_injected(), 3);
        assert_eq!(log.total_detected(), 2);
        assert_eq!(log.total_missed(), 1);
        assert_eq!(log.false_positives(), 1);
        assert!((log.detection_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((log.mean_time_to_detection() - 50.0).abs() < 1e-12);
        assert_eq!(log.pair_detections()[&(NodeId::gpu(1), NodeId::gpu(2))], 2);
        assert!(!log.is_clean());
    }

    #[test]
    fn log_merge_adds_fields() {
        let mut a = SecurityEventLog::new();
        a.record_detection(event(FaultKind::ReplayBlock, 0, 0));
        let mut b = SecurityEventLog::new();
        b.record_detection(event(FaultKind::ReplayBlock, 10, 20));
        b.record_miss(FaultKind::ReorderBatch);
        a.merge(&b);
        assert_eq!(a.total_injected(), 3);
        assert_eq!(a.detected_of(FaultKind::ReplayBlock), 2);
        assert_eq!(a.missed_of(FaultKind::ReorderBatch), 1);
        assert!((a.mean_time_to_detection() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log_rates() {
        let log = SecurityEventLog::new();
        assert!((log.detection_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(log.mean_time_to_detection(), 0.0);
    }
}
