//! The `Shared` scheme: one shared send counter per node.
//!
//! To avoid the `Private` scheme's quadratic storage, `Shared` (paper
//! Fig. 7b) keeps a *single* message counter for all outgoing traffic. The
//! pad seed omits the receiver ID, so one send-pad entry serves any
//! destination — but only one pad can be speculated ahead, and on the
//! receive side a node can only pre-generate correctly when the sender's
//! previous message also came to it (back-to-back transfers). Any send to
//! a third party advances the shared counter and invalidates every other
//! receiver's speculation.
//!
//! The receive table gets the remaining buffer budget, split evenly across
//! senders: with the paper's 4-GPU / 32-buffer configuration, 1 send entry
//! and 31 receive entries (≈7 per sender). A deeper receive window lets a
//! receiver survive *runs* of back-to-back messages: the pads for the
//! sender's next `d` counters are all speculated, and an arriving counter
//! within that range still hits (anything beyond — because the sender
//! interleaved another destination more than `d` times — misses).

use super::{OtpScheme, SendOutcome};
use crate::otp::{OtpStats, PadWindow};
use mgpu_crypto::engine::{AesEngine, PadTiming};
use mgpu_types::{Cycle, DenseNodeMap, Direction, NodeId, OtpSchemeKind, SystemConfig};

/// Shared OTP buffer management (see module docs).
#[derive(Debug)]
pub struct SharedScheme {
    /// Single send window: global counter, destination-independent pad.
    send: PadWindow,
    /// Per-sender receive windows tracking that sender's *global* counter.
    recv: DenseNodeMap<PadWindow>,
    stats: OtpStats,
}

impl SharedScheme {
    /// Builds the scheme for node `me` with the same total buffer budget as
    /// `Private` (paper §III-A comparison methodology): 1 send entry, the
    /// rest split across receive windows.
    #[must_use]
    pub fn new(me: NodeId, config: &SystemConfig, engine: &mut AesEngine) -> Self {
        let total = config.total_otp_buffers_per_node();
        let peers: Vec<NodeId> = me.peers(config.gpu_count).collect();
        let recv_budget = total.saturating_sub(1);
        let per_peer = recv_budget / peers.len() as u32;
        let mut recv = DenseNodeMap::with_gpu_count(config.gpu_count);
        for &peer in &peers {
            recv.insert(peer, PadWindow::new(per_peer, Cycle::ZERO, engine));
        }
        SharedScheme {
            send: PadWindow::new(1, Cycle::ZERO, engine),
            recv,
            stats: OtpStats::default(),
        }
    }

    /// The receive-window depth per sender (test/inspection hook).
    #[must_use]
    pub fn recv_depth(&self, peer: NodeId) -> u32 {
        self.recv[peer].depth()
    }
}

impl OtpScheme for SharedScheme {
    fn kind(&self) -> OtpSchemeKind {
        OtpSchemeKind::Shared
    }

    fn on_send(&mut self, now: Cycle, _peer: NodeId, engine: &mut AesEngine) -> SendOutcome {
        // One counter, one speculated pad, any destination.
        let (timing, counter) = self.send.use_pad(now, engine);
        self.stats.record(Direction::Send, timing, engine.latency());
        SendOutcome { timing, counter }
    }

    fn on_recv(&mut self, now: Cycle, peer: NodeId, ctr: u64, engine: &mut AesEngine) -> PadTiming {
        let window = self.recv.get_mut(peer).expect("peer within system");
        // The carried counter is the sender's shared counter; it may have
        // advanced past our speculation window if the sender interleaved
        // other destinations.
        let timing = window.use_pad_at(ctr, now, engine);
        self.stats.record(Direction::Recv, timing, engine.latency());
        timing
    }

    fn stats(&self) -> &OtpStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::otp::PadClass;
    use mgpu_types::Duration;

    fn setup() -> (SharedScheme, AesEngine) {
        let cfg = SystemConfig::paper_4gpu();
        let mut engine = AesEngine::new(cfg.security.aes_latency);
        let scheme = SharedScheme::new(NodeId::gpu(1), &cfg, &mut engine);
        (scheme, engine)
    }

    #[test]
    fn buffer_budget_matches_paper() {
        // 4-GPU OTP 4x: 32 buffers -> 1 send + 31 recv -> 7 per sender.
        let (s, _) = setup();
        for peer in NodeId::gpu(1).peers(4) {
            assert_eq!(s.recv_depth(peer), 7);
        }
    }

    #[test]
    fn send_counter_is_global_across_destinations() {
        let (mut s, mut e) = setup();
        let now = Cycle::new(10_000);
        assert_eq!(s.on_send(now, NodeId::gpu(2), &mut e).counter, 0);
        assert_eq!(s.on_send(now, NodeId::gpu(3), &mut e).counter, 1);
        assert_eq!(s.on_send(now, NodeId::CPU, &mut e).counter, 2);
    }

    #[test]
    fn single_send_entry_dies_under_bursts() {
        let (mut s, mut e) = setup();
        let now = Cycle::new(10_000);
        let first = s.on_send(now, NodeId::gpu(2), &mut e);
        assert_eq!(PadClass::from(first.timing), PadClass::Hit);
        // Every further same-cycle send waits a full latency (or more —
        // the single entry serializes generation): nothing is hidden.
        let latency = Duration::cycles(40);
        for _ in 0..8 {
            let out = s.on_send(now, NodeId::gpu(2), &mut e);
            assert_eq!(
                crate::otp::OtpStats::classify(out.timing, latency),
                PadClass::Miss
            );
        }
    }

    #[test]
    fn spaced_sends_hit_regardless_of_destination() {
        let (mut s, mut e) = setup();
        let mut now = Cycle::new(10_000);
        for peer in [NodeId::gpu(2), NodeId::gpu(3), NodeId::CPU, NodeId::gpu(4)] {
            let out = s.on_send(now, peer, &mut e);
            assert_eq!(PadClass::from(out.timing), PadClass::Hit, "peer {peer}");
            now += Duration::cycles(100);
        }
    }

    #[test]
    fn recv_back_to_back_hits_interleaved_misses() {
        let (mut s, mut e) = setup();
        // Sender GPU2's global counters 0..=6 arrive back-to-back: within
        // our 7-deep speculation window.
        for c in 0..7u64 {
            let t = s.on_recv(Cycle::new(10_000 + c * 100), NodeId::gpu(2), c, &mut e);
            assert!(t.latency_hidden(), "counter {c}");
        }
        // The sender then talks to others 50 times; counter jumps to 57:
        // outside the window -> miss.
        let t = s.on_recv(Cycle::new(50_000), NodeId::gpu(2), 57, &mut e);
        assert_eq!(t, PadTiming::Miss);
        // Resynced: 58 hits again.
        let t = s.on_recv(Cycle::new(60_000), NodeId::gpu(2), 58, &mut e);
        assert!(t.latency_hidden());
    }

    #[test]
    fn recv_small_gap_within_window_still_hits() {
        let (mut s, mut e) = setup();
        s.on_recv(Cycle::new(10_000), NodeId::gpu(2), 0, &mut e);
        // Sender sent 3 messages elsewhere; counter 4 is still within the
        // 7-deep speculation.
        let t = s.on_recv(Cycle::new(20_000), NodeId::gpu(2), 4, &mut e);
        assert!(t.latency_hidden());
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, mut e) = setup();
        let now = Cycle::new(10_000);
        s.on_send(now, NodeId::gpu(2), &mut e);
        s.on_send(now, NodeId::gpu(2), &mut e);
        s.on_recv(now, NodeId::gpu(3), 0, &mut e);
        assert_eq!(s.stats().total(Direction::Send), 2);
        assert_eq!(s.stats().total(Direction::Recv), 1);
        assert_eq!(s.stats().count(Direction::Send, PadClass::Miss), 1);
    }
}
