//! The `Private` scheme: fixed per pair-direction pad windows.
//!
//! Each node keeps two pad tables (paper Fig. 7a): a send table with one
//! entry group per destination and a receive table with one entry group per
//! source. Counters are perfectly synchronized per pair, so pre-generation
//! works whenever the window has not been depleted by a burst. The cost is
//! storage that grows quadratically with node count (paper Table I).

use super::{OtpScheme, SendOutcome};
use crate::otp::{OtpStats, PadWindow};
use mgpu_crypto::engine::{AesEngine, PadTiming};
use mgpu_types::{Cycle, DenseNodeMap, Direction, NodeId, OtpSchemeKind, SystemConfig};

/// Private OTP buffer management (see module docs).
#[derive(Debug)]
pub struct PrivateScheme {
    send: DenseNodeMap<PadWindow>,
    recv: DenseNodeMap<PadWindow>,
    stats: OtpStats,
}

impl PrivateScheme {
    /// Builds the per-pair windows for node `me`, `config.security
    /// .otp_multiplier` pads deep in each direction, issuing the initial
    /// pad generations immediately (boot-time warmup).
    #[must_use]
    pub fn new(me: NodeId, config: &SystemConfig, engine: &mut AesEngine) -> Self {
        let depth = config.security.otp_multiplier;
        let mut send = DenseNodeMap::with_gpu_count(config.gpu_count);
        let mut recv = DenseNodeMap::with_gpu_count(config.gpu_count);
        for peer in me.peers(config.gpu_count) {
            send.insert(peer, PadWindow::new(depth, Cycle::ZERO, engine));
            recv.insert(peer, PadWindow::new(depth, Cycle::ZERO, engine));
        }
        PrivateScheme {
            send,
            recv,
            stats: OtpStats::default(),
        }
    }

    /// The window depth for `peer` in `dir` (test/inspection hook).
    #[must_use]
    pub fn depth(&self, peer: NodeId, dir: Direction) -> u32 {
        match dir {
            Direction::Send => self.send[peer].depth(),
            Direction::Recv => self.recv[peer].depth(),
        }
    }
}

impl OtpScheme for PrivateScheme {
    fn kind(&self) -> OtpSchemeKind {
        OtpSchemeKind::Private
    }

    fn on_send(&mut self, now: Cycle, peer: NodeId, engine: &mut AesEngine) -> SendOutcome {
        let window = self.send.get_mut(peer).expect("peer within system");
        let (timing, counter) = window.use_pad(now, engine);
        self.stats.record(Direction::Send, timing, engine.latency());
        SendOutcome { timing, counter }
    }

    fn on_recv(&mut self, now: Cycle, peer: NodeId, ctr: u64, engine: &mut AesEngine) -> PadTiming {
        let window = self.recv.get_mut(peer).expect("peer within system");
        let timing = window.use_pad_for(ctr, now, engine);
        self.stats.record(Direction::Recv, timing, engine.latency());
        timing
    }

    fn stats(&self) -> &OtpStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::otp::PadClass;
    use mgpu_types::Duration;

    fn setup() -> (PrivateScheme, AesEngine) {
        let cfg = SystemConfig::paper_4gpu();
        let mut engine = AesEngine::new(cfg.security.aes_latency);
        let scheme = PrivateScheme::new(NodeId::gpu(1), &cfg, &mut engine);
        (scheme, engine)
    }

    #[test]
    fn windows_exist_for_every_peer() {
        let (s, _) = setup();
        for peer in NodeId::gpu(1).peers(4) {
            assert_eq!(s.depth(peer, Direction::Send), 4);
            assert_eq!(s.depth(peer, Direction::Recv), 4);
        }
    }

    #[test]
    fn warm_sends_hit() {
        let (mut s, mut e) = setup();
        let out = s.on_send(Cycle::new(10_000), NodeId::gpu(2), &mut e);
        assert_eq!(out.timing, PadTiming::Hit);
        assert_eq!(out.counter, 0);
        assert_eq!(s.stats().count(Direction::Send, PadClass::Hit), 1);
    }

    #[test]
    fn per_pair_counters_are_independent() {
        let (mut s, mut e) = setup();
        let now = Cycle::new(10_000);
        assert_eq!(s.on_send(now, NodeId::gpu(2), &mut e).counter, 0);
        assert_eq!(s.on_send(now, NodeId::gpu(3), &mut e).counter, 0);
        assert_eq!(s.on_send(now, NodeId::gpu(2), &mut e).counter, 1);
        assert_eq!(s.on_send(now, NodeId::CPU, &mut e).counter, 0);
    }

    #[test]
    fn burst_beyond_window_misses() {
        let (mut s, mut e) = setup();
        let now = Cycle::new(10_000);
        let latency = Duration::cycles(40);
        let mut classes = Vec::new();
        for _ in 0..8 {
            let out = s.on_send(now, NodeId::gpu(2), &mut e);
            classes.push(crate::otp::OtpStats::classify(out.timing, latency));
        }
        assert_eq!(&classes[..4], &[PadClass::Hit; 4]);
        assert!(classes[4..].iter().all(|&c| c == PadClass::Miss));
        // A burst to a *different* peer still hits: windows are private.
        let out = s.on_send(now, NodeId::gpu(3), &mut e);
        assert_eq!(PadClass::from(out.timing), PadClass::Hit);
    }

    #[test]
    fn recv_in_order_hits_out_of_order_misses() {
        let (mut s, mut e) = setup();
        assert!(s
            .on_recv(Cycle::new(10_000), NodeId::gpu(2), 0, &mut e)
            .latency_hidden());
        // Counter 5 skips ahead (would happen under a peer's Shared
        // counter): miss + resync.
        assert_eq!(
            s.on_recv(Cycle::new(20_000), NodeId::gpu(2), 5, &mut e),
            PadTiming::Miss
        );
        assert!(s
            .on_recv(Cycle::new(30_000), NodeId::gpu(2), 6, &mut e)
            .latency_hidden());
    }

    #[test]
    fn stats_track_both_directions() {
        let (mut s, mut e) = setup();
        let now = Cycle::new(10_000);
        s.on_send(now, NodeId::gpu(2), &mut e);
        s.on_recv(now, NodeId::gpu(3), 0, &mut e);
        s.on_recv(now + Duration::cycles(100), NodeId::gpu(3), 1, &mut e);
        assert_eq!(s.stats().total(Direction::Send), 1);
        assert_eq!(s.stats().total(Direction::Recv), 2);
    }

    #[test]
    #[should_panic(expected = "within system")]
    fn unknown_peer_panics() {
        let (mut s, mut e) = setup();
        s.on_send(Cycle::ZERO, NodeId::gpu(9), &mut e);
    }
}
