//! The `Cached` scheme: an LRU-managed pool of OTP buffer entries.
//!
//! `Cached` (paper Fig. 7c) is the hybrid of `Private` and `Shared`: a
//! fixed pool of OTP buffer entries is shared by all pair-directions and
//! managed with LRU replacement. A pair-direction whose pads are resident
//! behaves like `Private` (synchronized per-pair counters, pre-generated
//! pads); one whose entries were evicted behaves like `Shared`: the sender
//! falls back to an on-demand generation using the node's **maximum
//! MsgCTR** (guaranteeing counter freshness without per-pair state, as in
//! the paper). The counter jump desynchronizes the *receiver's* window for
//! that pair, so the receive side also pays a miss and resyncs — the
//! hidden cost that keeps `Cached` behind a well-adapted allocator.
//!
//! The flexibility win over `Private` is that *active* pair-directions can
//! hold more entries than their even share while idle ones hold none: on a
//! miss, the window regrows by the configured multiplier, stealing entries
//! from the least-recently-used pair-directions.

use super::{OtpScheme, SendOutcome};
use crate::otp::{OtpStats, PadWindow};
use mgpu_crypto::engine::{AesEngine, PadTiming};
use mgpu_types::{Cycle, DenseNodeMap, Direction, NodeId, OtpSchemeKind, SystemConfig};

type Key = (NodeId, Direction);

/// Array index for a direction: send windows live in slot 0, receive
/// windows in slot 1.
fn di(dir: Direction) -> usize {
    match dir {
        Direction::Send => 0,
        Direction::Recv => 1,
    }
}

/// Cached (LRU pool) OTP buffer management (see module docs).
#[derive(Debug)]
pub struct CachedScheme {
    /// Pad windows per pair-direction, dense-indexed: `windows[di(dir)]`
    /// holds that direction's per-peer windows.
    windows: [DenseNodeMap<PadWindow>; 2],
    /// LRU order: front = least recently used.
    lru: Vec<Key>,
    /// Total pool capacity in buffer entries.
    capacity: u32,
    /// Entries a missing window regrows by.
    growth: u32,
    /// Upper bound on one pair-direction's window (half the pool).
    per_pair_cap: u32,
    /// Highest MsgCTR this node has used on any send path — the `Shared`
    /// fallback counter for evicted windows.
    max_ctr: u64,
    /// Per-pair-direction miss counters: growth fires every other miss
    /// (an LRU cache reacts, and only slowly, to repeated pressure).
    miss_counts: [DenseNodeMap<u32>; 2],
    stats: OtpStats,
}

impl CachedScheme {
    /// Builds the scheme for node `me`. The pool capacity equals the
    /// `Private` scheme's total (paper §III-A: "the size of the on-chip OTP
    /// buffer is kept constant for all techniques"); initial allocation is
    /// even, exactly like `Private`.
    #[must_use]
    pub fn new(me: NodeId, config: &SystemConfig, engine: &mut AesEngine) -> Self {
        let capacity = config.total_otp_buffers_per_node();
        let depth = config.security.otp_multiplier;
        let mut windows = [
            DenseNodeMap::with_gpu_count(config.gpu_count),
            DenseNodeMap::with_gpu_count(config.gpu_count),
        ];
        let mut lru = Vec::new();
        for peer in me.peers(config.gpu_count) {
            for dir in mgpu_types::Direction::BOTH {
                windows[di(dir)].insert(peer, PadWindow::new(depth, Cycle::ZERO, engine));
                lru.push((peer, dir));
            }
        }
        CachedScheme {
            windows,
            lru,
            capacity,
            // LRU caching adapts one entry at a time and can barely grow a
            // stream's window beyond its Private share — it reacts to
            // misses, it does not anticipate like the Dynamic allocator's
            // monitoring phase.
            growth: 1,
            per_pair_cap: depth + 1,
            max_ctr: 0,
            miss_counts: [DenseNodeMap::new(), DenseNodeMap::new()],
            stats: OtpStats::default(),
        }
    }

    fn touch(&mut self, key: Key) {
        if let Some(pos) = self.lru.iter().position(|&k| k == key) {
            self.lru.remove(pos);
        }
        self.lru.push(key);
    }

    fn used_entries(&self) -> u32 {
        self.windows
            .iter()
            .flat_map(DenseNodeMap::values)
            .map(PadWindow::depth)
            .sum()
    }

    /// Frees at least `needed` entries by shrinking the least-recently-used
    /// windows (never the protected `key` itself).
    fn evict_for(&mut self, key: Key, needed: u32, now: Cycle, engine: &mut AesEngine) {
        let mut to_free = needed;
        let order: Vec<Key> = self.lru.clone();
        for victim in order {
            if to_free == 0 {
                break;
            }
            if victim == key {
                continue;
            }
            let window = self.windows[di(victim.1)]
                .get_mut(victim.0)
                .expect("window exists");
            let depth = window.depth();
            if depth == 0 {
                continue;
            }
            let take = depth.min(to_free);
            window.set_depth(depth - take, now, engine);
            to_free -= take;
        }
    }

    /// Grows `key`'s window toward `target`, evicting LRU entries as
    /// needed. Send windows may exceed the even share by one entry (they
    /// face the burst drains); receive windows stay at the even share.
    fn grow(&mut self, key: Key, target: u32, now: Cycle, engine: &mut AesEngine) {
        let cap = match key.1 {
            Direction::Send => self.per_pair_cap,
            Direction::Recv => self.per_pair_cap.saturating_sub(1).max(1),
        };
        let target = target.min(cap);
        let current = self.windows[di(key.1)][key.0].depth();
        if target <= current {
            return;
        }
        let extra = target - current;
        let used = self.used_entries();
        let free = self.capacity.saturating_sub(used);
        if extra > free {
            self.evict_for(key, extra - free, now, engine);
        }
        let window = self.windows[di(key.1)]
            .get_mut(key.0)
            .expect("window exists");
        window.set_depth(target, now, engine);
    }

    fn classify_use(
        &mut self,
        key: Key,
        now: Cycle,
        ctr: Option<u64>,
        engine: &mut AesEngine,
    ) -> (PadTiming, u64) {
        let max_ctr = self.max_ctr;
        let window = self.windows[di(key.1)]
            .get_mut(key.0)
            .expect("peer within system");
        let (timing, counter) = match ctr {
            None if window.depth() == 0 => {
                // Evicted send window: Shared fallback with the node-wide
                // maximum MsgCTR. The jump keeps the counter fresh without
                // per-pair state, but desynchronizes the receiver.
                let c = (max_ctr + 1).max(window.next_counter());
                (window.use_pad_at(c, now, engine), c)
            }
            None => window.use_pad(now, engine),
            Some(c) => (window.use_pad_for(c, now, engine), c),
        };
        if ctr.is_none() {
            self.max_ctr = self.max_ctr.max(counter);
        }
        let depth = self.windows[di(key.1)][key.0].depth();
        if matches!(
            crate::otp::OtpStats::classify(timing, engine.latency()),
            crate::otp::PadClass::Miss
        ) {
            // LRU fill: a window under repeated pressure regrows one entry
            // at the expense of the least-recently-used pairs. Purely
            // reactive and deliberately sluggish (every other miss) —
            // unlike the Dynamic allocator it never anticipates.
            let misses = self.miss_counts[di(key.1)].get_or_insert_with(key.0, || 0);
            *misses += 1;
            if misses.is_multiple_of(2) {
                self.grow(key, depth + self.growth, now, engine);
            }
        }
        self.touch(key);
        (timing, counter)
    }

    /// Current window depth for a pair-direction (test/inspection hook).
    #[must_use]
    pub fn depth(&self, peer: NodeId, dir: Direction) -> u32 {
        self.windows[di(dir)][peer].depth()
    }

    /// Pool capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

impl OtpScheme for CachedScheme {
    fn kind(&self) -> OtpSchemeKind {
        OtpSchemeKind::Cached
    }

    fn on_send(&mut self, now: Cycle, peer: NodeId, engine: &mut AesEngine) -> SendOutcome {
        let (timing, counter) = self.classify_use((peer, Direction::Send), now, None, engine);
        self.stats.record(Direction::Send, timing, engine.latency());
        SendOutcome { timing, counter }
    }

    fn on_recv(&mut self, now: Cycle, peer: NodeId, ctr: u64, engine: &mut AesEngine) -> PadTiming {
        let (timing, _) = self.classify_use((peer, Direction::Recv), now, Some(ctr), engine);
        self.stats.record(Direction::Recv, timing, engine.latency());
        timing
    }

    fn stats(&self) -> &OtpStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::otp::PadClass;
    use mgpu_types::Duration;

    fn setup() -> (CachedScheme, AesEngine) {
        let cfg = SystemConfig::paper_4gpu();
        let mut engine = AesEngine::new(cfg.security.aes_latency);
        let scheme = CachedScheme::new(NodeId::gpu(1), &cfg, &mut engine);
        (scheme, engine)
    }

    #[test]
    fn boot_allocation_is_even() {
        let (s, _) = setup();
        assert_eq!(s.capacity(), 32);
        for peer in NodeId::gpu(1).peers(4) {
            for dir in Direction::BOTH {
                assert_eq!(s.depth(peer, dir), 4);
            }
        }
    }

    #[test]
    fn pool_capacity_is_never_exceeded() {
        let (mut s, mut e) = setup();
        let mut now = Cycle::new(10_000);
        // Hammer a single pair-direction so it keeps growing.
        for _ in 0..200 {
            s.on_send(now, NodeId::gpu(2), &mut e);
            now += Duration::cycles(3);
        }
        assert!(s.used_entries() <= s.capacity());
    }

    #[test]
    fn hot_pair_grows_beyond_private_share() {
        let (mut s, mut e) = setup();
        let mut now = Cycle::new(10_000);
        // A sustained burst to GPU2 causes misses, each growing the window.
        for _ in 0..50 {
            s.on_send(now, NodeId::gpu(2), &mut e);
            now += Duration::cycles(2);
        }
        assert!(
            s.depth(NodeId::gpu(2), Direction::Send) > 4,
            "hot window stayed at {}",
            s.depth(NodeId::gpu(2), Direction::Send)
        );
    }

    #[test]
    fn cold_pairs_get_evicted() {
        let (mut s, mut e) = setup();
        let mut now = Cycle::new(10_000);
        for _ in 0..100 {
            s.on_send(now, NodeId::gpu(2), &mut e);
            s.on_recv(
                now,
                NodeId::gpu(2),
                s.windows[di(Direction::Recv)][NodeId::gpu(2)].next_counter(),
                &mut e,
            );
            now += Duration::cycles(2);
        }
        // Some untouched pair-direction lost its entries.
        let cold_total: u32 = NodeId::gpu(1)
            .peers(4)
            .filter(|&p| p != NodeId::gpu(2))
            .flat_map(|p| Direction::BOTH.map(|d| s.depth(p, d)))
            .sum();
        assert!(cold_total < 6 * 4, "cold pairs kept {cold_total} entries");
    }

    #[test]
    fn evicted_pair_misses_then_recovers() {
        let (mut s, mut e) = setup();
        let mut now = Cycle::new(10_000);
        // Evict everything except the hot pair.
        for _ in 0..100 {
            s.on_send(now, NodeId::gpu(2), &mut e);
            now += Duration::cycles(2);
        }
        if s.depth(NodeId::gpu(3), Direction::Send) == 0 {
            // First use after eviction: on-demand miss.
            let out = s.on_send(Cycle::new(50_000), NodeId::gpu(3), &mut e);
            assert_eq!(PadClass::from(out.timing), PadClass::Miss);
            // The window regrew; a later spaced use hits.
            let out = s.on_send(Cycle::new(60_000), NodeId::gpu(3), &mut e);
            assert_eq!(PadClass::from(out.timing), PadClass::Hit);
        } else {
            // Eviction policy kept some entries; the pair simply hits.
            let out = s.on_send(Cycle::new(50_000), NodeId::gpu(3), &mut e);
            assert!(out.timing.latency_hidden());
        }
    }

    #[test]
    fn counters_survive_eviction() {
        let (mut s, mut e) = setup();
        let mut now = Cycle::new(10_000);
        // Use GPU3 a few times, then evict it with GPU2 traffic.
        for _ in 0..3 {
            s.on_send(now, NodeId::gpu(3), &mut e);
            now += Duration::cycles(100);
        }
        for _ in 0..100 {
            s.on_send(now, NodeId::gpu(2), &mut e);
            now += Duration::cycles(2);
        }
        // GPU3's counter continues from 3 even though its pads are gone.
        let out = s.on_send(Cycle::new(100_000), NodeId::gpu(3), &mut e);
        assert_eq!(out.counter, 3);
    }

    #[test]
    fn per_pair_cap_is_respected() {
        let (mut s, mut e) = setup();
        let mut now = Cycle::new(10_000);
        for _ in 0..500 {
            s.on_send(now, NodeId::gpu(2), &mut e);
            now += Duration::cycles(1);
        }
        assert!(s.depth(NodeId::gpu(2), Direction::Send) <= 5);
    }

    #[test]
    fn recv_uses_carried_counter() {
        let (mut s, mut e) = setup();
        assert!(s
            .on_recv(Cycle::new(10_000), NodeId::CPU, 0, &mut e)
            .latency_hidden());
        assert_eq!(
            s.on_recv(Cycle::new(20_000), NodeId::CPU, 9, &mut e),
            PadTiming::Miss
        );
    }
}
