//! The `Dynamic` scheme — the paper's proposed OTP buffer management
//! (§IV-B).
//!
//! A fixed pool of OTP buffer entries is *re-partitioned* at every interval
//! `T` based on EWMA-weighted traffic monitoring:
//!
//! 1. **Monitoring phase** — each send/receive is counted per direction and
//!    per peer ([`crate::ewma::EwmaAllocator`]).
//! 2. **Adjustment phase** — at the interval boundary, Formulas 1–4 assign
//!    each direction and peer its share; windows grow (issuing new pad
//!    generations) or shrink (discarding farthest-future pads) in place.
//!
//! At kernel launch the allocation is even, "similar to the Private
//! mechanism", and converges toward the observed communication pattern.

use super::{OtpScheme, SchemeTelemetry, SendOutcome};
use crate::ewma::EwmaAllocator;
use crate::otp::{OtpStats, PadWindow};
use mgpu_crypto::engine::{AesEngine, PadTiming};
use mgpu_types::{Cycle, DenseNodeMap, Direction, Duration, NodeId, OtpSchemeKind, SystemConfig};

/// Dynamic (EWMA-repartitioned) OTP buffer management (see module docs).
#[derive(Debug)]
pub struct DynamicScheme {
    send: DenseNodeMap<PadWindow>,
    recv: DenseNodeMap<PadWindow>,
    monitor: EwmaAllocator,
    total_buffers: u32,
    interval: Duration,
    next_boundary: Cycle,
    rebalances: u64,
    /// Load-triggered mode: repartition only when the per-window event
    /// rate shifts by more than `shift_threshold` (relative) since the
    /// last applied repartition, instead of at every fixed boundary.
    load_triggered: bool,
    shift_threshold: f64,
    window_events: u64,
    rate_at_last: Option<u64>,
    stats: OtpStats,
}

impl DynamicScheme {
    /// Builds the scheme for node `me` with an even initial allocation.
    #[must_use]
    pub fn new(me: NodeId, config: &SystemConfig, engine: &mut AesEngine) -> Self {
        let depth = config.security.otp_multiplier;
        let peers: Vec<NodeId> = me.peers(config.gpu_count).collect();
        let mut send = DenseNodeMap::with_gpu_count(config.gpu_count);
        let mut recv = DenseNodeMap::with_gpu_count(config.gpu_count);
        for &peer in &peers {
            send.insert(peer, PadWindow::new(depth, Cycle::ZERO, engine));
            recv.insert(peer, PadWindow::new(depth, Cycle::ZERO, engine));
        }
        let dynamic = &config.security.dynamic;
        // Load-triggered mode samples the event rate on the (shorter)
        // check interval; fixed mode repartitions on every interval.
        let interval = if dynamic.load_triggered {
            dynamic.check_interval
        } else {
            dynamic.interval
        };
        DynamicScheme {
            send,
            recv,
            monitor: EwmaAllocator::new(&peers, dynamic.alpha, dynamic.beta)
                .with_floor((depth / 2).max(1)),
            total_buffers: config.total_otp_buffers_per_node(),
            interval,
            next_boundary: Cycle::ZERO + interval,
            rebalances: 0,
            load_triggered: dynamic.load_triggered,
            shift_threshold: dynamic.shift_threshold,
            window_events: 0,
            rate_at_last: None,
            stats: OtpStats::default(),
        }
    }

    /// Processes any interval boundaries up to `now`: closes the monitoring
    /// interval and applies the new allocation to every window.
    fn rebalance_to(&mut self, now: Cycle, engine: &mut AesEngine) {
        while now >= self.next_boundary {
            let boundary = self.next_boundary;
            let window = self.window_events;
            self.window_events = 0;
            if !self.should_repartition(window) {
                // Quiet window: leave the allocation in place and let the
                // EWMA monitor keep accumulating into a longer interval.
                self.next_boundary = boundary + self.interval;
                continue;
            }
            self.rate_at_last = Some(window);
            let alloc = self.monitor.end_interval(self.total_buffers);
            for (&peer, &pads) in &alloc.send {
                self.send
                    .get_mut(peer)
                    .expect("peer window exists")
                    .set_target(pads, boundary, engine);
            }
            for (&peer, &pads) in &alloc.recv {
                self.recv
                    .get_mut(peer)
                    .expect("peer window exists")
                    .set_target(pads, boundary, engine);
            }
            self.rebalances += 1;
            self.next_boundary = boundary + self.interval;
        }
    }

    /// Whether the just-ended window's event count warrants repartitioning.
    ///
    /// Fixed mode always repartitions. Load-triggered mode repartitions on
    /// the first boundary (to move off the even launch allocation) and
    /// afterwards only when the arrival rate moved by more than
    /// `shift_threshold` relative to the rate at the last repartition.
    fn should_repartition(&self, window: u64) -> bool {
        if !self.load_triggered {
            return true;
        }
        match self.rate_at_last {
            None => true,
            Some(rate) => {
                let shift = window.abs_diff(rate) as f64;
                shift > self.shift_threshold * rate.max(1) as f64
            }
        }
    }

    /// Number of completed re-allocation phases (test/inspection hook).
    #[must_use]
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Current window depth for a peer/direction (test/inspection hook).
    #[must_use]
    pub fn depth(&self, peer: NodeId, dir: Direction) -> u32 {
        match dir {
            Direction::Send => self.send[peer].depth(),
            Direction::Recv => self.recv[peer].depth(),
        }
    }

    /// The counter the next in-order message from `peer` will carry
    /// (inspection hook for drivers that emulate a synchronized sender).
    #[must_use]
    pub fn recv_next_counter(&self, peer: NodeId) -> u64 {
        self.recv[peer].next_counter()
    }

    /// Total *target* entries across all windows. Conserved at the pool
    /// size by the largest-remainder allocator; the instantaneous buffered
    /// count may transiently exceed it while an over-target window drains
    /// by attrition.
    #[must_use]
    pub fn allocated(&self) -> u32 {
        self.send.values().map(PadWindow::depth).sum::<u32>()
            + self.recv.values().map(PadWindow::depth).sum::<u32>()
    }
}

impl OtpScheme for DynamicScheme {
    fn kind(&self) -> OtpSchemeKind {
        OtpSchemeKind::Dynamic
    }

    fn on_send(&mut self, now: Cycle, peer: NodeId, engine: &mut AesEngine) -> SendOutcome {
        self.rebalance_to(now, engine);
        self.window_events += 1;
        self.monitor.observe_send(peer);
        let window = self.send.get_mut(peer).expect("peer within system");
        let (timing, counter) = window.use_pad(now, engine);
        self.stats.record(Direction::Send, timing, engine.latency());
        SendOutcome { timing, counter }
    }

    fn on_recv(&mut self, now: Cycle, peer: NodeId, ctr: u64, engine: &mut AesEngine) -> PadTiming {
        self.rebalance_to(now, engine);
        self.window_events += 1;
        self.monitor.observe_recv(peer);
        let window = self.recv.get_mut(peer).expect("peer within system");
        let timing = window.use_pad_for(ctr, now, engine);
        self.stats.record(Direction::Recv, timing, engine.latency());
        timing
    }

    fn advance(&mut self, now: Cycle, engine: &mut AesEngine) {
        self.rebalance_to(now, engine);
    }

    fn stats(&self) -> &OtpStats {
        &self.stats
    }

    fn telemetry(&self) -> Option<SchemeTelemetry> {
        Some(SchemeTelemetry {
            send_weight: self.monitor.send_weight(),
            rebalances: self.rebalances,
            send_depths: self
                .send
                .iter()
                .map(|(peer, w)| (peer, w.depth()))
                .collect(),
            recv_depths: self
                .recv
                .iter()
                .map(|(peer, w)| (peer, w.depth()))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::otp::PadClass;

    fn setup() -> (DynamicScheme, AesEngine) {
        let cfg = SystemConfig::paper_4gpu();
        let mut engine = AesEngine::new(cfg.security.aes_latency);
        let scheme = DynamicScheme::new(NodeId::gpu(1), &cfg, &mut engine);
        (scheme, engine)
    }

    #[test]
    fn initial_allocation_matches_private() {
        let (s, _) = setup();
        for peer in NodeId::gpu(1).peers(4) {
            assert_eq!(s.depth(peer, Direction::Send), 4);
            assert_eq!(s.depth(peer, Direction::Recv), 4);
        }
        assert_eq!(s.allocated(), 32);
    }

    #[test]
    fn rebalancing_happens_at_interval_boundaries() {
        let (mut s, mut e) = setup();
        s.advance(Cycle::new(999), &mut e);
        assert_eq!(s.rebalances(), 0);
        s.advance(Cycle::new(1000), &mut e);
        assert_eq!(s.rebalances(), 1);
        // Jumping far ahead processes every missed boundary.
        s.advance(Cycle::new(5_500), &mut e);
        assert_eq!(s.rebalances(), 5);
    }

    #[test]
    fn allocation_follows_send_heavy_traffic() {
        let (mut s, mut e) = setup();
        let hot = NodeId::gpu(2);
        let mut now = Cycle::new(1);
        // Several intervals of send-only traffic to one peer.
        for _ in 0..10 {
            for _ in 0..50 {
                s.on_send(now, hot, &mut e);
                now += Duration::cycles(20);
            }
        }
        s.advance(now, &mut e);
        assert!(s.rebalances() >= 9);
        // The hot send window captured most of the pool.
        let hot_depth = s.depth(hot, Direction::Send);
        assert!(hot_depth > 10, "hot send window depth {hot_depth}");
        // Total conserved.
        assert_eq!(s.allocated(), 32);
    }

    #[test]
    fn adaptation_turns_burst_misses_into_hits() {
        // A peer receiving periodic 8-deep bursts: Private's 4-deep window
        // misses the tail of each burst; Dynamic reallocates idle peers'
        // entries to the hot path and eventually absorbs the whole burst.
        let cfg = SystemConfig::paper_4gpu();
        let mut e = AesEngine::new(cfg.security.aes_latency);
        let mut s = DynamicScheme::new(NodeId::gpu(1), &cfg, &mut e);
        let hot = NodeId::gpu(2);
        let mut last_burst_misses = u64::MAX;
        for burst in 0..20u64 {
            let t0 = Cycle::new(1 + burst * 2_000);
            let before = s.stats().count(Direction::Send, PadClass::Miss)
                + s.stats().count(Direction::Send, PadClass::Partial);
            for i in 0..8u64 {
                s.on_send(t0 + Duration::cycles(i * 4), hot, &mut e);
            }
            last_burst_misses = s.stats().count(Direction::Send, PadClass::Miss)
                + s.stats().count(Direction::Send, PadClass::Partial)
                - before;
        }
        assert_eq!(
            last_burst_misses, 0,
            "after adaptation the full burst should hit"
        );
    }

    #[test]
    fn pool_is_conserved_across_rebalances() {
        let (mut s, mut e) = setup();
        let peers: Vec<NodeId> = NodeId::gpu(1).peers(4).collect();
        let mut now = Cycle::new(1);
        for round in 0..50u64 {
            let peer = peers[(round % 4) as usize];
            for _ in 0..(round % 9) {
                s.on_send(now, peer, &mut e);
                now += Duration::cycles(7);
            }
            for _ in 0..(round % 3) {
                let ctr = s.recv[peer].next_counter();
                s.on_recv(now, peer, ctr, &mut e);
                now += Duration::cycles(7);
            }
            now += Duration::cycles(500);
            s.advance(now, &mut e);
            assert_eq!(s.allocated(), 32, "round {round}");
        }
    }

    fn load_triggered_setup(threshold: f64) -> (DynamicScheme, AesEngine) {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.dynamic.load_triggered = true;
        cfg.security.dynamic.check_interval = Duration::cycles(250);
        cfg.security.dynamic.shift_threshold = threshold;
        let mut engine = AesEngine::new(cfg.security.aes_latency);
        let scheme = DynamicScheme::new(NodeId::gpu(1), &cfg, &mut engine);
        (scheme, engine)
    }

    #[test]
    fn load_triggered_skips_steady_windows() {
        let (mut s, mut e) = load_triggered_setup(0.5);
        let peer = NodeId::gpu(2);
        // Ten 250-cycle windows of identical traffic: one send every 50
        // cycles. The first boundary always repartitions; every later
        // steady window is skipped.
        let mut now = Cycle::new(1);
        for _ in 0..50 {
            s.on_send(now, peer, &mut e);
            now += Duration::cycles(50);
        }
        s.advance(now, &mut e);
        assert_eq!(s.rebalances(), 1, "steady load should repartition once");
        // Pool stays conserved even across skipped boundaries.
        assert_eq!(s.allocated(), 32);
    }

    #[test]
    fn load_triggered_reacts_to_rate_shift() {
        let (mut s, mut e) = load_triggered_setup(0.5);
        let peer = NodeId::gpu(2);
        let mut now = Cycle::new(1);
        // Phase 1: slow traffic (5 events / 250-cycle window).
        for _ in 0..20 {
            s.on_send(now, peer, &mut e);
            now += Duration::cycles(50);
        }
        let after_slow = s.rebalances();
        // Phase 2: 10x burst (50 events / window) — clear rate shift.
        for _ in 0..100 {
            s.on_send(now, peer, &mut e);
            now += Duration::cycles(5);
        }
        s.advance(now, &mut e);
        assert!(
            s.rebalances() > after_slow,
            "burst onset should trigger a repartition ({} vs {after_slow})",
            s.rebalances()
        );
    }

    #[test]
    fn load_triggered_boundaries_use_check_interval() {
        let (mut s, mut e) = load_triggered_setup(0.5);
        // First boundary at check_interval (250), not the fixed interval
        // (1000); the first boundary always repartitions.
        s.advance(Cycle::new(249), &mut e);
        assert_eq!(s.rebalances(), 0);
        s.advance(Cycle::new(250), &mut e);
        assert_eq!(s.rebalances(), 1);
        // Later empty windows match the reference rate exactly → skipped.
        s.advance(Cycle::new(10_000), &mut e);
        assert_eq!(s.rebalances(), 1);
    }

    #[test]
    fn fixed_mode_ignores_load_trigger_knobs() {
        // Defaults leave load_triggered off; every boundary repartitions
        // regardless of traffic.
        let (mut s, mut e) = setup();
        s.advance(Cycle::new(4_000), &mut e);
        assert_eq!(s.rebalances(), 4);
    }

    #[test]
    fn counters_survive_window_resizing() {
        let (mut s, mut e) = setup();
        let peer = NodeId::gpu(3);
        let mut now = Cycle::new(1);
        for expected in 0..30u64 {
            let out = s.on_send(now, peer, &mut e);
            assert_eq!(out.counter, expected);
            now += Duration::cycles(700); // crosses boundaries regularly
        }
    }
}
