//! OTP buffer management schemes.
//!
//! All four schemes expose the same interface ([`OtpScheme`]) to the
//! system model: classify the pad availability for each outgoing
//! (`on_send`) and incoming (`on_recv`) protected block, and perform any
//! periodic maintenance (`advance` — used by the paper's `Dynamic` scheme
//! for its monitoring/adjustment intervals).
//!
//! | Scheme | Buffering policy | Origin |
//! |---|---|---|
//! | [`PrivateScheme`] | fixed per pair-direction windows | Rogers et al. (prior work) |
//! | [`SharedScheme`]  | one shared send counter per node | Rogers et al. (prior work) |
//! | [`CachedScheme`]  | LRU pool over pair-directions | Rogers et al. (prior work) |
//! | [`DynamicScheme`] | EWMA-repartitioned windows | **this paper** |

mod cached;
mod dynamic;
mod private;
mod shared;

pub use cached::CachedScheme;
pub use dynamic::DynamicScheme;
pub use private::PrivateScheme;
pub use shared::SharedScheme;

use crate::otp::OtpStats;
use mgpu_crypto::engine::{AesEngine, PadTiming};
use mgpu_types::{Cycle, NodeId, OtpSchemeKind, SystemConfig};
use std::collections::BTreeMap;

/// Interval-resolved internals of an adaptive scheme, exposed for
/// observability sampling.
///
/// Only schemes with time-varying allocation state report telemetry; the
/// static schemes return `None` from [`OtpScheme::telemetry`]. Reading
/// telemetry must never mutate scheme state — collectors may sample at any
/// cadence without perturbing timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeTelemetry {
    /// Send-direction EWMA weight `S_i` (Formula 1).
    pub send_weight: f64,
    /// Completed re-allocation phases since construction.
    pub rebalances: u64,
    /// Current per-peer send-window depths (pads).
    pub send_depths: BTreeMap<NodeId, u32>,
    /// Current per-peer recv-window depths (pads).
    pub recv_depths: BTreeMap<NodeId, u32>,
}

/// Result of preparing an outgoing protected block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOutcome {
    /// Pad availability classification for the encryption + MAC pads.
    pub timing: PadTiming,
    /// The `MsgCTR` value used for this message (travels on the wire and
    /// selects the receiver's pad).
    pub counter: u64,
}

/// Common interface of every OTP buffer management scheme.
///
/// One instance lives in each node's secure NIC. The system model calls
/// `on_send` when the node encrypts a block for `peer`, and `on_recv` when
/// a block from `peer` arrives carrying counter `ctr`.
///
/// `Send` is a supertrait: the sharded engine moves whole NICs (and the
/// boxed scheme inside) onto worker threads. Every scheme is plain owned
/// data, so this costs implementations nothing.
pub trait OtpScheme: Send {
    /// Which scheme this is.
    fn kind(&self) -> OtpSchemeKind;

    /// Classifies pad availability for an outgoing block to `peer` at time
    /// `now`, consuming the pad and returning the message counter used.
    fn on_send(&mut self, now: Cycle, peer: NodeId, engine: &mut AesEngine) -> SendOutcome;

    /// Classifies pad availability for an incoming block from `peer`
    /// carrying message counter `ctr`.
    fn on_recv(&mut self, now: Cycle, peer: NodeId, ctr: u64, engine: &mut AesEngine) -> PadTiming;

    /// Periodic maintenance hook; called by the system model as simulated
    /// time advances. Only `Dynamic` uses it (interval monitoring and
    /// buffer re-allocation).
    fn advance(&mut self, _now: Cycle, _engine: &mut AesEngine) {}

    /// Accumulated hit/partial/miss statistics.
    fn stats(&self) -> &OtpStats;

    /// Interval-resolved internals for observability sampling; `None` for
    /// schemes without adaptive allocation state. Must not mutate state.
    fn telemetry(&self) -> Option<SchemeTelemetry> {
        None
    }
}

/// Builds the scheme configured in `config` for node `me`.
///
/// # Panics
///
/// Panics if `config.security.scheme` is [`OtpSchemeKind::Unsecure`]: an
/// unsecure node has no OTP scheme (the system model bypasses the secure
/// NIC entirely).
///
/// # Examples
///
/// ```
/// use mgpu_secure::schemes::build_scheme;
/// use mgpu_crypto::AesEngine;
/// use mgpu_types::{NodeId, OtpSchemeKind, SystemConfig};
///
/// let mut cfg = SystemConfig::paper_4gpu();
/// cfg.security.scheme = OtpSchemeKind::Cached;
/// let mut engine = AesEngine::new(cfg.security.aes_latency);
/// let scheme = build_scheme(NodeId::gpu(1), &cfg, &mut engine);
/// assert_eq!(scheme.kind(), OtpSchemeKind::Cached);
/// ```
#[must_use]
pub fn build_scheme(
    me: NodeId,
    config: &SystemConfig,
    engine: &mut AesEngine,
) -> Box<dyn OtpScheme> {
    match config.security.scheme {
        OtpSchemeKind::Private => Box::new(PrivateScheme::new(me, config, engine)),
        OtpSchemeKind::Shared => Box::new(SharedScheme::new(me, config, engine)),
        OtpSchemeKind::Cached => Box::new(CachedScheme::new(me, config, engine)),
        OtpSchemeKind::Dynamic => Box::new(DynamicScheme::new(me, config, engine)),
        OtpSchemeKind::Unsecure => {
            panic!("unsecure systems have no OTP scheme; bypass the secure NIC")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_every_secure_scheme() {
        for kind in OtpSchemeKind::SECURE {
            let mut cfg = SystemConfig::paper_4gpu();
            cfg.security.scheme = kind;
            let mut engine = AesEngine::new(cfg.security.aes_latency);
            let scheme = build_scheme(NodeId::gpu(1), &cfg, &mut engine);
            assert_eq!(scheme.kind(), kind);
        }
    }

    #[test]
    #[should_panic(expected = "unsecure")]
    fn unsecure_panics() {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.scheme = OtpSchemeKind::Unsecure;
        let mut engine = AesEngine::new(cfg.security.aes_latency);
        let _ = build_scheme(NodeId::gpu(1), &cfg, &mut engine);
    }

    /// Cross-scheme contract: a message sent by one node's scheme must be
    /// receivable by the peer's scheme with the carried counter, and both
    /// sides' counters must advance in lockstep.
    #[test]
    fn counters_stay_in_sync_across_paired_schemes() {
        for kind in [OtpSchemeKind::Private, OtpSchemeKind::Dynamic] {
            let mut cfg = SystemConfig::paper_4gpu();
            cfg.security.scheme = kind;
            let a = NodeId::gpu(1);
            let b = NodeId::gpu(2);
            let mut engine_a = AesEngine::new(cfg.security.aes_latency);
            let mut engine_b = AesEngine::new(cfg.security.aes_latency);
            let mut sa = build_scheme(a, &cfg, &mut engine_a);
            let mut sb = build_scheme(b, &cfg, &mut engine_b);
            for i in 0..50u64 {
                let now = Cycle::new(1_000 + i * 97);
                let out = sa.on_send(now, b, &mut engine_a);
                assert_eq!(out.counter, i, "{kind}: sender counter");
                // Receiver accepts the carried counter without a resync
                // miss after warmup (spaced requests -> hits).
                let timing = sb.on_recv(now, a, out.counter, &mut engine_b);
                if i > 0 {
                    assert!(timing.latency_hidden(), "{kind}: recv at i={i}");
                }
            }
        }
    }
}
