//! Security-metadata batching (paper §IV-C).
//!
//! Bursty communication lets the sender amortize the `MsgMAC` and the ACK
//! over a whole group of blocks headed to the same destination: per-block
//! decryption metadata (`MsgCTR`, sender ID) still travels with every 64 B
//! block, but only one *batched* MAC — the MAC over the ordered
//! concatenation of the per-block MACs (paper Fig. 20 / Formula 5) — and
//! one ACK are exchanged per batch.
//!
//! Verification is **lazy** (paper adopts the lazy integrity verification
//! of Shi et al.): the receiver decrypts and forwards each block
//! immediately, storing its per-block MAC in the *MsgMAC storage*; when
//! every block of the batch has arrived (in any order), the batched MAC is
//! recomputed in order and compared. The storage is bounded (paper §IV-D:
//! `max(16, 64) × peers × 8 B = 2 KB` per GPU).
//!
//! This module owns the batching bookkeeping; the batched MAC itself is a
//! GCM seal over [`concat_macs`] output, computed in
//! `crate::channel::Endpoint` by an `AesGcm` instance that dispatches to
//! the runtime-selected crypto backend (hardware AES-NI/PCLMULQDQ when
//! available) — trailer MACs ride the same fast path as block seals.

use mgpu_types::{Cycle, DenseNodeMap, Duration, MgpuError, NodeId};

/// A per-block message authentication code (8 B on the wire, §IV-D).
pub type MsgMac = [u8; 8];

/// Identifier of a batch within a sender→receiver stream.
pub type BatchId = u64;

/// Concatenates per-block MACs in order — the input to the batched-MAC
/// computation (paper Formula 5).
#[must_use]
pub fn concat_macs(macs: &[MsgMac]) -> Vec<u8> {
    let mut out = Vec::with_capacity(macs.len() * 8);
    for mac in macs {
        out.extend_from_slice(mac);
    }
    out
}

/// A batch closed by the sender, ready for its trailer (batched MAC) to be
/// transmitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedBatch {
    /// Destination node.
    pub dst: NodeId,
    /// Sequential batch id within this sender→dst stream.
    pub id: BatchId,
    /// Per-block MACs in send order.
    pub macs: Vec<MsgMac>,
}

impl ClosedBatch {
    /// Number of blocks in the batch (the value of the 1 B length field).
    #[must_use]
    pub fn len(&self) -> u32 {
        self.macs.len() as u32
    }

    /// Whether the batch is empty (never produced by the batcher).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.macs.is_empty()
    }
}

#[derive(Debug)]
struct OpenBatch {
    id: BatchId,
    opened_at: Cycle,
    /// When [`SenderBatcher::flush_due`] should close this batch. Under the
    /// fixed policy this is `opened_at + flush_timeout`; deadline-aware
    /// close pulls it earlier as the oldest block's slack erodes.
    flush_at: Cycle,
    macs: Vec<MsgMac>,
}

/// Deadline-aware close policy (serving extension): close a batch as soon
/// as the oldest queued block's slack drops below the batch's estimated
/// remaining service time.
///
/// The batcher keeps a per-destination EWMA of inter-block gaps; with
/// `missing` blocks still needed to fill the batch, the remaining service
/// estimate is `missing × gap`. The oldest block (queued at `opened_at`)
/// has `slack - (now - opened_at)` cycles of budget left, so the batch's
/// effective flush deadline becomes
/// `opened_at + max(0, slack - missing × gap)`, never later than the fixed
/// `flush_timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineClose {
    /// Per-block latency budget in cycles.
    pub slack: Duration,
}

/// Batch-close jitter policy (passive-observer defense): every batch's
/// flush deadline is pushed *later* by a deterministic pseudo-random
/// offset in `[0, bound)`, derived from `seed`, the destination and the
/// batch id. A co-located observer timing MAC-trailer emissions then sees
/// a decorrelated close cadence instead of the fixed `flush_timeout`
/// period, at the cost of up to `bound` extra cycles of metadata latency
/// per flushed batch. Size-triggered closes are untouched — only the
/// timeout path is jittered, since only its periodicity leaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloseJitter {
    /// Exclusive upper bound on the deadline offset.
    pub bound: Duration,
    /// Seed of the deterministic offset sequence.
    pub seed: u64,
}

impl CloseJitter {
    /// The offset applied to the batch `(dst, id)`'s flush deadline:
    /// a SplitMix64 hash of the seed and the batch's stream position,
    /// reduced into `[0, bound)`. Pure, so the sharded engine computes
    /// the identical offset without shared state.
    #[must_use]
    pub fn offset(&self, dst: NodeId, id: BatchId) -> Duration {
        let bound = self.bound.as_u64();
        if bound == 0 {
            return Duration::ZERO;
        }
        let mut z = self
            .seed
            .wrapping_add(u64::from(dst.raw()) << 32)
            .wrapping_add(id)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Duration::cycles((z ^ (z >> 31)) % bound)
    }
}

/// Sender-side batch assembly: groups outgoing blocks per destination.
///
/// A batch closes when it reaches `batch_size` blocks, or — so trickle
/// traffic is not held hostage — when [`SenderBatcher::flush_due`] finds it
/// past its flush deadline (the fixed timeout, or earlier under the
/// [`DeadlineClose`] policy).
///
/// # Examples
///
/// ```
/// use mgpu_secure::batching::SenderBatcher;
/// use mgpu_types::{Cycle, Duration, NodeId};
///
/// let mut batcher = SenderBatcher::new(4, Duration::cycles(160));
/// let dst = NodeId::gpu(2);
/// for i in 0..3u8 {
///     assert!(batcher.add_block(Cycle::new(10), dst, [i; 8]).is_none());
/// }
/// // The fourth block completes the batch.
/// let batch = batcher.add_block(Cycle::new(12), dst, [3; 8]).unwrap();
/// assert_eq!(batch.len(), 4);
/// assert_eq!(batch.id, 0);
/// ```
#[derive(Debug)]
pub struct SenderBatcher {
    batch_size: u32,
    flush_timeout: Duration,
    deadline: Option<DeadlineClose>,
    jitter: Option<CloseJitter>,
    open: DenseNodeMap<OpenBatch>,
    next_id: DenseNodeMap<BatchId>,
    /// Per-destination EWMA of inter-block gaps (cycles) and the last add
    /// time, feeding the deadline policy's remaining-service estimate.
    gap_ewma: DenseNodeMap<f64>,
    last_add: DenseNodeMap<Cycle>,
    closed_full: u64,
    closed_flush: u64,
    blocks: u64,
}

impl SenderBatcher {
    /// Creates a batcher with the given batch size and flush timeout.
    ///
    /// # Panics
    ///
    /// Panics unless `batch_size` is in `1..=255`: the wire format carries
    /// the batch length in a 1 B field ([`ClosedBatch::len`]), so a larger
    /// batch would silently wrap on the wire. The bound is enforced here
    /// (panic, not clamp) because a wrapped length is a protocol
    /// correctness bug, not a tunable.
    #[must_use]
    pub fn new(batch_size: u32, flush_timeout: Duration) -> Self {
        assert!(
            (1..=255).contains(&batch_size),
            "batch size must fit the 1 B wire length field (1..=255), got {batch_size}"
        );
        SenderBatcher {
            batch_size,
            flush_timeout,
            deadline: None,
            jitter: None,
            open: DenseNodeMap::new(),
            next_id: DenseNodeMap::new(),
            gap_ewma: DenseNodeMap::new(),
            last_add: DenseNodeMap::new(),
            closed_full: 0,
            closed_flush: 0,
            blocks: 0,
        }
    }

    /// Enables the deadline-aware close policy with the given per-block
    /// slack budget.
    #[must_use]
    pub fn with_deadline_close(mut self, slack: Duration) -> Self {
        self.deadline = Some(DeadlineClose { slack });
        self
    }

    /// Enables batch-close jitter: each batch's flush deadline is offset
    /// by a seeded pseudo-random amount in `[0, bound)`.
    #[must_use]
    pub fn with_close_jitter(mut self, bound: Duration, seed: u64) -> Self {
        self.jitter = Some(CloseJitter { bound, seed });
        self
    }

    fn take_id(&mut self, dst: NodeId) -> BatchId {
        let id = self.next_id.get_or_insert_with(dst, || 0);
        let out = *id;
        *id += 1;
        out
    }

    /// The flush deadline of batch `id` toward `dst` that was opened at
    /// `opened_at` and currently holds `len` blocks.
    fn flush_deadline(&self, dst: NodeId, id: BatchId, opened_at: Cycle, len: u32) -> Cycle {
        let fixed = opened_at + self.flush_timeout;
        let base = match self.deadline {
            None => fixed,
            Some(policy) => {
                let gap = self.gap_ewma.get(dst).copied().unwrap_or(0.0);
                let missing = f64::from(self.batch_size.saturating_sub(len));
                let remaining = (missing * gap).round() as u64;
                let budget = policy.slack.as_u64().saturating_sub(remaining);
                fixed.min(opened_at + Duration::cycles(budget))
            }
        };
        match self.jitter {
            Some(j) => base + j.offset(dst, id),
            None => base,
        }
    }

    /// Adds one outgoing block (already MACed) for `dst`; returns the
    /// closed batch if this block completed it.
    pub fn add_block(&mut self, now: Cycle, dst: NodeId, mac: MsgMac) -> Option<ClosedBatch> {
        self.blocks += 1;
        if self.deadline.is_some() {
            // Inter-block gap EWMA feeding the remaining-service estimate.
            if let Some(&last) = self.last_add.get(dst) {
                let gap = now.saturating_since(last).as_u64() as f64;
                let ewma = self.gap_ewma.get_or_insert_with(dst, || gap);
                *ewma = 0.5 * *ewma + 0.5 * gap;
            }
            self.last_add.insert(dst, now);
        }
        if !self.open.contains_key(dst) {
            let id = self.take_id(dst);
            let flush_at = self.flush_deadline(dst, id, now, 0);
            self.open.insert(
                dst,
                OpenBatch {
                    id,
                    opened_at: now,
                    flush_at,
                    macs: Vec::with_capacity(self.batch_size as usize),
                },
            );
        }
        let batch = self.open.get_mut(dst).expect("just inserted");
        batch.macs.push(mac);
        if batch.macs.len() as u32 >= self.batch_size {
            let batch = self.open.remove(dst).expect("present");
            self.closed_full += 1;
            Some(ClosedBatch {
                dst,
                id: batch.id,
                macs: batch.macs,
            })
        } else {
            if self.deadline.is_some() {
                // Re-estimate: both the gap EWMA and the missing-block
                // count moved, so the adaptive deadline moves too.
                let (id, opened_at, len) = (batch.id, batch.opened_at, batch.macs.len() as u32);
                let flush_at = self.flush_deadline(dst, id, opened_at, len);
                self.open.get_mut(dst).expect("present").flush_at = flush_at;
            }
            None
        }
    }

    /// The `(batch id, index)` slot the *next* block added for `dst` will
    /// occupy — the wire labeling a streaming sender attaches to a block
    /// before handing it to [`add_block`].
    ///
    /// [`add_block`]: SenderBatcher::add_block
    #[must_use]
    pub fn peek_slot(&self, dst: NodeId) -> (BatchId, u32) {
        match self.open.get(dst) {
            Some(b) => (b.id, b.macs.len() as u32),
            None => (self.next_id.get(dst).copied().unwrap_or(0), 0),
        }
    }

    /// Forces the open batch toward `dst` (if any) closed, regardless of
    /// its age — a per-destination [`flush_all`].
    ///
    /// [`flush_all`]: SenderBatcher::flush_all
    pub fn flush_dst(&mut self, dst: NodeId) -> Option<ClosedBatch> {
        self.open.remove(dst).map(|b| {
            self.closed_flush += 1;
            ClosedBatch {
                dst,
                id: b.id,
                macs: b.macs,
            }
        })
    }

    /// The configured maximum blocks per batch.
    #[must_use]
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Closes and returns every batch whose flush deadline has passed at
    /// time `now` (age ≥ `flush_timeout` under the fixed policy; possibly
    /// earlier under [`DeadlineClose`]).
    pub fn flush_due(&mut self, now: Cycle) -> Vec<ClosedBatch> {
        let due: Vec<NodeId> = self
            .open
            .iter()
            .filter(|(_, b)| now >= b.flush_at)
            .map(|(dst, _)| dst)
            .collect();
        due.into_iter()
            .map(|dst| {
                let b = self.open.remove(dst).expect("present");
                self.closed_flush += 1;
                ClosedBatch {
                    dst,
                    id: b.id,
                    macs: b.macs,
                }
            })
            .collect()
    }

    /// Forces every open batch closed (end of workload drain).
    pub fn flush_all(&mut self) -> Vec<ClosedBatch> {
        let dsts: Vec<NodeId> = self.open.keys().collect();
        dsts.into_iter()
            .map(|dst| {
                let b = self.open.remove(dst).expect("present");
                self.closed_flush += 1;
                ClosedBatch {
                    dst,
                    id: b.id,
                    macs: b.macs,
                }
            })
            .collect()
    }

    /// The earliest deadline among open batches, if any — when the system
    /// should next call [`flush_due`].
    ///
    /// [`flush_due`]: SenderBatcher::flush_due
    #[must_use]
    pub fn next_deadline(&self) -> Option<Cycle> {
        self.open.values().map(|b| b.flush_at).min()
    }

    /// Batches closed because they filled up.
    #[must_use]
    pub fn closed_full(&self) -> u64 {
        self.closed_full
    }

    /// Batches closed by timeout/drain.
    #[must_use]
    pub fn closed_by_flush(&self) -> u64 {
        self.closed_flush
    }

    /// Mean occupancy of closed batches (blocks per batch).
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        let closed = self.closed_full + self.closed_flush;
        if closed == 0 {
            0.0
        } else {
            let pending: u64 = self.open.values().map(|b| b.macs.len() as u64).sum();
            (self.blocks - pending) as f64 / closed as f64
        }
    }
}

/// Receiver-side MsgMAC storage and lazy batch verification.
///
/// Stores each arriving block's recomputed MAC under its `(sender, batch,
/// index)` slot; once the batch trailer (expected length + batched MAC) and
/// all blocks are present, the batch verifies and is removed.
///
/// # Examples
///
/// ```
/// use mgpu_secure::batching::{concat_macs, MacStorage};
/// use mgpu_types::NodeId;
///
/// let mut storage = MacStorage::new(64 * 4);
/// let src = NodeId::gpu(1);
/// // Blocks may arrive out of order.
/// storage.store_block(src, 0, 1, [0xBB; 8]).unwrap();
/// storage.store_block(src, 0, 0, [0xAA; 8]).unwrap();
/// // Trailer announces 2 blocks; verification closure sees the ordered
/// // concatenation.
/// let verified = storage
///     .complete(src, 0, 2, |ordered| ordered == concat_macs(&[[0xAA; 8], [0xBB; 8]]))
///     .unwrap();
/// assert!(verified);
/// ```
#[derive(Debug)]
pub struct MacStorage {
    capacity_macs: usize,
    /// Per-sender list of in-flight batches. A sender rarely has more than
    /// one or two batches outstanding, so linear search beats tree lookup.
    slots: DenseNodeMap<Vec<BatchSlot>>,
    /// Retired per-batch MAC vectors, reused so steady-state verification
    /// does not allocate.
    spare: Vec<Vec<(u32, MsgMac)>>,
    /// Reusable buffer for the ordered concatenation handed to `verify`.
    concat_scratch: Vec<u8>,
    stored: usize,
    peak: usize,
    verified_batches: u64,
    rejected_completions: u64,
}

#[derive(Debug)]
struct BatchSlot {
    batch: BatchId,
    /// `(index, MAC)` entries kept sorted by index, so completion reads
    /// them in order without building an intermediate map.
    macs: Vec<(u32, MsgMac)>,
}

/// Ceiling on retired MAC vectors kept for reuse — bounds the pool while
/// still covering every concurrently open batch in practice.
const SPARE_SLOT_POOL: usize = 64;

impl MacStorage {
    /// Creates storage bounded to `capacity_macs` in-flight MACs (paper:
    /// 64 per peer, i.e. 2 KB per GPU at 8 B each in a 4-GPU system).
    #[must_use]
    pub fn new(capacity_macs: usize) -> Self {
        MacStorage {
            capacity_macs,
            slots: DenseNodeMap::new(),
            spare: Vec::new(),
            concat_scratch: Vec::new(),
            stored: 0,
            peak: 0,
            verified_batches: 0,
            rejected_completions: 0,
        }
    }

    /// Retires a finished slot's MAC vector into the reuse pool.
    fn retire(&mut self, slot: BatchSlot) -> usize {
        let freed = slot.macs.len();
        self.stored -= freed;
        if self.spare.len() < SPARE_SLOT_POOL {
            let mut macs = slot.macs;
            macs.clear();
            self.spare.push(macs);
        }
        freed
    }

    /// Stores the recomputed MAC of block `index` of `(src, batch)`.
    ///
    /// # Errors
    ///
    /// Returns [`MgpuError::Protocol`] if the storage is full or the slot
    /// is already occupied (duplicate delivery).
    pub fn store_block(
        &mut self,
        src: NodeId,
        batch: BatchId,
        index: u32,
        mac: MsgMac,
    ) -> Result<(), MgpuError> {
        if self.stored >= self.capacity_macs {
            return Err(MgpuError::Protocol(format!(
                "MsgMAC storage full ({} MACs)",
                self.capacity_macs
            )));
        }
        let list = self.slots.get_or_insert_with(src, Vec::new);
        let slot = match list.iter().position(|s| s.batch == batch) {
            Some(pos) => &mut list[pos],
            None => {
                let macs = self.spare.pop().unwrap_or_default();
                list.push(BatchSlot { batch, macs });
                list.last_mut().expect("just pushed")
            }
        };
        match slot.macs.binary_search_by_key(&index, |e| e.0) {
            Ok(_) => {
                return Err(MgpuError::Protocol(format!(
                    "duplicate block {index} in batch {batch} from {src}"
                )));
            }
            Err(pos) => slot.macs.insert(pos, (index, mac)),
        }
        self.stored += 1;
        self.peak = self.peak.max(self.stored);
        Ok(())
    }

    /// Number of blocks currently stored for `(src, batch)`.
    #[must_use]
    pub fn pending(&self, src: NodeId, batch: BatchId) -> usize {
        self.slots
            .get(src)
            .and_then(|list| list.iter().find(|s| s.batch == batch))
            .map_or(0, |s| s.macs.len())
    }

    /// Completes a batch: checks that exactly `expected_len` consecutive
    /// blocks `0..expected_len` are present, hands their ordered
    /// concatenation to `verify`, and frees the storage **only when
    /// verification succeeds**.
    ///
    /// On a length mismatch or a `verify == false` outcome the stored MACs
    /// are retained (and [`rejected_completions`] is incremented): the
    /// trailer that failed may be an attacker's forgery, and discarding the
    /// slot would let that forgery permanently block the genuine trailer —
    /// the same re-insert discipline [`crate::replay::ReplayGuard::accept_ack`]
    /// applies to a mismatched ACK. Use [`discard`] to reclaim a slot whose
    /// genuine trailer will never verify (tampered blocks awaiting
    /// retransmission).
    ///
    /// # Errors
    ///
    /// Returns [`MgpuError::Protocol`] if the batch is unknown or blocks
    /// are missing or extra.
    ///
    /// [`rejected_completions`]: MacStorage::rejected_completions
    /// [`discard`]: MacStorage::discard
    pub fn complete<F>(
        &mut self,
        src: NodeId,
        batch: BatchId,
        expected_len: u32,
        verify: F,
    ) -> Result<bool, MgpuError>
    where
        F: FnOnce(&[u8]) -> bool,
    {
        let pos = self
            .slots
            .get(src)
            .and_then(|list| list.iter().position(|s| s.batch == batch))
            .ok_or_else(|| MgpuError::Protocol(format!("unknown batch {batch} from {src}")))?;
        let slot = &self.slots.get(src).expect("position implies list")[pos];
        // Entries are sorted and duplicate-free, so the slot holds exactly
        // the blocks `0..expected_len` iff the count matches and the
        // endpoints are 0 and expected_len - 1.
        let count = slot.macs.len() as u32;
        let contiguous = count == expected_len
            && slot.macs.first().is_none_or(|e| e.0 == 0)
            && slot.macs.last().is_none_or(|e| e.0 + 1 == expected_len);
        if !contiguous {
            self.rejected_completions += 1;
            return Err(MgpuError::Protocol(format!(
                "batch {batch} from {src}: expected blocks 0..{expected_len}, got {count}"
            )));
        }
        self.concat_scratch.clear();
        let slot = &self.slots.get(src).expect("checked above")[pos];
        for (_, mac) in &slot.macs {
            self.concat_scratch.extend_from_slice(mac);
        }
        let ok = verify(&self.concat_scratch);
        if ok {
            let slot = self
                .slots
                .get_mut(src)
                .expect("checked above")
                .swap_remove(pos);
            self.retire(slot);
            self.verified_batches += 1;
        } else {
            self.rejected_completions += 1;
        }
        Ok(ok)
    }

    /// Drops everything stored for `(src, batch)` and returns how many
    /// MACs were freed. Recovery path after a batch provably cannot verify
    /// (e.g. tampered blocks that the sender will retransmit).
    pub fn discard(&mut self, src: NodeId, batch: BatchId) -> usize {
        let Some(list) = self.slots.get_mut(src) else {
            return 0;
        };
        let Some(pos) = list.iter().position(|s| s.batch == batch) else {
            return 0;
        };
        let slot = list.swap_remove(pos);
        self.retire(slot)
    }

    /// High-water mark of stored MACs (for the paper's 2 KB sizing check).
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Batches verified successfully so far.
    #[must_use]
    pub fn verified_batches(&self) -> u64 {
        self.verified_batches
    }

    /// Completion attempts rejected (wrong length or failed verification)
    /// with the slot retained — each one is a detected attack or a
    /// protocol violation.
    #[must_use]
    pub fn rejected_completions(&self) -> u64 {
        self.rejected_completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_close_at_size() {
        let mut b = SenderBatcher::new(16, Duration::cycles(160));
        let dst = NodeId::gpu(2);
        for i in 0..15u8 {
            assert!(b.add_block(Cycle::new(u64::from(i)), dst, [i; 8]).is_none());
        }
        let closed = b.add_block(Cycle::new(15), dst, [15; 8]).expect("full");
        assert_eq!(closed.len(), 16);
        assert!(!closed.is_empty());
        assert_eq!(closed.macs[3], [3; 8]);
        assert_eq!(b.closed_full(), 1);
    }

    #[test]
    fn batch_ids_are_sequential_per_destination() {
        let mut b = SenderBatcher::new(2, Duration::cycles(160));
        let d1 = NodeId::gpu(2);
        let d2 = NodeId::gpu(3);
        b.add_block(Cycle::ZERO, d1, [0; 8]);
        let b0 = b.add_block(Cycle::ZERO, d1, [1; 8]).unwrap();
        b.add_block(Cycle::ZERO, d2, [0; 8]);
        let c0 = b.add_block(Cycle::ZERO, d2, [1; 8]).unwrap();
        b.add_block(Cycle::ZERO, d1, [2; 8]);
        let b1 = b.add_block(Cycle::ZERO, d1, [3; 8]).unwrap();
        assert_eq!(b0.id, 0);
        assert_eq!(b1.id, 1);
        assert_eq!(c0.id, 0); // independent stream
    }

    #[test]
    fn timeout_flushes_partial_batches() {
        let mut b = SenderBatcher::new(16, Duration::cycles(160));
        let dst = NodeId::gpu(2);
        b.add_block(Cycle::new(10), dst, [1; 8]);
        b.add_block(Cycle::new(20), dst, [2; 8]);
        assert!(b.flush_due(Cycle::new(100)).is_empty());
        assert_eq!(b.next_deadline(), Some(Cycle::new(170)));
        let flushed = b.flush_due(Cycle::new(170));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].len(), 2);
        assert_eq!(b.closed_by_flush(), 1);
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn flush_all_drains_everything() {
        let mut b = SenderBatcher::new(16, Duration::cycles(160));
        b.add_block(Cycle::ZERO, NodeId::gpu(2), [1; 8]);
        b.add_block(Cycle::ZERO, NodeId::gpu(3), [2; 8]);
        let drained = b.flush_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn mean_occupancy() {
        let mut b = SenderBatcher::new(4, Duration::cycles(160));
        let dst = NodeId::gpu(2);
        for i in 0..4u8 {
            b.add_block(Cycle::ZERO, dst, [i; 8]);
        }
        b.add_block(Cycle::ZERO, dst, [9; 8]);
        b.flush_all();
        // Two closed batches: 4 + 1 blocks.
        assert!((b.mean_occupancy() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn deadline_close_caps_flush_at_slack() {
        // No gap history yet: the remaining-service estimate is zero, so
        // the adaptive deadline is opened_at + slack (< fixed timeout).
        let mut b =
            SenderBatcher::new(16, Duration::cycles(160)).with_deadline_close(Duration::cycles(96));
        let dst = NodeId::gpu(2);
        b.add_block(Cycle::new(10), dst, [1; 8]);
        assert_eq!(b.next_deadline(), Some(Cycle::new(106)));
        assert!(b.flush_due(Cycle::new(105)).is_empty());
        let flushed = b.flush_due(Cycle::new(106));
        assert_eq!(flushed.len(), 1);
        assert_eq!(b.closed_by_flush(), 1);
    }

    #[test]
    fn deadline_close_shrinks_with_slow_arrivals() {
        // Two blocks 80 cycles apart: gap EWMA = 80, 14 blocks missing →
        // remaining estimate 1120 ≫ slack, so the batch should close at
        // the very next flush check (deadline == opened_at).
        let mut b =
            SenderBatcher::new(16, Duration::cycles(160)).with_deadline_close(Duration::cycles(96));
        let dst = NodeId::gpu(2);
        b.add_block(Cycle::new(0), dst, [1; 8]);
        b.add_block(Cycle::new(80), dst, [2; 8]);
        assert_eq!(b.next_deadline(), Some(Cycle::new(0)));
        let flushed = b.flush_due(Cycle::new(81));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].len(), 2);
    }

    #[test]
    fn deadline_close_waits_when_arrivals_are_fast() {
        // Back-to-back blocks (gap 1): remaining ≈ 14 cycles, so the
        // deadline sits near opened_at + slack - 14 — the batch is given
        // time to fill because filling is cheap.
        let mut b =
            SenderBatcher::new(16, Duration::cycles(160)).with_deadline_close(Duration::cycles(96));
        let dst = NodeId::gpu(2);
        b.add_block(Cycle::new(100), dst, [1; 8]);
        b.add_block(Cycle::new(101), dst, [2; 8]);
        let dl = b.next_deadline().unwrap();
        assert!(
            dl > Cycle::new(150) && dl <= Cycle::new(196),
            "deadline {dl} should be near opened_at + slack"
        );
    }

    #[test]
    fn deadline_close_never_exceeds_fixed_timeout() {
        let mut b = SenderBatcher::new(16, Duration::cycles(160))
            .with_deadline_close(Duration::cycles(100_000));
        let dst = NodeId::gpu(2);
        b.add_block(Cycle::new(10), dst, [1; 8]);
        // A huge slack budget still falls back to the fixed timeout.
        assert_eq!(b.next_deadline(), Some(Cycle::new(170)));
    }

    #[test]
    fn fixed_policy_unchanged_by_new_fields() {
        // Without the policy, flush timing is exactly the pre-existing
        // age >= flush_timeout rule.
        let mut b = SenderBatcher::new(16, Duration::cycles(160));
        let dst = NodeId::gpu(2);
        b.add_block(Cycle::new(10), dst, [1; 8]);
        b.add_block(Cycle::new(90), dst, [2; 8]);
        assert_eq!(b.next_deadline(), Some(Cycle::new(170)));
        assert!(b.flush_due(Cycle::new(169)).is_empty());
        assert_eq!(b.flush_due(Cycle::new(170)).len(), 1);
    }

    #[test]
    fn close_jitter_offsets_are_bounded_deterministic_and_varying() {
        let j = CloseJitter {
            bound: Duration::cycles(64),
            seed: 7,
        };
        let dst = NodeId::gpu(2);
        let offsets: Vec<u64> = (0..32).map(|id| j.offset(dst, id).as_u64()).collect();
        assert!(offsets.iter().all(|&o| o < 64), "offset escaped the bound");
        // Deterministic: the same (dst, id) always maps to the same offset.
        assert_eq!(j.offset(dst, 5), j.offset(dst, 5));
        // Varying: consecutive batches must not share one offset (which
        // would just shift, not break, the observable period).
        assert!(
            offsets.windows(2).any(|w| w[0] != w[1]),
            "offsets constant across batch ids: {offsets:?}"
        );
        // Distinct destinations draw from distinct subsequences.
        assert_ne!(
            (0..32)
                .map(|id| j.offset(NodeId::gpu(3), id).as_u64())
                .collect::<Vec<_>>(),
            offsets
        );
    }

    #[test]
    fn jittered_deadline_shifts_within_bound_and_keeps_size_closes() {
        let dst = NodeId::gpu(2);
        let mut plain = SenderBatcher::new(4, Duration::cycles(160));
        let mut jittered =
            SenderBatcher::new(4, Duration::cycles(160)).with_close_jitter(Duration::cycles(64), 7);
        plain.add_block(Cycle::new(10), dst, [1; 8]);
        jittered.add_block(Cycle::new(10), dst, [1; 8]);
        let base = plain.next_deadline().unwrap();
        let moved = jittered.next_deadline().unwrap();
        assert!(
            moved >= base && moved < base + Duration::cycles(64),
            "jittered deadline {moved} outside [{base}, {base}+64)"
        );
        // Size-triggered closes are untouched by the jitter policy.
        for i in 2..=4u8 {
            let closed = jittered.add_block(Cycle::new(11), dst, [i; 8]);
            assert_eq!(closed.is_some(), i == 4);
        }
        assert_eq!(jittered.closed_full(), 1);
    }

    #[test]
    fn storage_tolerates_out_of_order() {
        let mut s = MacStorage::new(256);
        let src = NodeId::gpu(1);
        let order = [3u32, 0, 2, 1];
        for &i in &order {
            s.store_block(src, 7, i, [i as u8; 8]).unwrap();
        }
        assert_eq!(s.pending(src, 7), 4);
        let expected = concat_macs(&[[0; 8], [1; 8], [2; 8], [3; 8]]);
        let ok = s.complete(src, 7, 4, |c| c == expected).unwrap();
        assert!(ok);
        assert_eq!(s.pending(src, 7), 0);
        assert_eq!(s.verified_batches(), 1);
    }

    #[test]
    fn storage_rejects_duplicates_and_overflow() {
        let mut s = MacStorage::new(2);
        let src = NodeId::gpu(1);
        s.store_block(src, 0, 0, [0; 8]).unwrap();
        assert!(matches!(
            s.store_block(src, 0, 0, [1; 8]),
            Err(MgpuError::Protocol(_))
        ));
        s.store_block(src, 0, 1, [1; 8]).unwrap();
        assert!(matches!(
            s.store_block(src, 1, 0, [2; 8]),
            Err(MgpuError::Protocol(_))
        ));
        assert_eq!(s.peak(), 2);
    }

    #[test]
    fn incomplete_batch_fails_completion() {
        let mut s = MacStorage::new(64);
        let src = NodeId::gpu(1);
        s.store_block(src, 0, 0, [0; 8]).unwrap();
        s.store_block(src, 0, 2, [2; 8]).unwrap();
        // Block 1 missing.
        assert!(s.complete(src, 0, 3, |_| true).is_err());
        // Unknown batch.
        assert!(s.complete(src, 5, 1, |_| true).is_err());
    }

    #[test]
    fn failed_verification_reports_false() {
        let mut s = MacStorage::new(64);
        let src = NodeId::gpu(1);
        s.store_block(src, 0, 0, [0xAA; 8]).unwrap();
        let ok = s.complete(src, 0, 1, |_| false).unwrap();
        assert!(!ok);
        assert_eq!(s.verified_batches(), 0);
    }

    #[test]
    fn batch_size_boundary_255_is_accepted() {
        let mut b = SenderBatcher::new(255, Duration::cycles(160));
        let dst = NodeId::gpu(2);
        for _ in 0..254 {
            assert!(b.add_block(Cycle::ZERO, dst, [0; 8]).is_none());
        }
        let closed = b.add_block(Cycle::ZERO, dst, [0; 8]).expect("full at 255");
        assert_eq!(closed.len(), 255);
    }

    #[test]
    #[should_panic(expected = "1 B wire length field")]
    fn batch_size_256_overflows_length_field_and_panics() {
        let _ = SenderBatcher::new(256, Duration::cycles(160));
    }

    #[test]
    #[should_panic(expected = "1 B wire length field")]
    fn batch_size_zero_panics() {
        let _ = SenderBatcher::new(0, Duration::cycles(160));
    }

    #[test]
    fn peek_slot_tracks_open_batch_and_next_id() {
        let mut b = SenderBatcher::new(3, Duration::cycles(160));
        let dst = NodeId::gpu(2);
        assert_eq!(b.peek_slot(dst), (0, 0));
        b.add_block(Cycle::ZERO, dst, [0; 8]);
        assert_eq!(b.peek_slot(dst), (0, 1));
        b.add_block(Cycle::ZERO, dst, [1; 8]);
        assert!(b.add_block(Cycle::ZERO, dst, [2; 8]).is_some());
        // Batch 0 closed: the next block opens batch 1 at index 0.
        assert_eq!(b.peek_slot(dst), (1, 0));
    }

    #[test]
    fn flush_dst_closes_only_that_destination() {
        let mut b = SenderBatcher::new(16, Duration::cycles(160));
        b.add_block(Cycle::ZERO, NodeId::gpu(2), [1; 8]);
        b.add_block(Cycle::ZERO, NodeId::gpu(3), [2; 8]);
        let closed = b.flush_dst(NodeId::gpu(2)).expect("open batch");
        assert_eq!(closed.dst, NodeId::gpu(2));
        assert_eq!(closed.len(), 1);
        assert!(b.flush_dst(NodeId::gpu(2)).is_none());
        // GPU 3's batch is untouched.
        assert_eq!(b.peek_slot(NodeId::gpu(3)), (0, 1));
        assert_eq!(b.batch_size(), 16);
    }

    #[test]
    fn wrong_length_completion_retains_slot_for_genuine_trailer() {
        // Satellite regression: an attacker trailer with a wrong length
        // must not discard the legitimately stored MACs.
        let mut s = MacStorage::new(64);
        let src = NodeId::gpu(1);
        for i in 0..4u32 {
            s.store_block(src, 0, i, [i as u8; 8]).unwrap();
        }
        assert!(s.complete(src, 0, 5, |_| true).is_err());
        assert_eq!(s.rejected_completions(), 1);
        assert_eq!(s.pending(src, 0), 4, "slot survived the forged trailer");
        // The genuine trailer still verifies afterwards.
        let expected = concat_macs(&[[0; 8], [1; 8], [2; 8], [3; 8]]);
        assert!(s.complete(src, 0, 4, |c| c == expected).unwrap());
        assert_eq!(s.pending(src, 0), 0);
    }

    #[test]
    fn failed_verification_retains_slot_and_counts() {
        let mut s = MacStorage::new(64);
        let src = NodeId::gpu(1);
        s.store_block(src, 0, 0, [0xAA; 8]).unwrap();
        assert!(!s.complete(src, 0, 1, |_| false).unwrap());
        assert_eq!(s.rejected_completions(), 1);
        // Retained: a retransmitted genuine trailer can still complete.
        assert_eq!(s.pending(src, 0), 1);
        assert!(s.complete(src, 0, 1, |_| true).unwrap());
    }

    #[test]
    fn discard_frees_capacity() {
        let mut s = MacStorage::new(2);
        let src = NodeId::gpu(1);
        s.store_block(src, 0, 0, [0; 8]).unwrap();
        s.store_block(src, 0, 1, [1; 8]).unwrap();
        assert!(s.store_block(src, 1, 0, [2; 8]).is_err(), "full");
        assert_eq!(s.discard(src, 0), 2);
        assert_eq!(s.discard(src, 0), 0);
        s.store_block(src, 1, 0, [2; 8]).unwrap();
    }

    #[test]
    fn paper_storage_sizing() {
        // §IV-D: max(16, 64) MACs × 4 peers × 8 B = 2 KB per GPU.
        let macs = 64 * 4;
        assert_eq!(macs * 8, 2048);
        let s = MacStorage::new(macs);
        assert_eq!(s.capacity_macs, 256);
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_permutation_reassembles(n in 1u32..64, seed in any::<u64>()) {
                let mut order: Vec<u32> = (0..n).collect();
                // Simple deterministic shuffle from the seed.
                let mut state = seed | 1;
                for i in (1..order.len()).rev() {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let j = (state >> 33) as usize % (i + 1);
                    order.swap(i, j);
                }
                let mut s = MacStorage::new(n as usize);
                let src = NodeId::gpu(1);
                for &i in &order {
                    s.store_block(src, 0, i, [(i % 251) as u8; 8]).unwrap();
                }
                let expected: Vec<MsgMac> = (0..n).map(|i| [(i % 251) as u8; 8]).collect();
                let expected = concat_macs(&expected);
                prop_assert!(s.complete(src, 0, n, |c| c == expected).unwrap());
            }

            #[test]
            fn batcher_conserves_blocks(
                blocks in proptest::collection::vec(0usize..3, 1..200),
                batch_size in 1u32..20) {
                let peers = [NodeId::gpu(2), NodeId::gpu(3), NodeId::CPU];
                let mut b = SenderBatcher::new(batch_size, Duration::cycles(160));
                let mut closed_blocks = 0u64;
                for (t, &p) in blocks.iter().enumerate() {
                    if let Some(batch) = b.add_block(Cycle::new(t as u64), peers[p], [0; 8]) {
                        closed_blocks += u64::from(batch.len());
                    }
                }
                for batch in b.flush_all() {
                    closed_blocks += u64::from(batch.len());
                }
                prop_assert_eq!(closed_blocks, blocks.len() as u64);
            }
        }
    }
}
