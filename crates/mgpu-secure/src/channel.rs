//! Functional secure channel: the full protocol over real AES-GCM bits.
//!
//! The timing simulation (`mgpu-system`) models *when* things happen; this
//! module proves *that* the protocol works: every block is genuinely
//! encrypted, authenticated, replay-protected and — under batching —
//! lazily verified from the MsgMAC storage, using the workspace's
//! from-scratch crypto. Integration tests and the `secure_channel` example
//! drive attacks (bit flips, replays, reordering) against it.
//!
//! All functional crypto here — per-block GCM seals, batch-trailer MACs,
//! ACK verification — funnels through [`AesGcm`], which dispatches to the
//! runtime-selected `mgpu_crypto::backend::Backend`: hardware
//! AES-NI/PCLMULQDQ where the CPU supports it, the portable software
//! paths otherwise, bit-identical either way (`MGPU_CRYPTO_BACKEND=soft`
//! forces the software paths).

use crate::batching::{BatchId, ClosedBatch, MacStorage, MsgMac, SenderBatcher};
use crate::key_exchange::KeyExchange;
use crate::replay::ReplayGuard;
use mgpu_crypto::pad::PadSeed;
use mgpu_crypto::AesGcm;
use mgpu_types::{Cycle, DenseNodeMap, Duration, MgpuError, NodeId};

/// Payload size of one protected block (a 64 B cacheline).
pub const BLOCK_SIZE: usize = 64;

/// Batch-id counters live in a disjoint nonce space from block counters:
/// ACKs for batch trailers echo `id | BATCH_NONCE_BIT` as their counter.
pub const BATCH_NONCE_BIT: u64 = 1 << 63;

/// One protected block on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireBlock {
    /// Sending node (the 1 B sender ID of the protocol).
    pub sender: NodeId,
    /// Receiving node.
    pub receiver: NodeId,
    /// `MsgCTR` — selects the pad on both sides.
    pub counter: u64,
    /// 64 B of ciphertext.
    pub ciphertext: Vec<u8>,
    /// Per-block `MsgMAC`; `None` for batched blocks, whose integrity is
    /// carried by the batch trailer instead.
    pub mac: Option<MsgMac>,
    /// Batch membership: `(batch id, index within batch)`.
    pub batch: Option<(BatchId, u32)>,
}

/// The per-batch trailer: one batched MAC covering the whole group
/// (paper Fig. 19b sends this once per n blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchTrailer {
    /// Sending node.
    pub sender: NodeId,
    /// Receiving node.
    pub receiver: NodeId,
    /// Batch id within the sender→receiver stream.
    pub id: BatchId,
    /// Number of blocks in the batch (the 1 B length field).
    pub len: u32,
    /// MAC over the ordered concatenation of the per-block MACs.
    pub mac: MsgMac,
}

/// The acknowledgement returned for replay protection: echoes the MAC of
/// the block (unbatched) or of the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Node sending the ACK (the original receiver).
    pub from: NodeId,
    /// Echoed counter (block `MsgCTR`, or batch id in the batch nonce
    /// space).
    pub counter: u64,
    /// Echoed MAC.
    pub mac: MsgMac,
}

/// One node's end of the secure communication fabric.
///
/// # Examples
///
/// ```
/// use mgpu_secure::channel::Endpoint;
/// use mgpu_secure::key_exchange::KeyExchange;
/// use mgpu_types::NodeId;
///
/// let kx = KeyExchange::boot([1u8; 16]);
/// let mut gpu1 = Endpoint::new(NodeId::gpu(1), 4, &kx);
/// let mut gpu2 = Endpoint::new(NodeId::gpu(2), 4, &kx);
///
/// let block = [0xCD; 64];
/// let wire = gpu1.seal_block(NodeId::gpu(2), &block);
/// let (plain, ack) = gpu2.open_block(&wire).expect("authentic");
/// assert_eq!(plain, block);
/// gpu1.accept_ack(&ack).expect("fresh");
/// ```
#[derive(Debug)]
pub struct Endpoint {
    id: NodeId,
    gcm: DenseNodeMap<AesGcm>,
    send_ctr: DenseNodeMap<u64>,
    guard: ReplayGuard,
    batcher: SenderBatcher,
    storage: MacStorage,
    /// Trailers that arrived before all of their blocks did, listed per
    /// sender (at most a handful in flight, so linear search by batch id).
    early_trailers: DenseNodeMap<Vec<BatchTrailer>>,
    /// Highest batch id accepted per sender (trailer replay protection).
    last_batch: DenseNodeMap<BatchId>,
    /// Reusable ciphertext buffer for batched-MAC recomputation.
    scratch_ct: Vec<u8>,
    /// Reusable buffer for ordered MAC concatenations.
    scratch_concat: Vec<u8>,
}

impl Endpoint {
    /// Creates the endpoint for node `id` in a system with `gpu_count`
    /// GPUs, deriving session keys for every peer from the boot exchange.
    #[must_use]
    pub fn new(id: NodeId, gpu_count: u16, kx: &KeyExchange) -> Self {
        let mut gcm = DenseNodeMap::with_gpu_count(gpu_count);
        for peer in id.peers(gpu_count) {
            gcm.insert(peer, AesGcm::new(&kx.pair_key(id, peer)));
        }
        Endpoint {
            id,
            gcm,
            send_ctr: DenseNodeMap::with_gpu_count(gpu_count),
            guard: ReplayGuard::new(),
            batcher: SenderBatcher::new(16, Duration::cycles(160)),
            storage: MacStorage::new(64 * gpu_count as usize),
            early_trailers: DenseNodeMap::with_gpu_count(gpu_count),
            last_batch: DenseNodeMap::with_gpu_count(gpu_count),
            scratch_ct: Vec::new(),
            scratch_concat: Vec::new(),
        }
    }

    /// Rebuilds the endpoint's sender batcher with explicit parameters,
    /// so the functional channel can mirror a [`BatchingConfig`]'s batch
    /// size and flush timeout instead of the defaults.
    ///
    /// Call before any traffic is sealed; an open batch would be lost.
    ///
    /// [`BatchingConfig`]: mgpu_types::BatchingConfig
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is outside `1..=255` (the 1 B wire length
    /// field), per [`SenderBatcher::new`].
    #[must_use]
    pub fn with_batch_params(mut self, batch_size: u32, flush_timeout: Duration) -> Self {
        self.batcher = SenderBatcher::new(batch_size, flush_timeout);
        self
    }

    /// This endpoint's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    fn gcm_for(&self, peer: NodeId) -> &AesGcm {
        self.gcm.get(peer).expect("peer within system")
    }

    fn next_ctr(&mut self, peer: NodeId) -> u64 {
        let ctr = self.send_ctr.get_or_insert_with(peer, || 0);
        let out = *ctr;
        *ctr += 1;
        out
    }

    fn aad(sender: NodeId, receiver: NodeId, counter: u64) -> [u8; 12] {
        PadSeed::new(sender.raw(), receiver.raw(), counter).to_nonce()
    }

    /// Seals one unbatched block for `peer`: encrypt, MAC, register the
    /// outstanding `(counter, MAC)` for replay protection.
    pub fn seal_block(&mut self, peer: NodeId, block: &[u8; BLOCK_SIZE]) -> WireBlock {
        let mut wire = WireBlock {
            sender: self.id,
            receiver: peer,
            counter: 0,
            ciphertext: Vec::new(),
            mac: None,
            batch: None,
        };
        self.seal_block_into(peer, block, &mut wire);
        wire
    }

    /// [`seal_block`] writing into a caller-owned [`WireBlock`], reusing
    /// its ciphertext buffer — the steady-state send path allocates nothing
    /// once the buffer has reached block size.
    ///
    /// [`seal_block`]: Endpoint::seal_block
    pub fn seal_block_into(
        &mut self,
        peer: NodeId,
        block: &[u8; BLOCK_SIZE],
        wire: &mut WireBlock,
    ) {
        let counter = self.next_ctr(peer);
        let nonce = PadSeed::new(self.id.raw(), peer.raw(), counter).to_nonce();
        let aad = Self::aad(self.id, peer, counter);
        let gcm = self.gcm.get(peer).expect("peer within system");
        let tag = gcm.seal_detached_into(&nonce, &aad, block, &mut wire.ciphertext);
        let mac: MsgMac = tag[..8].try_into().expect("8-byte prefix");
        self.guard.register_outstanding(peer, counter, mac);
        wire.sender = self.id;
        wire.receiver = peer;
        wire.counter = counter;
        wire.mac = Some(mac);
        wire.batch = None;
    }

    /// Opens one unbatched block: freshness check, verify MAC, decrypt,
    /// and produce the ACK to return.
    ///
    /// # Errors
    ///
    /// * [`MgpuError::ReplayDetected`] — the counter did not advance.
    /// * [`MgpuError::AuthenticationFailed`] — MAC mismatch (tampering).
    /// * [`MgpuError::Protocol`] — the block claims batch membership or
    ///   carries no MAC.
    pub fn open_block(&mut self, wire: &WireBlock) -> Result<(Vec<u8>, Ack), MgpuError> {
        let mut plaintext = Vec::new();
        let ack = self.open_block_into(wire, &mut plaintext)?;
        Ok((plaintext, ack))
    }

    /// [`open_block`] decrypting into a caller-owned buffer, reusing its
    /// allocation. On error the buffer's contents are unspecified and must
    /// not be used.
    ///
    /// # Errors
    ///
    /// See [`open_block`].
    ///
    /// [`open_block`]: Endpoint::open_block
    pub fn open_block_into(
        &mut self,
        wire: &WireBlock,
        plaintext: &mut Vec<u8>,
    ) -> Result<Ack, MgpuError> {
        if wire.batch.is_some() {
            return Err(MgpuError::Protocol(
                "batched block passed to open_block; use open_batched_block".into(),
            ));
        }
        let mac = wire
            .mac
            .ok_or_else(|| MgpuError::Protocol("unbatched block without a MsgMAC".into()))?;
        let nonce = PadSeed::new(wire.sender.raw(), self.id.raw(), wire.counter).to_nonce();
        let aad = Self::aad(wire.sender, self.id, wire.counter);
        // Verify first, record freshness second: a forged message must not
        // burn the counter it claims, or an attacker could block the
        // genuine message by sending garbage ahead of it.
        self.gcm_for(wire.sender)
            .open_detached_into(&nonce, &aad, &wire.ciphertext, &mac, plaintext)
            .map_err(|_| MgpuError::AuthenticationFailed {
                context: format!(
                    "block MAC mismatch from {} at counter {}",
                    wire.sender, wire.counter
                ),
            })?;
        self.guard.check_fresh(wire.sender, wire.counter)?;
        Ok(Ack {
            from: self.id,
            counter: wire.counter,
            mac,
        })
    }

    /// Seals one block for `peer` into the currently open batch: the
    /// per-block MAC is withheld from the wire and accumulated by the
    /// batcher. When this block fills the batch, the closing
    /// [`BatchTrailer`] is returned alongside it.
    ///
    /// This is the streaming form of [`Endpoint::seal_batch`]: blocks go
    /// on the wire as they are produced, the trailer follows when the
    /// batch closes (or when [`Endpoint::flush_batch`] is called on a
    /// timeout).
    pub fn seal_batched_block(
        &mut self,
        peer: NodeId,
        block: &[u8; BLOCK_SIZE],
    ) -> (WireBlock, Option<BatchTrailer>) {
        let mut wire = WireBlock {
            sender: self.id,
            receiver: peer,
            counter: 0,
            ciphertext: Vec::new(),
            mac: None,
            batch: None,
        };
        let trailer = self.seal_batched_block_into(peer, block, &mut wire);
        (wire, trailer)
    }

    /// [`seal_batched_block`] writing into a caller-owned [`WireBlock`],
    /// reusing its ciphertext buffer.
    ///
    /// [`seal_batched_block`]: Endpoint::seal_batched_block
    pub fn seal_batched_block_into(
        &mut self,
        peer: NodeId,
        block: &[u8; BLOCK_SIZE],
        wire: &mut WireBlock,
    ) -> Option<BatchTrailer> {
        let (batch_id, index) = self.batcher.peek_slot(peer);
        let counter = self.next_ctr(peer);
        let nonce = PadSeed::new(self.id.raw(), peer.raw(), counter).to_nonce();
        let aad = Self::aad(self.id, peer, counter);
        let gcm = self.gcm.get(peer).expect("peer within system");
        let tag = gcm.seal_detached_into(&nonce, &aad, block, &mut wire.ciphertext);
        let mac: MsgMac = tag[..8].try_into().expect("8-byte prefix");
        // Functional path: timing is modelled elsewhere, so batches close
        // on size here and on explicit `flush_batch` calls, never on the
        // batcher's own clock.
        let trailer = self
            .batcher
            .add_block(Cycle::ZERO, peer, mac)
            .map(|closed| self.close_batch(peer, &closed));
        wire.sender = self.id;
        wire.receiver = peer;
        wire.counter = counter;
        wire.mac = None;
        wire.batch = Some((batch_id, index));
        trailer
    }

    /// Closes the open batch towards `peer` (timeout flush), returning its
    /// trailer, or `None` when no batch is open. Other peers' open batches
    /// are untouched.
    pub fn flush_batch(&mut self, peer: NodeId) -> Option<BatchTrailer> {
        self.batcher
            .flush_dst(peer)
            .map(|closed| self.close_batch(peer, &closed))
    }

    /// Registers a closed batch as outstanding and builds its trailer.
    fn close_batch(&mut self, peer: NodeId, closed: &ClosedBatch) -> BatchTrailer {
        self.scratch_concat.clear();
        for mac in &closed.macs {
            self.scratch_concat.extend_from_slice(mac);
        }
        let gcm = self.gcm.get(peer).expect("peer within system");
        let mac = Self::batched_mac_with(
            gcm,
            self.id,
            peer,
            closed.id,
            &self.scratch_concat,
            &mut self.scratch_ct,
        );
        self.guard
            .register_outstanding(peer, closed.id | BATCH_NONCE_BIT, mac);
        BatchTrailer {
            sender: self.id,
            receiver: peer,
            id: closed.id,
            len: closed.len(),
            mac,
        }
    }

    /// Seals a group of blocks for `peer` as one batch: per-block MACs are
    /// withheld from the wire; the returned trailer carries the single
    /// batched MAC (paper Formula 5).
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty, longer than the batch size (it would
    /// span several batches — use [`Endpoint::seal_batched_block`]), or if
    /// a batch towards `peer` is already open.
    pub fn seal_batch(
        &mut self,
        peer: NodeId,
        blocks: &[[u8; BLOCK_SIZE]],
    ) -> (Vec<WireBlock>, BatchTrailer) {
        assert!(!blocks.is_empty(), "batch must contain at least one block");
        assert!(
            blocks.len() as u32 <= self.batcher.batch_size(),
            "{} blocks exceed the batch size {}",
            blocks.len(),
            self.batcher.batch_size()
        );
        assert_eq!(
            self.batcher.peek_slot(peer).1,
            0,
            "a batch towards {peer} is already open"
        );
        let mut wires = Vec::with_capacity(blocks.len());
        let mut trailer = None;
        for block in blocks {
            let (wire, done) = self.seal_batched_block(peer, block);
            wires.push(wire);
            if let Some(done) = done {
                trailer = Some(done);
            }
        }
        let trailer = trailer
            .or_else(|| self.flush_batch(peer))
            .expect("open batch for peer");
        (wires, trailer)
    }

    /// Computes the batched MAC over the ordered MAC concatenation, in the
    /// dedicated batch nonce space of the `me → peer` stream. Static over
    /// explicit borrows so callers can hold other `self` fields mutably.
    fn batched_mac_with(
        gcm: &AesGcm,
        me: NodeId,
        peer: NodeId,
        id: BatchId,
        concat: &[u8],
        ct_scratch: &mut Vec<u8>,
    ) -> MsgMac {
        let nonce = PadSeed::new(me.raw(), peer.raw(), id | BATCH_NONCE_BIT).to_nonce();
        let aad = Self::aad(me, peer, id | BATCH_NONCE_BIT);
        let tag = gcm.seal_detached_into(&nonce, &aad, concat, ct_scratch);
        tag[..8].try_into().expect("8-byte prefix")
    }

    /// Opens one *batched* block lazily: the plaintext is returned
    /// immediately (after freshness check); the recomputed per-block MAC is
    /// parked in the MsgMAC storage. If this block completes a batch whose
    /// trailer already arrived, the batch verifies now and the ACK is
    /// returned.
    ///
    /// # Errors
    ///
    /// * [`MgpuError::ReplayDetected`] — stale counter.
    /// * [`MgpuError::Protocol`] — not a batched block, duplicate index, or
    ///   storage overflow.
    /// * [`MgpuError::AuthenticationFailed`] — the completing batch failed
    ///   verification.
    pub fn open_batched_block(
        &mut self,
        wire: &WireBlock,
    ) -> Result<(Vec<u8>, Option<Ack>), MgpuError> {
        let mut plaintext = Vec::new();
        let ack = self.open_batched_block_into(wire, &mut plaintext)?;
        Ok((plaintext, ack))
    }

    /// [`open_batched_block`] decrypting into a caller-owned buffer,
    /// reusing its allocation. On error the buffer's contents are
    /// unspecified and must not be used.
    ///
    /// # Errors
    ///
    /// See [`open_batched_block`].
    ///
    /// [`open_batched_block`]: Endpoint::open_batched_block
    pub fn open_batched_block_into(
        &mut self,
        wire: &WireBlock,
        plaintext: &mut Vec<u8>,
    ) -> Result<Option<Ack>, MgpuError> {
        let (batch_id, index) = wire.batch.ok_or_else(|| {
            MgpuError::Protocol("unbatched block passed to open_batched_block".into())
        })?;
        // Batched blocks may arrive out of order within their batch, so the
        // strict per-block counter check does not apply. Replay protection
        // still holds: a duplicated block hits an occupied MsgMAC-storage
        // slot (rejected below), and a replayed *batch* is caught by the
        // trailer's batch-id freshness check in `accept_trailer`.
        let nonce = PadSeed::new(wire.sender.raw(), self.id.raw(), wire.counter).to_nonce();
        let aad = Self::aad(wire.sender, self.id, wire.counter);
        // Lazy verification: decrypt now, verify when the batch completes.
        let tag = self.gcm_for(wire.sender).decrypt_and_tag_into(
            &nonce,
            &aad,
            &wire.ciphertext,
            plaintext,
        );
        let mac: MsgMac = tag[..8].try_into().expect("8-byte prefix");
        self.storage
            .store_block(wire.sender, batch_id, index, mac)?;
        // If the trailer is already here and all blocks arrived, finish.
        let parked = self
            .early_trailers
            .get(wire.sender)
            .and_then(|list| list.iter().find(|t| t.id == batch_id))
            .copied();
        let ack = if let Some(trailer) = parked {
            if self.storage.pending(wire.sender, batch_id) as u32 == trailer.len {
                self.remove_early_trailer(wire.sender, batch_id);
                Some(self.finish_batch(&trailer)?)
            } else {
                None
            }
        } else {
            None
        };
        Ok(ack)
    }

    /// Unparks the early trailer for `(src, id)`, if present.
    fn remove_early_trailer(&mut self, src: NodeId, id: BatchId) {
        if let Some(list) = self.early_trailers.get_mut(src) {
            if let Some(pos) = list.iter().position(|t| t.id == id) {
                list.swap_remove(pos);
            }
        }
    }

    /// Processes a batch trailer. If every block already arrived the batch
    /// verifies immediately and the ACK is returned; otherwise the trailer
    /// is parked until the last block lands.
    ///
    /// # Errors
    ///
    /// Returns [`MgpuError::AuthenticationFailed`] if the batched MAC does
    /// not match, [`MgpuError::ReplayDetected`] for a stale batch id, or
    /// [`MgpuError::Protocol`] on malformed batches — including a trailer
    /// whose length field claims fewer blocks than already arrived.
    pub fn accept_trailer(&mut self, trailer: &BatchTrailer) -> Result<Option<Ack>, MgpuError> {
        // Batch ids advance monotonically per stream: a replayed batch
        // (blocks + trailer re-sent wholesale) trips this check. Batch ids
        // get their own freshness domain, separate from block counters.
        // Freshness is recorded only when the batch *verifies* (in
        // `finish_batch`) — a tampered trailer must not burn the id it
        // claims, or the genuine trailer could never complete its batch.
        if let Some(&last) = self.last_batch.get(trailer.sender) {
            if trailer.id <= last {
                return Err(MgpuError::ReplayDetected {
                    counter: trailer.id,
                });
            }
        }
        let pending = self.storage.pending(trailer.sender, trailer.id) as u32;
        if pending > trailer.len {
            // An under-length trailer can never match the stored MACs —
            // reject it inline instead of parking it forever.
            return Err(MgpuError::Protocol(format!(
                "trailer for batch {} from {} claims {} blocks but {pending} already arrived",
                trailer.id, trailer.sender, trailer.len
            )));
        }
        if pending == trailer.len {
            Ok(Some(self.finish_batch(trailer)?))
        } else {
            let list = self
                .early_trailers
                .get_or_insert_with(trailer.sender, Vec::new);
            match list.iter_mut().find(|t| t.id == trailer.id) {
                Some(slot) => *slot = *trailer,
                None => list.push(*trailer),
            }
            Ok(None)
        }
    }

    fn finish_batch(&mut self, trailer: &BatchTrailer) -> Result<Ack, MgpuError> {
        let sender = trailer.sender;
        let id = trailer.id;
        let me = self.id;
        // Verify inside the closure with a locally recomputed batched MAC.
        // The closure borrows the session cipher and the ciphertext scratch
        // buffer — fields disjoint from `storage` — so nothing is cloned.
        let gcm = self.gcm.get(sender).expect("peer within system");
        let scratch = &mut self.scratch_ct;
        let trailer_mac = trailer.mac;
        let ok = self.storage.complete(sender, id, trailer.len, |concat| {
            let nonce = PadSeed::new(sender.raw(), me.raw(), id | BATCH_NONCE_BIT).to_nonce();
            let aad = Self::aad(sender, me, id | BATCH_NONCE_BIT);
            let tag = gcm.seal_detached_into(&nonce, &aad, concat, scratch);
            tag[..8] == trailer_mac
        })?;
        if !ok {
            return Err(MgpuError::AuthenticationFailed {
                context: format!("batched MAC mismatch for batch {id} from {sender}"),
            });
        }
        // Only a verified batch advances the trailer-replay horizon, and it
        // sweeps out any parked (possibly forged, over-length) trailer
        // still waiting under this batch id.
        self.last_batch.insert(sender, id);
        self.remove_early_trailer(sender, id);
        Ok(Ack {
            from: me,
            counter: id | BATCH_NONCE_BIT,
            mac: trailer_mac,
        })
    }

    /// Validates an ACK against the outstanding table (replay protection's
    /// sender side).
    ///
    /// # Errors
    ///
    /// See [`ReplayGuard::accept_ack`].
    pub fn accept_ack(&mut self, ack: &Ack) -> Result<(), MgpuError> {
        self.guard.accept_ack(ack.from, ack.counter, ack.mac)
    }

    /// Whether the message/batch sent to `peer` under `counter` (batch ids
    /// carry the batch-nonce bit) is still awaiting its ACK — the sender's
    /// window into dropped acknowledgements.
    #[must_use]
    pub fn ack_outstanding(&self, peer: NodeId, counter: u64) -> bool {
        self.guard.is_outstanding(peer, counter)
    }

    /// Drops the receive-side state parked for batch `id` from `src` —
    /// stored MsgMACs and any early trailer — freeing the storage for a
    /// retransmission after a failed batch verification. Returns the
    /// number of MACs discarded.
    pub fn discard_batch(&mut self, src: NodeId, id: BatchId) -> usize {
        self.remove_early_trailer(src, id);
        self.storage.discard(src, id)
    }

    /// Messages/batches still awaiting acknowledgement.
    #[must_use]
    pub fn outstanding_acks(&self) -> usize {
        self.guard.outstanding()
    }

    /// High-water mark of the receive-side MsgMAC storage.
    #[must_use]
    pub fn mac_storage_peak(&self) -> usize {
        self.storage.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Endpoint, Endpoint) {
        let kx = KeyExchange::boot([42; 16]);
        (
            Endpoint::new(NodeId::gpu(1), 4, &kx),
            Endpoint::new(NodeId::gpu(2), 4, &kx),
        )
    }

    #[test]
    fn unbatched_roundtrip_with_ack() {
        let (mut a, mut b) = pair();
        let block = [0x5A; 64];
        let wire = a.seal_block(b.id(), &block);
        assert_eq!(a.outstanding_acks(), 1);
        let (plain, ack) = b.open_block(&wire).unwrap();
        assert_eq!(plain, block);
        a.accept_ack(&ack).unwrap();
        assert_eq!(a.outstanding_acks(), 0);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_across_counters() {
        let (mut a, b) = pair();
        let block = [0x5A; 64];
        let w1 = a.seal_block(b.id(), &block);
        let w2 = a.seal_block(b.id(), &block);
        assert_ne!(w1.ciphertext, block.to_vec());
        // Same plaintext, fresh counter => fresh pad => fresh ciphertext.
        assert_ne!(w1.ciphertext, w2.ciphertext);
        assert_eq!(w1.counter + 1, w2.counter);
    }

    #[test]
    fn tampered_block_is_rejected() {
        let (mut a, mut b) = pair();
        let mut wire = a.seal_block(b.id(), &[1; 64]);
        wire.ciphertext[10] ^= 0x80;
        let err = b.open_block(&wire).unwrap_err();
        assert!(matches!(err, MgpuError::AuthenticationFailed { .. }));
    }

    #[test]
    fn replayed_block_is_rejected() {
        let (mut a, mut b) = pair();
        let wire = a.seal_block(b.id(), &[1; 64]);
        b.open_block(&wire).unwrap();
        let err = b.open_block(&wire).unwrap_err();
        assert!(matches!(err, MgpuError::ReplayDetected { .. }));
    }

    #[test]
    fn forged_ack_is_rejected() {
        let (mut a, mut b) = pair();
        let wire = a.seal_block(b.id(), &[1; 64]);
        let (_, mut ack) = b.open_block(&wire).unwrap();
        ack.mac[0] ^= 1;
        assert!(matches!(
            a.accept_ack(&ack),
            Err(MgpuError::AuthenticationFailed { .. })
        ));
        // Original entry still outstanding for the genuine ACK.
        assert_eq!(a.outstanding_acks(), 1);
    }

    #[test]
    fn batch_roundtrip_in_order() {
        let (mut a, mut b) = pair();
        let blocks: Vec<[u8; 64]> = (0..16u8).map(|i| [i; 64]).collect();
        let (wires, trailer) = a.seal_batch(b.id(), &blocks);
        assert_eq!(trailer.len, 16);
        let mut ack = None;
        for (i, wire) in wires.iter().enumerate() {
            let (plain, maybe_ack) = b.open_batched_block(wire).unwrap();
            assert_eq!(plain, blocks[i]);
            assert!(maybe_ack.is_none());
        }
        // Trailer arrives after all blocks: verification completes.
        if let Some(got) = b.accept_trailer(&trailer).unwrap() {
            ack = Some(got);
        }
        let ack = ack.expect("batch verified");
        a.accept_ack(&ack).unwrap();
        assert_eq!(a.outstanding_acks(), 0);
    }

    #[test]
    fn batch_roundtrip_out_of_order_with_early_trailer() {
        let (mut a, mut b) = pair();
        let blocks: Vec<[u8; 64]> = (0..8u8).map(|i| [i.wrapping_mul(37); 64]).collect();
        let (mut wires, trailer) = a.seal_batch(b.id(), &blocks);
        // Trailer first (races ahead on the wire).
        assert!(b.accept_trailer(&trailer).unwrap().is_none());
        // Blocks arrive in reverse order — but counters must still advance;
        // reverse order would trip the freshness check, so interleave
        // plausibly: deliver evens then odds.
        let evens: Vec<WireBlock> = wires.iter().step_by(2).cloned().collect();
        let odds: Vec<WireBlock> = wires.iter().skip(1).step_by(2).cloned().collect();
        wires.clear();
        let mut ack = None;
        for wire in evens.iter() {
            let (_, got) = b.open_batched_block(wire).unwrap();
            assert!(got.is_none());
        }
        for wire in odds.iter() {
            let (_, got) = b.open_batched_block(wire).unwrap();
            if let Some(got) = got {
                ack = Some(got);
            }
        }
        let ack = ack.expect("last block completed the batch");
        a.accept_ack(&ack).unwrap();
    }

    #[test]
    fn tampered_batched_block_fails_lazy_verification() {
        let (mut a, mut b) = pair();
        let blocks: Vec<[u8; 64]> = (0..4u8).map(|i| [i; 64]).collect();
        let (mut wires, trailer) = a.seal_batch(b.id(), &blocks);
        wires[2].ciphertext[0] ^= 1;
        for wire in &wires {
            // Lazy: decryption always "succeeds" — tampering surfaces at
            // batch completion, not here.
            b.open_batched_block(wire).unwrap();
        }
        let err = b.accept_trailer(&trailer).unwrap_err();
        assert!(matches!(err, MgpuError::AuthenticationFailed { .. }));
    }

    #[test]
    fn tampered_trailer_fails() {
        let (mut a, mut b) = pair();
        let blocks: Vec<[u8; 64]> = (0..4u8).map(|i| [i; 64]).collect();
        let (wires, mut trailer) = a.seal_batch(b.id(), &blocks);
        for wire in &wires {
            b.open_batched_block(wire).unwrap();
        }
        trailer.mac[5] ^= 4;
        assert!(matches!(
            b.accept_trailer(&trailer),
            Err(MgpuError::AuthenticationFailed { .. })
        ));
    }

    #[test]
    fn block_and_batch_nonce_spaces_are_disjoint() {
        // Batch id 0 must not collide with block counter 0.
        let (mut a, mut b) = pair();
        let (wires, trailer) = a.seal_batch(b.id(), &[[7; 64]]);
        for wire in &wires {
            b.open_batched_block(wire).unwrap();
        }
        let ack = b.accept_trailer(&trailer).unwrap().expect("verified");
        assert_eq!(ack.counter, BATCH_NONCE_BIT);
        a.accept_ack(&ack).unwrap();
        // A plain block with counter equal to the batch count still works.
        let wire = a.seal_block(b.id(), &[8; 64]);
        b.open_block(&wire).unwrap();
    }

    #[test]
    fn mac_storage_peak_is_bounded_by_batch() {
        let (mut a, mut b) = pair();
        let blocks: Vec<[u8; 64]> = (0..16u8).map(|i| [i; 64]).collect();
        let (wires, trailer) = a.seal_batch(b.id(), &blocks);
        for wire in &wires {
            b.open_batched_block(wire).unwrap();
        }
        b.accept_trailer(&trailer).unwrap();
        assert_eq!(b.mac_storage_peak(), 16);
    }

    fn small_batch_pair() -> (Endpoint, Endpoint) {
        let kx = KeyExchange::boot([42; 16]);
        (
            Endpoint::new(NodeId::gpu(1), 4, &kx).with_batch_params(4, Duration::cycles(100)),
            Endpoint::new(NodeId::gpu(2), 4, &kx),
        )
    }

    #[test]
    fn streaming_batch_emits_trailer_when_full() {
        let (mut a, mut b) = small_batch_pair();
        let mut trailers = Vec::new();
        let mut acks = Vec::new();
        for i in 0..8u8 {
            let (wire, trailer) = a.seal_batched_block(b.id(), &[i; 64]);
            let (plain, _) = b.open_batched_block(&wire).unwrap();
            assert_eq!(plain, [i; 64]);
            if let Some(t) = trailer {
                // Batch closes exactly on the 4th and 8th block.
                assert_eq!(i % 4, 3);
                assert_eq!(t.len, 4);
                acks.push(b.accept_trailer(&t).unwrap().expect("batch complete"));
                trailers.push(t);
            }
        }
        assert_eq!(trailers.len(), 2);
        assert_eq!(trailers[0].id + 1, trailers[1].id);
        for ack in &acks {
            a.accept_ack(ack).unwrap();
        }
        assert_eq!(a.outstanding_acks(), 0);
    }

    #[test]
    fn flush_batch_closes_partial_batch() {
        let (mut a, mut b) = small_batch_pair();
        assert!(a.flush_batch(b.id()).is_none(), "nothing open yet");
        let (wire, none) = a.seal_batched_block(b.id(), &[9; 64]);
        assert!(none.is_none());
        let trailer = a.flush_batch(b.id()).expect("partial batch flushed");
        assert_eq!(trailer.len, 1);
        assert!(a.ack_outstanding(b.id(), trailer.id | BATCH_NONCE_BIT));
        b.open_batched_block(&wire).unwrap();
        let ack = b.accept_trailer(&trailer).unwrap().expect("verified");
        a.accept_ack(&ack).unwrap();
        assert!(!a.ack_outstanding(b.id(), trailer.id | BATCH_NONCE_BIT));
    }

    #[test]
    fn under_length_trailer_is_rejected_inline() {
        let (mut a, mut b) = small_batch_pair();
        let blocks: Vec<[u8; 64]> = (0..4u8).map(|i| [i; 64]).collect();
        let (wires, trailer) = a.seal_batch(b.id(), &blocks);
        for wire in &wires {
            b.open_batched_block(wire).unwrap();
        }
        let forged = BatchTrailer {
            len: trailer.len - 1,
            ..trailer
        };
        // Fewer blocks claimed than arrived: impossible, flagged inline
        // rather than parked forever.
        assert!(matches!(
            b.accept_trailer(&forged),
            Err(MgpuError::Protocol(_))
        ));
        // The genuine trailer still completes the batch.
        let ack = b.accept_trailer(&trailer).unwrap().expect("verified");
        a.accept_ack(&ack).unwrap();
    }

    #[test]
    fn over_length_trailer_parks_then_genuine_completes() {
        let (mut a, mut b) = small_batch_pair();
        let blocks: Vec<[u8; 64]> = (0..4u8).map(|i| [i; 64]).collect();
        let (wires, trailer) = a.seal_batch(b.id(), &blocks);
        for wire in &wires {
            b.open_batched_block(wire).unwrap();
        }
        let forged = BatchTrailer {
            len: trailer.len + 1,
            ..trailer
        };
        // Claims a block that will never come: parks awaiting it.
        assert!(b.accept_trailer(&forged).unwrap().is_none());
        // The genuine trailer verifies and sweeps the forged parked one.
        let ack = b.accept_trailer(&trailer).unwrap().expect("verified");
        a.accept_ack(&ack).unwrap();
    }

    #[test]
    fn tampered_trailer_does_not_burn_the_batch_id() {
        let (mut a, mut b) = small_batch_pair();
        let blocks: Vec<[u8; 64]> = (0..4u8).map(|i| [i; 64]).collect();
        let (wires, trailer) = a.seal_batch(b.id(), &blocks);
        for wire in &wires {
            b.open_batched_block(wire).unwrap();
        }
        let mut forged = trailer;
        forged.mac[3] ^= 0x10;
        assert!(matches!(
            b.accept_trailer(&forged),
            Err(MgpuError::AuthenticationFailed { .. })
        ));
        // Stored MACs and the batch id both survive the forgery: the
        // genuine trailer still verifies.
        let ack = b.accept_trailer(&trailer).unwrap().expect("verified");
        a.accept_ack(&ack).unwrap();
        // A *replay* of the now-verified trailer is still rejected.
        assert!(matches!(
            b.accept_trailer(&trailer),
            Err(MgpuError::ReplayDetected { .. })
        ));
    }

    #[test]
    fn discard_batch_enables_retransmission_after_tamper() {
        let (mut a, mut b) = small_batch_pair();
        let blocks: Vec<[u8; 64]> = (0..4u8).map(|i| [i; 64]).collect();
        let (wires, trailer) = a.seal_batch(b.id(), &blocks);
        let mut tampered = wires.clone();
        tampered[1].ciphertext[7] ^= 2;
        for wire in &tampered {
            b.open_batched_block(wire).unwrap();
        }
        assert!(matches!(
            b.accept_trailer(&trailer),
            Err(MgpuError::AuthenticationFailed { .. })
        ));
        // Recovery: drop the poisoned batch state, retransmit clean.
        assert_eq!(b.discard_batch(a.id(), trailer.id), 4);
        for wire in &wires {
            b.open_batched_block(wire).unwrap();
        }
        let ack = b.accept_trailer(&trailer).unwrap().expect("verified");
        a.accept_ack(&ack).unwrap();
    }

    #[test]
    #[should_panic(expected = "exceed the batch size")]
    fn seal_batch_larger_than_batch_size_panics() {
        let (mut a, b) = small_batch_pair();
        let blocks: Vec<[u8; 64]> = (0..5u8).map(|i| [i; 64]).collect();
        let _ = a.seal_batch(b.id(), &blocks);
    }

    #[test]
    fn wrong_key_cannot_open() {
        let kx1 = KeyExchange::boot([1; 16]);
        let kx2 = KeyExchange::boot([2; 16]);
        let mut a = Endpoint::new(NodeId::gpu(1), 4, &kx1);
        let mut b = Endpoint::new(NodeId::gpu(2), 4, &kx2);
        let wire = a.seal_block(b.id(), &[9; 64]);
        assert!(matches!(
            b.open_block(&wire),
            Err(MgpuError::AuthenticationFailed { .. })
        ));
    }
}
