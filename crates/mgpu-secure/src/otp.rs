//! OTP buffer machinery: pad windows, hit/partial/miss classification and
//! per-direction statistics.
//!
//! An OTP buffer entry holds a pre-generated pad for one specific
//! `(sender, receiver, MsgCTR)` seed. Because counters advance by one per
//! message, a set of entries for one pair-direction forms a *window* of
//! consecutive counters. [`PadWindow`] models that window's timing: when a
//! pad is consumed, a replacement for the farthest-future counter is issued
//! to the (pipelined) AES engine, and each use is classified as
//! `Hit` / `Partial` / `Miss` exactly as in the paper's Figs. 10 and 22.
//!
//! This module models the *timing* of pad refill against the engine
//! abstraction; the functional pad bytes themselves come from
//! `mgpu_crypto::ctr::CtrKeystream::keystream_blocks`, whose bulk path
//! runs the 8-block interleaved AES-NI pipeline when the runtime-selected
//! crypto backend is hardware — so the simulated 40-cycle engine is backed
//! by genuinely hardware-rate keystream generation.

use mgpu_crypto::engine::{AesEngine, PadTiming};
use mgpu_types::{Cycle, Direction, Duration};
use std::collections::VecDeque;

/// Summary classification of one pad use (collapses
/// [`PadTiming::Partial`]'s remaining time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PadClass {
    /// Latency fully hidden.
    Hit,
    /// Latency partially hidden.
    Partial,
    /// Latency fully exposed.
    Miss,
}

impl PadClass {
    /// All classes in display order.
    pub const ALL: [PadClass; 3] = [PadClass::Hit, PadClass::Partial, PadClass::Miss];
}

impl From<PadTiming> for PadClass {
    fn from(t: PadTiming) -> Self {
        match t {
            PadTiming::Hit => PadClass::Hit,
            PadTiming::Partial { .. } => PadClass::Partial,
            PadTiming::Miss => PadClass::Miss,
        }
    }
}

/// Per-direction hit/partial/miss counts and exposed-latency totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OtpStats {
    counts: [[u64; 3]; 2],
    exposed: [u64; 2],
}

impl OtpStats {
    fn dir_index(dir: Direction) -> usize {
        match dir {
            Direction::Send => 0,
            Direction::Recv => 1,
        }
    }

    fn class_index(class: PadClass) -> usize {
        match class {
            PadClass::Hit => 0,
            PadClass::Partial => 1,
            PadClass::Miss => 2,
        }
    }

    /// Classifies a pad timing for accounting: a `Partial` whose wait is
    /// at least the full AES latency hid nothing — it is a miss in the
    /// paper's `OTP_Miss` sense (Figs. 10/22), even though the mechanism
    /// was a pending (serialized) window pad rather than an absent one.
    #[must_use]
    pub fn classify(timing: PadTiming, full_latency: Duration) -> PadClass {
        match timing {
            PadTiming::Partial { remaining } if remaining >= full_latency => PadClass::Miss,
            other => other.into(),
        }
    }

    /// Records one classified pad use.
    pub fn record(&mut self, dir: Direction, timing: PadTiming, full_latency: Duration) {
        let d = Self::dir_index(dir);
        self.counts[d][Self::class_index(Self::classify(timing, full_latency))] += 1;
        self.exposed[d] += timing.exposed_latency(full_latency).as_u64();
    }

    /// Count of uses in `dir` classified as `class`.
    #[must_use]
    pub fn count(&self, dir: Direction, class: PadClass) -> u64 {
        self.counts[Self::dir_index(dir)][Self::class_index(class)]
    }

    /// Total uses in `dir`.
    #[must_use]
    pub fn total(&self, dir: Direction) -> u64 {
        self.counts[Self::dir_index(dir)].iter().sum()
    }

    /// Fraction of uses in `dir` classified as `class`; 0 when empty.
    #[must_use]
    pub fn fraction(&self, dir: Direction, class: PadClass) -> f64 {
        let total = self.total(dir);
        if total == 0 {
            0.0
        } else {
            self.count(dir, class) as f64 / total as f64
        }
    }

    /// Fraction of uses whose latency was at least partially hidden
    /// (hit + partial) — the headline number of the paper's Fig. 10.
    #[must_use]
    pub fn hidden_fraction(&self, dir: Direction) -> f64 {
        self.fraction(dir, PadClass::Hit) + self.fraction(dir, PadClass::Partial)
    }

    /// Sum of exposed latencies in `dir`, in cycles.
    #[must_use]
    pub fn exposed_cycles(&self, dir: Direction) -> u64 {
        self.exposed[Self::dir_index(dir)]
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &OtpStats) {
        for d in 0..2 {
            for c in 0..3 {
                self.counts[d][c] += other.counts[d][c];
            }
            self.exposed[d] += other.exposed[d];
        }
    }
}

/// A window of pre-generated pads for consecutive counters of one
/// pair-direction.
///
/// # Examples
///
/// ```
/// use mgpu_secure::otp::PadWindow;
/// use mgpu_crypto::engine::{AesEngine, PadTiming};
/// use mgpu_types::{Cycle, Duration};
///
/// let mut engine = AesEngine::new(Duration::cycles(40));
/// let mut window = PadWindow::new(4, Cycle::ZERO, &mut engine);
/// // Pads were issued at boot; by cycle 1000 all four are ready.
/// let (timing, ctr) = window.use_pad(Cycle::new(1000), &mut engine);
/// assert_eq!(timing, PadTiming::Hit);
/// assert_eq!(ctr, 0);
/// ```
#[derive(Debug, Clone)]
pub struct PadWindow {
    next_counter: u64,
    ready: VecDeque<Cycle>,
    target_depth: u32,
}

impl PadWindow {
    /// Creates a window of `depth` pads starting at counter 0, issuing the
    /// initial generations at `now`.
    #[must_use]
    pub fn new(depth: u32, now: Cycle, engine: &mut AesEngine) -> Self {
        let mut window = PadWindow {
            next_counter: 0,
            ready: VecDeque::new(),
            target_depth: depth,
        };
        window.refill(now, engine);
        window
    }

    /// The counter the next message on this pair-direction will use.
    #[must_use]
    pub fn next_counter(&self) -> u64 {
        self.next_counter
    }

    /// Currently buffered (issued) pads.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.ready.len()
    }

    /// Configured depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.target_depth
    }

    fn refill(&mut self, now: Cycle, engine: &mut AesEngine) {
        while self.ready.len() < self.target_depth as usize {
            let ready_at = engine.issue(now);
            self.ready.push_back(ready_at);
        }
    }

    /// Consumes the pad for the next counter at time `now`, issues a
    /// replacement, and returns the timing classification together with the
    /// counter value used.
    ///
    /// The buffer-entry lifecycle models the hardware constraint that an
    /// OTP buffer entry is occupied from the moment its pad generation is
    /// issued until the pad is *used*: the replacement generation for the
    /// farthest-future counter can only be issued once this use frees the
    /// slot. A window of depth `d` therefore sustains at most `d` pads per
    /// AES latency — bursts beyond that rate serialize on pad generation,
    /// which is exactly why the paper's OTP `1x`→`16x` sweep (Fig. 8)
    /// matters so much.
    pub fn use_pad(&mut self, now: Cycle, engine: &mut AesEngine) -> (PadTiming, u64) {
        let ctr = self.next_counter;
        self.next_counter += 1;
        match self.ready.pop_front() {
            None => {
                // Depth-zero window: strictly on-demand generation.
                engine.issue(now);
                (PadTiming::Miss, ctr)
            }
            Some(t) if t <= now => {
                // Slot freed at `now`; replacement issues immediately.
                self.refill(now, engine);
                (PadTiming::Hit, ctr)
            }
            Some(t) => {
                // The block waits for the pad; the slot frees (and the
                // replacement issues) only when the pad is consumed at `t`.
                self.refill(t, engine);
                (PadTiming::Partial { remaining: t - now }, ctr)
            }
        }
    }

    /// Consumes the pad for a specific `ctr` (receive side). If `ctr`
    /// matches the expected next counter this behaves like [`use_pad`];
    /// otherwise the window is out of sync (e.g. the peer used a shared
    /// counter that advanced elsewhere) — a miss — and the window resyncs
    /// to `ctr + 1`.
    ///
    /// [`use_pad`]: PadWindow::use_pad
    pub fn use_pad_for(&mut self, ctr: u64, now: Cycle, engine: &mut AesEngine) -> PadTiming {
        if ctr == self.next_counter {
            self.use_pad(now, engine).0
        } else {
            // Wrong counter: every buffered pad is useless. Regenerate the
            // window beyond the observed counter.
            self.next_counter = ctr + 1;
            self.ready.clear();
            self.refill(now, engine);
            PadTiming::Miss
        }
    }

    /// Consumes the pad for `ctr`, allowing skip-ahead *within* the
    /// buffered window (used by the `Shared` scheme's receive side, where
    /// the sender's global counter may have advanced by sends to other
    /// nodes). Pads for skipped counters are discarded — those messages
    /// went elsewhere and their pads can never be used.
    ///
    /// Counters before the window or beyond its buffered range are misses
    /// and resync the window to `ctr + 1`.
    pub fn use_pad_at(&mut self, ctr: u64, now: Cycle, engine: &mut AesEngine) -> PadTiming {
        let in_window =
            ctr >= self.next_counter && ctr - self.next_counter < self.ready.len() as u64;
        if !in_window {
            self.next_counter = ctr + 1;
            self.ready.clear();
            self.refill(now, engine);
            return PadTiming::Miss;
        }
        let skip = ctr - self.next_counter;
        for _ in 0..skip {
            self.ready.pop_front();
        }
        self.next_counter = ctr + 1;
        match self.ready.pop_front() {
            None => {
                engine.issue(now);
                self.refill(now, engine);
                PadTiming::Miss
            }
            Some(t) if t <= now => {
                self.refill(now, engine);
                PadTiming::Hit
            }
            Some(t) => {
                self.refill(t, engine);
                PadTiming::Partial { remaining: t - now }
            }
        }
    }

    /// Changes the window depth. Growth issues new pad generations at
    /// `now`; shrinkage discards the farthest-future pads (hard eviction —
    /// the entries are immediately reusable elsewhere).
    pub fn set_depth(&mut self, depth: u32, now: Cycle, engine: &mut AesEngine) {
        self.target_depth = depth;
        while self.ready.len() > depth as usize {
            self.ready.pop_back();
        }
        self.refill(now, engine);
    }

    /// Changes the window's *target* depth without discarding pads:
    /// growth issues new generations at `now`, but an over-full window
    /// shrinks by attrition as pads are consumed. Used by the `Dynamic`
    /// allocator so that periodic re-partitioning never throws away
    /// already-generated pads (they stay valid until used).
    pub fn set_target(&mut self, depth: u32, now: Cycle, engine: &mut AesEngine) {
        self.target_depth = depth;
        self.refill(now, engine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> AesEngine {
        AesEngine::new(Duration::cycles(40))
    }

    #[test]
    fn warm_window_hits() {
        let mut e = engine();
        let mut w = PadWindow::new(4, Cycle::ZERO, &mut e);
        assert_eq!(w.buffered(), 4);
        let (t, ctr) = w.use_pad(Cycle::new(100), &mut e);
        assert_eq!(t, PadTiming::Hit);
        assert_eq!(ctr, 0);
        assert_eq!(w.next_counter(), 1);
        assert_eq!(w.buffered(), 4); // replacement issued
    }

    #[test]
    fn burst_depletes_window_into_partials_and_misses() {
        let mut e = engine();
        let mut w = PadWindow::new(4, Cycle::ZERO, &mut e);
        let now = Cycle::new(1_000);
        let mut classes = Vec::new();
        for _ in 0..12 {
            let (t, _) = w.use_pad(now, &mut e);
            classes.push(OtpStats::classify(t, Duration::cycles(40)));
        }
        // First 4 pads were ready; replacements issued at `now` are misses
        // (remaining == full latency, modulo port conflicts pushing later).
        assert_eq!(&classes[..4], &[PadClass::Hit; 4]);
        assert!(classes[4..].iter().all(|&c| c == PadClass::Miss));
    }

    #[test]
    fn spaced_requests_after_burst_are_partial() {
        let mut e = engine();
        let mut w = PadWindow::new(2, Cycle::ZERO, &mut e);
        // Drain the two ready pads at t=1000.
        w.use_pad(Cycle::new(1000), &mut e);
        w.use_pad(Cycle::new(1000), &mut e);
        // Replacements were issued at t=1000 -> ready ~1040/1041. A request
        // at t=1020 finds a pad 20-21 cycles from ready: partial.
        let (t, _) = w.use_pad(Cycle::new(1020), &mut e);
        match t {
            PadTiming::Partial { remaining } => {
                assert!(remaining.as_u64() >= 20 && remaining.as_u64() <= 21);
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn counters_are_sequential() {
        let mut e = engine();
        let mut w = PadWindow::new(4, Cycle::ZERO, &mut e);
        for expected in 0..20 {
            let (_, ctr) = w.use_pad(Cycle::new(5_000 + expected * 100), &mut e);
            assert_eq!(ctr, expected);
        }
    }

    #[test]
    fn recv_side_in_sync_counter_hits() {
        let mut e = engine();
        let mut w = PadWindow::new(4, Cycle::ZERO, &mut e);
        assert_eq!(w.use_pad_for(0, Cycle::new(1000), &mut e), PadTiming::Hit);
        assert_eq!(w.use_pad_for(1, Cycle::new(2000), &mut e), PadTiming::Hit);
    }

    #[test]
    fn recv_side_out_of_sync_counter_misses_and_resyncs() {
        let mut e = engine();
        let mut w = PadWindow::new(4, Cycle::ZERO, &mut e);
        // Peer's shared counter jumped to 10 (it talked to someone else).
        assert_eq!(w.use_pad_for(10, Cycle::new(1000), &mut e), PadTiming::Miss);
        assert_eq!(w.next_counter(), 11);
        // Back-to-back message with the successor counter now hits once the
        // regenerated window is ready.
        assert_eq!(w.use_pad_for(11, Cycle::new(2000), &mut e), PadTiming::Hit);
    }

    #[test]
    fn skip_ahead_within_window() {
        let mut e = engine();
        let mut w = PadWindow::new(4, Cycle::ZERO, &mut e);
        // Counter 2 is within the buffered window [0, 4): skipping 0 and 1
        // still yields a usable pad.
        assert_eq!(w.use_pad_at(2, Cycle::new(1000), &mut e), PadTiming::Hit);
        assert_eq!(w.next_counter(), 3);
        assert_eq!(w.buffered(), 4);
        // Counter far beyond the window: miss + resync.
        assert_eq!(w.use_pad_at(100, Cycle::new(2000), &mut e), PadTiming::Miss);
        assert_eq!(w.next_counter(), 101);
        // A stale counter (before the window): miss + resync.
        assert_eq!(w.use_pad_at(50, Cycle::new(3000), &mut e), PadTiming::Miss);
        assert_eq!(w.next_counter(), 51);
    }

    #[test]
    fn skip_ahead_head_equals_plain_use() {
        let mut e1 = engine();
        let mut e2 = engine();
        let mut w1 = PadWindow::new(4, Cycle::ZERO, &mut e1);
        let mut w2 = PadWindow::new(4, Cycle::ZERO, &mut e2);
        let t1 = w1.use_pad_at(0, Cycle::new(1000), &mut e1);
        let (t2, _) = w2.use_pad(Cycle::new(1000), &mut e2);
        assert_eq!(t1, t2);
        assert_eq!(w1.next_counter(), w2.next_counter());
    }

    #[test]
    fn depth_zero_always_misses() {
        let mut e = engine();
        let mut w = PadWindow::new(0, Cycle::ZERO, &mut e);
        for i in 0..5 {
            let (t, _) = w.use_pad(Cycle::new(i * 1000), &mut e);
            assert_eq!(t, PadTiming::Miss);
        }
        assert_eq!(w.buffered(), 0);
    }

    #[test]
    fn grow_and_shrink_depth() {
        let mut e = engine();
        let mut w = PadWindow::new(2, Cycle::ZERO, &mut e);
        w.set_depth(6, Cycle::new(100), &mut e);
        assert_eq!(w.buffered(), 6);
        assert_eq!(w.depth(), 6);
        w.set_depth(1, Cycle::new(200), &mut e);
        assert_eq!(w.buffered(), 1);
        // The remaining pad is still the one for the next counter: a use
        // long after is a hit.
        let (t, ctr) = w.use_pad(Cycle::new(5_000), &mut e);
        assert_eq!(t, PadTiming::Hit);
        assert_eq!(ctr, 0);
    }

    #[test]
    fn stats_accumulation() {
        let mut s = OtpStats::default();
        let lat = Duration::cycles(40);
        s.record(Direction::Send, PadTiming::Hit, lat);
        s.record(Direction::Send, PadTiming::Miss, lat);
        s.record(
            Direction::Recv,
            PadTiming::Partial {
                remaining: Duration::cycles(10),
            },
            lat,
        );
        assert_eq!(s.count(Direction::Send, PadClass::Hit), 1);
        assert_eq!(s.count(Direction::Send, PadClass::Miss), 1);
        assert_eq!(s.total(Direction::Send), 2);
        assert_eq!(s.total(Direction::Recv), 1);
        assert_eq!(s.fraction(Direction::Send, PadClass::Hit), 0.5);
        assert_eq!(s.hidden_fraction(Direction::Recv), 1.0);
        assert_eq!(s.exposed_cycles(Direction::Send), 1 + 41);
        assert_eq!(s.exposed_cycles(Direction::Recv), 11);
    }

    #[test]
    fn stats_merge() {
        let lat = Duration::cycles(40);
        let mut a = OtpStats::default();
        let mut b = OtpStats::default();
        a.record(Direction::Send, PadTiming::Hit, lat);
        b.record(Direction::Send, PadTiming::Hit, lat);
        b.record(Direction::Recv, PadTiming::Miss, lat);
        a.merge(&b);
        assert_eq!(a.count(Direction::Send, PadClass::Hit), 2);
        assert_eq!(a.count(Direction::Recv, PadClass::Miss), 1);
    }

    #[test]
    fn empty_stats_fractions_are_zero() {
        let s = OtpStats::default();
        assert_eq!(s.fraction(Direction::Send, PadClass::Hit), 0.0);
        assert_eq!(s.hidden_fraction(Direction::Recv), 0.0);
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn window_never_exceeds_depth(
                depth in 0u32..8,
                gaps in proptest::collection::vec(0u64..200, 1..100)) {
                let mut e = AesEngine::new(Duration::cycles(40));
                let mut w = PadWindow::new(depth, Cycle::ZERO, &mut e);
                let mut now = Cycle::ZERO;
                for g in gaps {
                    now += Duration::cycles(g);
                    w.use_pad(now, &mut e);
                    prop_assert!(w.buffered() <= depth as usize);
                }
            }

            #[test]
            fn counters_always_monotonic(
                gaps in proptest::collection::vec(0u64..200, 1..100)) {
                let mut e = AesEngine::new(Duration::cycles(40));
                let mut w = PadWindow::new(4, Cycle::ZERO, &mut e);
                let mut now = Cycle::ZERO;
                let mut prev: Option<u64> = None;
                for g in gaps {
                    now += Duration::cycles(g);
                    let (_, ctr) = w.use_pad(now, &mut e);
                    if let Some(p) = prev {
                        prop_assert_eq!(ctr, p + 1);
                    }
                    prev = Some(ctr);
                }
            }

            #[test]
            fn fully_spaced_requests_always_hit(
                depth in 1u32..8,
                n in 1usize..50) {
                // Requests spaced by more than the full latency can always
                // be served from the refilled window.
                let mut e = AesEngine::new(Duration::cycles(40));
                let mut w = PadWindow::new(depth, Cycle::ZERO, &mut e);
                let mut now = Cycle::new(100);
                for _ in 0..n {
                    let (t, _) = w.use_pad(now, &mut e);
                    prop_assert_eq!(PadClass::from(t), PadClass::Hit);
                    now += Duration::cycles(100);
                }
            }
        }
    }
}
