//! Secure inter-processor communication for multi-GPU systems — the core
//! contribution of the reproduced paper.
//!
//! GPUs in a unified-memory multi-GPU system exchange cacheline-granularity
//! data over physically attackable interconnects. Every message is protected
//! by counter-mode authenticated encryption whose one-time pads (OTPs) can
//! be *pre-generated* if the communicating pair's message counter is
//! predictable. This crate implements:
//!
//! * the **wire protocol** and its security-metadata cost model
//!   ([`protocol`]),
//! * the **OTP buffer machinery** — pad windows, hit/partial/miss
//!   classification and statistics ([`otp`]),
//! * the three **prior schemes** revisited from CPU multiprocessors —
//!   [`schemes::PrivateScheme`], [`schemes::SharedScheme`],
//!   [`schemes::CachedScheme`] — and the paper's proposed
//!   [`schemes::DynamicScheme`] driven by EWMA traffic monitoring
//!   ([`ewma`]),
//! * **security-metadata batching** with lazy, out-of-order-tolerant
//!   verification ([`batching`]),
//! * **replay protection** ([`replay`]), and
//! * a fully **functional secure channel** ([`channel`]) that runs the
//!   whole protocol over real AES-GCM bits, used to validate correctness
//!   independent of the timing simulation.
//!
//! # Examples
//!
//! Classify pad availability under the `Private` scheme:
//!
//! ```
//! use mgpu_secure::schemes::{OtpScheme, PrivateScheme};
//! use mgpu_crypto::AesEngine;
//! use mgpu_types::{Cycle, Duration, NodeId, SystemConfig};
//!
//! let cfg = SystemConfig::paper_4gpu();
//! let mut engine = AesEngine::new(cfg.security.aes_latency);
//! let me = NodeId::gpu(1);
//! let mut scheme = PrivateScheme::new(me, &cfg, &mut engine);
//!
//! // Long after boot, pads are ready: the first send is a hit.
//! let out = scheme.on_send(Cycle::new(10_000), NodeId::gpu(2), &mut engine);
//! assert!(out.timing.latency_hidden());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod batching;
pub mod channel;
pub mod ewma;
pub mod key_exchange;
pub mod otp;
pub mod protocol;
pub mod replay;
pub mod schemes;

pub use otp::{OtpStats, PadClass};
pub use protocol::WireFormat;
pub use schemes::{build_scheme, OtpScheme, SchemeTelemetry, SendOutcome};
