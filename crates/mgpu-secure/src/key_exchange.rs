//! Boot-time pairwise key establishment.
//!
//! The paper assumes "the CPU and GPUs exchange a key during the system
//! boot" (§IV-A), brokered by the attested TEEs. This module models the
//! result of that exchange: a deterministic derivation of one AES-128 key
//! per unordered node pair from a boot-time master secret, so both
//! endpoints of a pair hold the same session key without it ever crossing
//! the (untrusted) interconnect in this model.

use mgpu_crypto::Aes128;
use mgpu_types::NodeId;

/// Derives per-pair session keys from a boot-time master secret.
///
/// # Examples
///
/// ```
/// use mgpu_secure::key_exchange::KeyExchange;
/// use mgpu_types::NodeId;
///
/// let kx = KeyExchange::boot([9u8; 16]);
/// let a = NodeId::gpu(1);
/// let b = NodeId::gpu(2);
/// // Both endpoints derive the same key, independent of argument order.
/// assert_eq!(kx.pair_key(a, b), kx.pair_key(b, a));
/// // Different pairs get different keys.
/// assert_ne!(kx.pair_key(a, b), kx.pair_key(a, NodeId::CPU));
/// ```
#[derive(Clone)]
pub struct KeyExchange {
    master: Aes128,
}

impl core::fmt::Debug for KeyExchange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KeyExchange").finish_non_exhaustive()
    }
}

impl KeyExchange {
    /// Performs the boot-time exchange with the given master secret.
    #[must_use]
    pub fn boot(master_secret: [u8; 16]) -> Self {
        KeyExchange {
            master: Aes128::new(&master_secret),
        }
    }

    /// The session key shared by the unordered pair `{a, b}`.
    ///
    /// Derived as `AES_master(min ‖ max ‖ "pairkey")` so both endpoints
    /// agree regardless of who asks.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` — a node has no channel to itself.
    #[must_use]
    pub fn pair_key(&self, a: NodeId, b: NodeId) -> [u8; 16] {
        assert_ne!(a, b, "no self-channel keys");
        let (lo, hi) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        let mut block = [0u8; 16];
        block[0..2].copy_from_slice(&lo.raw().to_be_bytes());
        block[2..4].copy_from_slice(&hi.raw().to_be_bytes());
        block[4..11].copy_from_slice(b"pairkey");
        self.master.encrypt_block(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_derivation() {
        let kx = KeyExchange::boot([1; 16]);
        for a in NodeId::all(4) {
            for b in NodeId::all(4) {
                if a != b {
                    assert_eq!(kx.pair_key(a, b), kx.pair_key(b, a));
                }
            }
        }
    }

    #[test]
    fn distinct_pairs_distinct_keys() {
        let kx = KeyExchange::boot([1; 16]);
        let mut keys = std::collections::HashSet::new();
        for a in NodeId::all(8) {
            for b in NodeId::all(8) {
                if a.raw() < b.raw() {
                    assert!(keys.insert(kx.pair_key(a, b)), "collision at {a},{b}");
                }
            }
        }
        // C(9, 2) = 36 unordered pairs.
        assert_eq!(keys.len(), 36);
    }

    #[test]
    fn different_master_different_keys() {
        let k1 = KeyExchange::boot([1; 16]);
        let k2 = KeyExchange::boot([2; 16]);
        assert_ne!(
            k1.pair_key(NodeId::CPU, NodeId::gpu(1)),
            k2.pair_key(NodeId::CPU, NodeId::gpu(1))
        );
    }

    #[test]
    #[should_panic(expected = "self-channel")]
    fn self_pair_panics() {
        let kx = KeyExchange::boot([1; 16]);
        let _ = kx.pair_key(NodeId::gpu(1), NodeId::gpu(1));
    }

    #[test]
    fn debug_does_not_leak_master() {
        let kx = KeyExchange::boot([0x5A; 16]);
        assert!(!format!("{kx:?}").contains("90")); // 0x5A
    }
}
