//! Replay-attack protection (paper §II-C).
//!
//! An attacker with physical access to the interconnect can resend an
//! earlier ciphertext together with its metadata. The defense is
//! two-sided:
//!
//! * The **sender** stores each outgoing message's `(MsgCTR, MsgMAC)` until
//!   the receiver's ACK echoes it back; a mismatched or unsolicited ACK
//!   indicates tampering on the return path.
//! * The **receiver** tracks the highest counter accepted from each sender;
//!   any message whose counter does not advance is a replay (counter-mode
//!   pads are never reused, so a legitimate sender never repeats one).

use crate::batching::MsgMac;
use mgpu_types::{DenseNodeMap, MgpuError, NodeId};

/// Sender-side outstanding-message table plus receiver-side freshness
/// tracking for one node.
///
/// # Examples
///
/// ```
/// use mgpu_secure::replay::ReplayGuard;
/// use mgpu_types::NodeId;
///
/// let mut guard = ReplayGuard::new();
/// let dst = NodeId::gpu(2);
/// guard.register_outstanding(dst, 0, [7; 8]);
/// // The receiver echoes the MAC back; freshness confirmed.
/// guard.accept_ack(dst, 0, [7; 8]).unwrap();
/// // A second, replayed ACK for the same counter is rejected.
/// assert!(guard.accept_ack(dst, 0, [7; 8]).is_err());
/// ```
#[derive(Debug, Default)]
pub struct ReplayGuard {
    /// Per-peer `(counter, MAC)` entries awaiting acknowledgement. The
    /// inner vectors stay small (bounded by the ACK window) and keep
    /// their capacity across entries, so the steady-state register/ack
    /// cycle allocates nothing.
    outstanding: DenseNodeMap<Vec<(u64, MsgMac)>>,
    outstanding_count: usize,
    /// Highest counter accepted from each sender.
    last_accepted: DenseNodeMap<u64>,
    peak_outstanding: usize,
    replays_detected: u64,
    ack_mismatches: u64,
}

impl ReplayGuard {
    /// Creates an empty guard.
    #[must_use]
    pub fn new() -> Self {
        ReplayGuard::default()
    }

    /// Records an outgoing message awaiting its ACK.
    pub fn register_outstanding(&mut self, dst: NodeId, ctr: u64, mac: MsgMac) {
        let entries = self.outstanding.get_or_insert_with(dst, Vec::new);
        match entries.iter_mut().find(|(c, _)| *c == ctr) {
            Some(entry) => entry.1 = mac,
            None => {
                entries.push((ctr, mac));
                self.outstanding_count += 1;
            }
        }
        self.peak_outstanding = self.peak_outstanding.max(self.outstanding_count);
    }

    /// Processes an ACK from `dst` echoing `(ctr, mac)`.
    ///
    /// # Errors
    ///
    /// * [`MgpuError::Protocol`] — no message with that counter is
    ///   outstanding (duplicate or forged ACK).
    /// * [`MgpuError::AuthenticationFailed`] — the echoed MAC does not
    ///   match what was sent (return-path tampering).
    pub fn accept_ack(&mut self, dst: NodeId, ctr: u64, mac: MsgMac) -> Result<(), MgpuError> {
        let entries = self.outstanding.get_mut(dst);
        let found = entries
            .as_ref()
            .and_then(|e| e.iter().position(|(c, _)| *c == ctr));
        match found {
            None => Err(MgpuError::Protocol(format!(
                "unsolicited ACK from {dst} for counter {ctr}"
            ))),
            Some(pos) => {
                let entries = entries.expect("position implies entries");
                if entries[pos].1 != mac {
                    // Leave it in place: the real ACK may still arrive.
                    self.ack_mismatches += 1;
                    return Err(MgpuError::AuthenticationFailed {
                        context: format!("ACK MAC mismatch from {dst} for counter {ctr}"),
                    });
                }
                entries.swap_remove(pos);
                self.outstanding_count -= 1;
                Ok(())
            }
        }
    }

    /// Checks an incoming message's counter for freshness and records it.
    ///
    /// Counters must strictly advance per sender (gaps are fine — the
    /// `Shared` scheme produces them — but repeats and regressions are
    /// replays).
    ///
    /// # Errors
    ///
    /// Returns [`MgpuError::ReplayDetected`] when the counter does not
    /// advance.
    pub fn check_fresh(&mut self, src: NodeId, ctr: u64) -> Result<(), MgpuError> {
        match self.last_accepted.get(src) {
            Some(&last) if ctr <= last => {
                self.replays_detected += 1;
                Err(MgpuError::ReplayDetected { counter: ctr })
            }
            _ => {
                self.last_accepted.insert(src, ctr);
                Ok(())
            }
        }
    }

    /// Messages currently awaiting acknowledgement.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding_count
    }

    /// High-water mark of the outstanding table (hardware sizing metric).
    #[must_use]
    pub fn peak_outstanding(&self) -> usize {
        self.peak_outstanding
    }

    /// Whether a message to `dst` with counter `ctr` is still awaiting its
    /// ACK — lets a sender observe that an ACK was dropped on the wire.
    #[must_use]
    pub fn is_outstanding(&self, dst: NodeId, ctr: u64) -> bool {
        self.outstanding
            .get(dst)
            .is_some_and(|entries| entries.iter().any(|(c, _)| *c == ctr))
    }

    /// Replays detected so far.
    #[must_use]
    pub fn replays_detected(&self) -> u64 {
        self.replays_detected
    }

    /// ACKs rejected for echoing a MAC that does not match the outstanding
    /// entry (return-path tampering detections).
    #[must_use]
    pub fn ack_mismatches(&self) -> u64 {
        self.ack_mismatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_roundtrip() {
        let mut g = ReplayGuard::new();
        let dst = NodeId::gpu(2);
        g.register_outstanding(dst, 5, [1; 8]);
        assert_eq!(g.outstanding(), 1);
        g.accept_ack(dst, 5, [1; 8]).unwrap();
        assert_eq!(g.outstanding(), 0);
    }

    #[test]
    fn mismatched_ack_mac_is_authentication_failure() {
        let mut g = ReplayGuard::new();
        let dst = NodeId::gpu(2);
        g.register_outstanding(dst, 5, [1; 8]);
        let err = g.accept_ack(dst, 5, [2; 8]).unwrap_err();
        assert!(matches!(err, MgpuError::AuthenticationFailed { .. }));
        // The entry survives for the genuine ACK.
        assert_eq!(g.outstanding(), 1);
        assert_eq!(g.ack_mismatches(), 1);
        assert!(g.is_outstanding(dst, 5));
        g.accept_ack(dst, 5, [1; 8]).unwrap();
        assert!(!g.is_outstanding(dst, 5));
    }

    #[test]
    fn unsolicited_ack_is_protocol_error() {
        let mut g = ReplayGuard::new();
        let err = g.accept_ack(NodeId::gpu(2), 9, [0; 8]).unwrap_err();
        assert!(matches!(err, MgpuError::Protocol(_)));
    }

    #[test]
    fn fresh_counters_advance() {
        let mut g = ReplayGuard::new();
        let src = NodeId::gpu(3);
        g.check_fresh(src, 0).unwrap();
        g.check_fresh(src, 1).unwrap();
        // Gaps are legal (Shared scheme skips counters).
        g.check_fresh(src, 10).unwrap();
    }

    #[test]
    fn replayed_counter_is_detected() {
        let mut g = ReplayGuard::new();
        let src = NodeId::gpu(3);
        g.check_fresh(src, 7).unwrap();
        assert_eq!(
            g.check_fresh(src, 7).unwrap_err(),
            MgpuError::ReplayDetected { counter: 7 }
        );
        assert_eq!(
            g.check_fresh(src, 3).unwrap_err(),
            MgpuError::ReplayDetected { counter: 3 }
        );
        assert_eq!(g.replays_detected(), 2);
    }

    #[test]
    fn freshness_is_per_sender() {
        let mut g = ReplayGuard::new();
        g.check_fresh(NodeId::gpu(1), 5).unwrap();
        // A different sender may legitimately use the same counter value.
        g.check_fresh(NodeId::gpu(2), 5).unwrap();
    }

    #[test]
    fn peak_outstanding_tracks_high_water() {
        let mut g = ReplayGuard::new();
        let dst = NodeId::gpu(2);
        for c in 0..10 {
            g.register_outstanding(dst, c, [0; 8]);
        }
        for c in 0..10 {
            g.accept_ack(dst, c, [0; 8]).unwrap();
        }
        assert_eq!(g.outstanding(), 0);
        assert_eq!(g.peak_outstanding(), 10);
    }
}
