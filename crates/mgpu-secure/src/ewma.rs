//! EWMA-based traffic monitoring and OTP buffer partitioning — the paper's
//! Formulas 1–4 (§IV-B).
//!
//! Every interval `T`, each node:
//!
//! 1. updates the **send-direction weight** `S_{i+1} = (1-α)·S_i +
//!    α·(SReq_i / (SReq_i + RReq_i))` (Formula 1),
//! 2. splits the total OTP buffer pool between directions:
//!    `SPad = Total·S`, `RPad = Total - SPad` (Formula 2),
//! 3. updates **per-peer weights** within each direction by the same EWMA
//!    with rate β (Formula 3), and
//! 4. assigns each peer its share `SPad^m = SPad·S^m` (Formula 4).
//!
//! The paper's formulas produce real numbers; buffers are discrete. We use
//! largest-remainder rounding so the integer allocation always conserves
//! the pool exactly — an invariant the property tests pin down.

use mgpu_types::NodeId;
use std::collections::BTreeMap;

/// Splits `total` units proportionally to `weights` using the
/// largest-remainder method. The result always sums to `total`.
///
/// Weights are sanitized before use: negative and **non-finite** values
/// (NaN, ±inf) are treated as zero. EWMA state can only go non-finite if a
/// caller feeds in a corrupted weight vector, but a metadata allocator must
/// not panic (or silently hand +inf the whole pool) on bad telemetry — it
/// degrades to ignoring the bad entry. If every weight sanitizes to zero
/// the split is as even as possible (earlier indices get the extras).
///
/// # Examples
///
/// ```
/// use mgpu_secure::ewma::partition;
///
/// assert_eq!(partition(10, &[0.5, 0.5]), vec![5, 5]);
/// assert_eq!(partition(10, &[0.74, 0.26]), vec![7, 3]);
/// assert_eq!(partition(7, &[1.0, 1.0, 1.0]).iter().sum::<u32>(), 7);
/// // Non-finite weights are ignored, not propagated.
/// assert_eq!(partition(8, &[f64::NAN, 1.0, f64::INFINITY]), vec![0, 8, 0]);
/// ```
#[must_use]
pub fn partition(total: u32, weights: &[f64]) -> Vec<u32> {
    if weights.is_empty() {
        return Vec::new();
    }
    let clamped: Vec<f64> = weights
        .iter()
        .map(|w| if w.is_finite() { w.max(0.0) } else { 0.0 })
        .collect();
    let sum: f64 = clamped.iter().sum();
    let quotas: Vec<f64> = if sum > 0.0 {
        clamped.iter().map(|w| f64::from(total) * w / sum).collect()
    } else {
        vec![f64::from(total) / weights.len() as f64; weights.len()]
    };
    let mut alloc: Vec<u32> = quotas.iter().map(|q| q.floor() as u32).collect();
    let assigned: u32 = alloc.iter().sum();
    let mut remainder_order: Vec<usize> = (0..weights.len()).collect();
    remainder_order.sort_by(|&a, &b| {
        let fa = quotas[a] - quotas[a].floor();
        let fb = quotas[b] - quotas[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    let mut leftover = total - assigned;
    for &i in &remainder_order {
        if leftover == 0 {
            break;
        }
        alloc[i] += 1;
        leftover -= 1;
    }
    alloc
}

/// The integer OTP buffer allocation produced at an interval boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Pads per peer in the send direction (Formula 4, `SPad^m`).
    pub send: BTreeMap<NodeId, u32>,
    /// Pads per peer in the receive direction (`RPad^m`).
    pub recv: BTreeMap<NodeId, u32>,
}

impl Allocation {
    /// Total pads allocated across both directions.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.send.values().sum::<u32>() + self.recv.values().sum::<u32>()
    }
}

/// Per-node EWMA monitor implementing the paper's Formulas 1–4.
///
/// # Examples
///
/// ```
/// use mgpu_secure::ewma::EwmaAllocator;
/// use mgpu_types::NodeId;
///
/// let peers = vec![NodeId::CPU, NodeId::gpu(2)];
/// let mut mon = EwmaAllocator::new(&peers, 0.9, 0.5);
/// // A send-heavy interval toward GPU2:
/// for _ in 0..90 { mon.observe_send(NodeId::gpu(2)); }
/// for _ in 0..10 { mon.observe_recv(NodeId::CPU); }
/// let alloc = mon.end_interval(32);
/// assert_eq!(alloc.total(), 32);
/// // The send direction won more than half the pool.
/// assert!(alloc.send.values().sum::<u32>() > 16);
/// ```
#[derive(Debug, Clone)]
pub struct EwmaAllocator {
    alpha: f64,
    beta: f64,
    peers: Vec<NodeId>,
    /// Send-direction weight `S_i` (Formula 1).
    s: f64,
    /// Per-peer send weights `S^m_i` (Formula 3).
    send_weights: Vec<f64>,
    /// Per-peer recv weights `R^m_i`.
    recv_weights: Vec<f64>,
    /// Interval counters `SReq^m_i` / `RReq^m_i`.
    send_counts: Vec<u64>,
    recv_counts: Vec<u64>,
    /// Guaranteed minimum pads per peer per direction.
    floor: u32,
    intervals: u64,
}

impl EwmaAllocator {
    /// Creates a monitor for a node with the given peers and EWMA rates.
    ///
    /// Initial weights are uniform: the send direction starts at 0.5 and
    /// each peer at `1 / peers` — matching the paper's even initial
    /// allocation "similar to the Private mechanism".
    ///
    /// An empty peer set is allowed (a single-node system has nobody to
    /// exchange pads with); `end_interval` then returns an empty
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the rates are outside `(0, 1]`.
    #[must_use]
    pub fn new(peers: &[NodeId], alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta in (0,1]");
        let n = peers.len();
        EwmaAllocator {
            alpha,
            beta,
            peers: peers.to_vec(),
            s: 0.5,
            send_weights: vec![1.0 / n as f64; n],
            recv_weights: vec![1.0 / n as f64; n],
            send_counts: vec![0; n],
            recv_counts: vec![0; n],
            floor: 0,
            intervals: 0,
        }
    }

    /// Sets a guaranteed minimum of `floor` pads per peer per direction;
    /// only the remainder of the pool is EWMA-partitioned. Proportional
    /// allocation alone over-concentrates: a pair with a small *share* of
    /// the traffic still receives full-size bursts, and a starved window
    /// serializes pad generation for the whole burst. (The stall cost of a
    /// burst is inversely proportional to window depth, so the optimal
    /// depth grows like the square root of a pair's share — a floor plus
    /// proportional flexible pool approximates that.)
    #[must_use]
    pub fn with_floor(mut self, floor: u32) -> Self {
        self.floor = floor;
        self
    }

    fn peer_index(&self, peer: NodeId) -> usize {
        self.peers
            .iter()
            .position(|&p| p == peer)
            .expect("peer registered with allocator")
    }

    /// Records one send request toward `peer` in the current interval.
    ///
    /// # Panics
    ///
    /// Panics if `peer` was not registered at construction.
    pub fn observe_send(&mut self, peer: NodeId) {
        let i = self.peer_index(peer);
        self.send_counts[i] += 1;
    }

    /// Records one receive request from `peer` in the current interval.
    ///
    /// # Panics
    ///
    /// Panics if `peer` was not registered at construction.
    pub fn observe_recv(&mut self, peer: NodeId) {
        let i = self.peer_index(peer);
        self.recv_counts[i] += 1;
    }

    /// Current send-direction weight `S_i`.
    #[must_use]
    pub fn send_weight(&self) -> f64 {
        self.s
    }

    /// Per-peer send weights `S^m_i` (Formula 3), in registration order.
    #[must_use]
    pub fn send_weights(&self) -> &[f64] {
        &self.send_weights
    }

    /// Per-peer recv weights `R^m_i`, in registration order.
    #[must_use]
    pub fn recv_weights(&self) -> &[f64] {
        &self.recv_weights
    }

    /// Peers in registration order (parallel to the weight slices).
    #[must_use]
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Number of completed intervals.
    #[must_use]
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Closes the current interval: applies Formulas 1 and 3, resets the
    /// counters, and returns the integer allocation of `total_buffers`
    /// (Formulas 2 and 4 with largest-remainder rounding, on the pool
    /// remaining above the per-peer floor).
    ///
    /// With no registered peers the allocation is trivially empty (and the
    /// interval still counts) — previously this divided by `2 * n == 0`.
    pub fn end_interval(&mut self, total_buffers: u32) -> Allocation {
        if self.peers.is_empty() {
            self.intervals += 1;
            return Allocation {
                send: BTreeMap::new(),
                recv: BTreeMap::new(),
            };
        }
        let send_total: u64 = self.send_counts.iter().sum();
        let recv_total: u64 = self.recv_counts.iter().sum();

        // Formula 1 — only meaningful when the interval saw any traffic.
        if send_total + recv_total > 0 {
            let measured = send_total as f64 / (send_total + recv_total) as f64;
            self.s = (1.0 - self.alpha) * self.s + self.alpha * measured;
        }

        // Formula 3 per direction — skipped for a direction with no
        // traffic (the measured fractions would be 0/0).
        if send_total > 0 {
            for (w, &c) in self.send_weights.iter_mut().zip(&self.send_counts) {
                let measured = c as f64 / send_total as f64;
                *w = (1.0 - self.beta) * *w + self.beta * measured;
            }
        }
        if recv_total > 0 {
            for (w, &c) in self.recv_weights.iter_mut().zip(&self.recv_counts) {
                let measured = c as f64 / recv_total as f64;
                *w = (1.0 - self.beta) * *w + self.beta * measured;
            }
        }

        self.send_counts.iter_mut().for_each(|c| *c = 0);
        self.recv_counts.iter_mut().for_each(|c| *c = 0);
        self.intervals += 1;

        // Reserve the floor, then apply Formula 2 (direction split) and
        // Formula 4 (per-peer split) to the flexible remainder.
        let n = self.peers.len() as u32;
        let floor = self.floor.min(total_buffers / (2 * n));
        let flexible = total_buffers - 2 * n * floor;
        let split = partition(flexible, &[self.s, 1.0 - self.s]);
        let (send_pool, recv_pool) = (split[0], split[1]);
        // Buffers are partitioned by the square root of the EWMA weights:
        // a pair's burst-drain stall scales inversely with its window
        // depth, so for bursts of similar size arriving with probability
        // w_m the expected stall Σ w_m / d_m is minimized by d_m ∝ √w_m.
        let send_sqrt: Vec<f64> = self
            .send_weights
            .iter()
            .map(|w| w.max(0.0).sqrt())
            .collect();
        let recv_sqrt: Vec<f64> = self
            .recv_weights
            .iter()
            .map(|w| w.max(0.0).sqrt())
            .collect();
        let send_alloc = partition(send_pool, &send_sqrt);
        let recv_alloc = partition(recv_pool, &recv_sqrt);

        Allocation {
            send: self
                .peers
                .iter()
                .copied()
                .zip(send_alloc.into_iter().map(|a| a + floor))
                .collect(),
            recv: self
                .peers
                .iter()
                .copied()
                .zip(recv_alloc.into_iter().map(|a| a + floor))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers() -> Vec<NodeId> {
        vec![NodeId::CPU, NodeId::gpu(2), NodeId::gpu(3), NodeId::gpu(4)]
    }

    #[test]
    fn partition_conserves_total() {
        assert_eq!(partition(32, &[0.25; 4]), vec![8, 8, 8, 8]);
        assert_eq!(partition(10, &[0.9, 0.1]), vec![9, 1]);
        assert_eq!(partition(0, &[0.5, 0.5]), vec![0, 0]);
        assert_eq!(partition(5, &[]), Vec::<u32>::new());
    }

    #[test]
    fn partition_handles_zero_weights() {
        assert_eq!(partition(6, &[0.0, 0.0, 0.0]), vec![2, 2, 2]);
        assert_eq!(partition(7, &[0.0, 0.0, 0.0]).iter().sum::<u32>(), 7);
        // Negative weights are clamped.
        assert_eq!(partition(4, &[-1.0, 1.0]), vec![0, 4]);
    }

    #[test]
    fn formula_1_hand_computed() {
        // S_0 = 0.5, α = 0.9; interval with 90 sends / 10 recvs:
        // S_1 = 0.1*0.5 + 0.9*0.9 = 0.86.
        let p = peers();
        let mut m = EwmaAllocator::new(&p, 0.9, 0.5);
        for _ in 0..90 {
            m.observe_send(NodeId::gpu(2));
        }
        for _ in 0..10 {
            m.observe_recv(NodeId::gpu(2));
        }
        m.end_interval(32);
        assert!((m.send_weight() - 0.86).abs() < 1e-12);
    }

    #[test]
    fn formula_3_hand_computed() {
        // β = 0.5, initial per-peer weight 0.25. Interval sends: all to
        // GPU2. New weight for GPU2 = 0.5*0.25 + 0.5*1.0 = 0.625; others
        // 0.5*0.25 = 0.125.
        let p = peers();
        let mut m = EwmaAllocator::new(&p, 0.9, 0.5);
        for _ in 0..40 {
            m.observe_send(NodeId::gpu(2));
        }
        let alloc = m.end_interval(1000);
        // S_1 = 0.1*0.5 + 0.9*1.0 = 0.95 -> send pool 950.
        let send_pool: u32 = alloc.send.values().sum();
        assert_eq!(send_pool, 950);
        // Buffers split by sqrt-weights: √0.625 / (√0.625 + 3·√0.125).
        let share = 0.625f64.sqrt() / (0.625f64.sqrt() + 3.0 * 0.125f64.sqrt());
        let expected = (950.0 * share).round() as u32;
        let got = alloc.send[&NodeId::gpu(2)];
        assert!(
            got.abs_diff(expected) <= 1,
            "got {got}, expected about {expected}"
        );
    }

    #[test]
    fn allocation_always_conserves_pool() {
        let p = peers();
        let mut m = EwmaAllocator::new(&p, 0.9, 0.5);
        for round in 0..50u64 {
            for (i, &peer) in p.iter().enumerate() {
                for _ in 0..(round * i as u64) % 17 {
                    m.observe_send(peer);
                }
                for _ in 0..(round + i as u64) % 5 {
                    m.observe_recv(peer);
                }
            }
            let alloc = m.end_interval(32);
            assert_eq!(alloc.total(), 32, "round {round}");
        }
        assert_eq!(m.intervals(), 50);
    }

    #[test]
    fn idle_interval_keeps_weights() {
        let p = peers();
        let mut m = EwmaAllocator::new(&p, 0.9, 0.5);
        let before = m.send_weight();
        let alloc = m.end_interval(32);
        assert_eq!(m.send_weight(), before);
        // Uniform weights -> even split of each direction's pool.
        assert_eq!(alloc.send[&NodeId::CPU], 4);
        assert_eq!(alloc.recv[&NodeId::gpu(4)], 4);
    }

    #[test]
    fn skewed_traffic_shifts_allocation_over_time() {
        let p = peers();
        let mut m = EwmaAllocator::new(&p, 0.9, 0.5);
        let mut last = None;
        for _ in 0..10 {
            for _ in 0..100 {
                m.observe_send(NodeId::gpu(3));
            }
            for _ in 0..10 {
                m.observe_recv(NodeId::CPU);
            }
            last = Some(m.end_interval(32));
        }
        let alloc = last.expect("ran intervals");
        // GPU3 dominates the send direction.
        let g3 = alloc.send[&NodeId::gpu(3)];
        for (&peer, &pads) in &alloc.send {
            if peer != NodeId::gpu(3) {
                assert!(g3 > pads, "GPU3 ({g3}) should beat {peer} ({pads})");
            }
        }
        // Receive pool is small but non-zero and concentrated on the CPU.
        let recv_pool: u32 = alloc.recv.values().sum();
        assert!(recv_pool < 8, "recv pool {recv_pool}");
    }

    #[test]
    fn weights_remain_normalized() {
        let p = peers();
        let mut m = EwmaAllocator::new(&p, 0.9, 0.5);
        for i in 0..20u64 {
            for _ in 0..(i % 7) {
                m.observe_send(p[(i % 4) as usize]);
            }
            for _ in 0..((i + 3) % 4) {
                m.observe_recv(p[((i + 1) % 4) as usize]);
            }
            m.end_interval(32);
            let ssum: f64 = m.send_weights.iter().sum();
            let rsum: f64 = m.recv_weights.iter().sum();
            assert!((ssum - 1.0).abs() < 1e-9, "send weights sum {ssum}");
            assert!((rsum - 1.0).abs() < 1e-9, "recv weights sum {rsum}");
        }
    }

    #[test]
    fn partition_sanitizes_non_finite_weights() {
        // NaN and ±inf act like zero weight; the finite entries share.
        assert_eq!(partition(8, &[f64::NAN, 1.0, f64::INFINITY]), vec![0, 8, 0]);
        assert_eq!(partition(6, &[f64::NEG_INFINITY, 1.0, 1.0]), vec![0, 3, 3]);
        // All non-finite -> even split, still conserved.
        assert_eq!(
            partition(7, &[f64::NAN, f64::INFINITY]).iter().sum::<u32>(),
            7
        );
    }

    #[test]
    fn empty_peers_trivial_allocation() {
        let mut m = EwmaAllocator::new(&[], 0.9, 0.5).with_floor(2);
        let alloc = m.end_interval(32);
        assert!(alloc.send.is_empty());
        assert!(alloc.recv.is_empty());
        assert_eq!(alloc.total(), 0);
        assert_eq!(m.intervals(), 1);
    }

    #[test]
    fn single_peer_gets_whole_pool() {
        let mut m = EwmaAllocator::new(&[NodeId::gpu(2)], 0.9, 0.5);
        for _ in 0..10 {
            m.observe_send(NodeId::gpu(2));
        }
        let alloc = m.end_interval(32);
        assert_eq!(alloc.total(), 32);
        assert_eq!(
            alloc.send[&NodeId::gpu(2)] + alloc.recv[&NodeId::gpu(2)],
            32
        );
    }

    #[test]
    fn floor_clamped_when_pool_smaller_than_2n() {
        // 4 peers, floor 8 -> full floors would need 64 pads; only 6
        // available, so the floor clamps to 6 / 8 = 0 and the whole pool
        // is EWMA-partitioned. The pool is still conserved exactly.
        let p = peers();
        let mut m = EwmaAllocator::new(&p, 0.9, 0.5).with_floor(8);
        let alloc = m.end_interval(6);
        assert_eq!(alloc.total(), 6);
        // Clamped-floor boundary: exactly 2n pads -> floor 1 each.
        let mut m = EwmaAllocator::new(&p, 0.9, 0.5).with_floor(8);
        let alloc = m.end_interval(8);
        assert_eq!(alloc.total(), 8);
        assert!(alloc.send.values().all(|&a| a >= 1));
        assert!(alloc.recv.values().all(|&a| a >= 1));
    }

    #[test]
    #[should_panic(expected = "registered")]
    fn unknown_peer_panics() {
        let mut m = EwmaAllocator::new(&[NodeId::CPU], 0.9, 0.5);
        m.observe_send(NodeId::gpu(7));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = EwmaAllocator::new(&[NodeId::CPU], 0.0, 0.5);
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn partition_sum_invariant(total in 0u32..500,
                                       weights in proptest::collection::vec(0.0f64..10.0, 1..10)) {
                let alloc = partition(total, &weights);
                prop_assert_eq!(alloc.iter().sum::<u32>(), total);
                prop_assert_eq!(alloc.len(), weights.len());
            }

            #[test]
            fn partition_conserves_with_nonfinite_weights(
                total in 0u32..500,
                tagged in proptest::collection::vec((0u8..5, -10.0f64..10.0), 1..10)) {
                // The vendored proptest stand-in has no prop_oneof, so
                // non-finite values are injected by mapping a tag.
                let weights: Vec<f64> = tagged
                    .into_iter()
                    .map(|(tag, w)| match tag {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        _ => w,
                    })
                    .collect();
                let alloc = partition(total, &weights);
                prop_assert_eq!(alloc.iter().sum::<u32>(), total);
                prop_assert_eq!(alloc.len(), weights.len());
            }

            #[test]
            fn allocator_conserves_under_arbitrary_traffic(
                total in 1u32..256,
                traffic in proptest::collection::vec((0usize..4, any::<bool>()), 0..200)) {
                let p = vec![NodeId::CPU, NodeId::gpu(2), NodeId::gpu(3), NodeId::gpu(4)];
                let mut m = EwmaAllocator::new(&p, 0.9, 0.5);
                for (peer_idx, is_send) in traffic {
                    if is_send {
                        m.observe_send(p[peer_idx]);
                    } else {
                        m.observe_recv(p[peer_idx]);
                    }
                }
                let alloc = m.end_interval(total);
                prop_assert_eq!(alloc.total(), total);
            }
        }
    }
}
