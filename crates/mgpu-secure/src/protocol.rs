//! Wire protocol and security-metadata size model.
//!
//! Every protected 64 B block transfer carries security metadata in
//! addition to the ciphertext: the message counter (`MsgCTR`), the message
//! authentication code (`MsgMAC`), the sender ID, and — for replay
//! protection — an acknowledgement flowing back to the sender (paper
//! §II-C). The paper measures that this metadata inflates interconnect
//! traffic by ~36.5 % on average (Fig. 12); the batching scheme amortizes
//! the MAC and ACK over a whole batch (§IV-C).
//!
//! This module centralizes all wire sizes so the traffic accounting in the
//! simulator and the analytic results in the experiments agree by
//! construction.

use mgpu_types::ByteSize;

/// Byte sizes of every message component on the wire.
///
/// # Examples
///
/// ```
/// use mgpu_secure::protocol::WireFormat;
///
/// let w = WireFormat::default();
/// // Unbatched: every 64 B block pays counter + MAC + sender ID forward
/// // and one ACK backward.
/// assert_eq!(w.unbatched_forward_metadata().as_u64(), 17);
/// assert_eq!(w.ack_message().as_u64(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFormat {
    /// Payload of one direct-access block (a cacheline).
    pub block: ByteSize,
    /// Baseline message header (address, type, routing) present even in an
    /// unsecure system.
    pub header: ByteSize,
    /// Size of a remote-read *request* packet (header only, no payload).
    pub request: ByteSize,
    /// `MsgCTR` travelling with each protected block.
    pub msg_ctr: ByteSize,
    /// `MsgMAC` — 8 B per the paper's MsgMAC storage sizing (§IV-D).
    pub msg_mac: ByteSize,
    /// Sender identifier.
    pub sender_id: ByteSize,
    /// The ACK message used for replay protection: echoed MAC (or counter)
    /// plus a routing header.
    pub ack: ByteSize,
    /// The batch-length field prepended to the first block of a batch
    /// (paper: 1 B).
    pub batch_len: ByteSize,
}

impl Default for WireFormat {
    fn default() -> Self {
        WireFormat {
            block: ByteSize::CACHELINE,
            header: ByteSize::new(8),
            request: ByteSize::new(16),
            msg_ctr: ByteSize::new(8),
            msg_mac: ByteSize::new(8),
            sender_id: ByteSize::new(1),
            ack: ByteSize::new(16),
            batch_len: ByteSize::new(1),
        }
    }
}

impl WireFormat {
    /// Forward-direction security metadata accompanying one *unbatched*
    /// block: `MsgCTR + MsgMAC + senderID`.
    #[must_use]
    pub fn unbatched_forward_metadata(&self) -> ByteSize {
        self.msg_ctr + self.msg_mac + self.sender_id
    }

    /// The ACK message flowing back per unbatched block (or per batch when
    /// batching is enabled).
    #[must_use]
    pub fn ack_message(&self) -> ByteSize {
        self.ack
    }

    /// Forward metadata for block `index` (0-based) of a batch of `n`
    /// blocks: decryption metadata (`MsgCTR + senderID`) travels with every
    /// block; the batched MAC travels once (modeled on the last block); the
    /// 1 B length field travels on the first block.
    #[must_use]
    pub fn batched_forward_metadata(&self, index: u32, n: u32) -> ByteSize {
        assert!(n > 0 && index < n, "index {index} out of batch of {n}");
        let mut meta = self.msg_ctr + self.sender_id;
        if index == 0 {
            meta += self.batch_len;
        }
        if index == n - 1 {
            meta += self.msg_mac;
        }
        meta
    }

    /// Total bytes moved by one unbatched protected block transfer
    /// (both directions, including the ACK).
    #[must_use]
    pub fn unbatched_total(&self) -> ByteSize {
        self.header + self.block + self.unbatched_forward_metadata() + self.ack_message()
    }

    /// Total bytes moved by a batch of `n` protected blocks
    /// (both directions, one ACK).
    #[must_use]
    pub fn batched_total(&self, n: u32) -> ByteSize {
        assert!(n > 0, "batch must contain at least one block");
        let per_block = self.header + self.block + self.msg_ctr + self.sender_id;
        per_block * u64::from(n) + self.batch_len + self.msg_mac + self.ack_message()
    }

    /// Bytes moved by `n` blocks in an unsecure system (no metadata, no
    /// ACK).
    #[must_use]
    pub fn unsecure_total(&self, n: u32) -> ByteSize {
        (self.header + self.block) * u64::from(n)
    }

    /// Metadata overhead ratio of the unbatched protocol relative to the
    /// unsecure transfer of the same payload: `secure / unsecure`.
    #[must_use]
    pub fn unbatched_overhead_ratio(&self) -> f64 {
        self.unbatched_total().as_u64() as f64 / self.unsecure_total(1).as_u64() as f64
    }

    /// Metadata overhead ratio of a batch of `n` blocks.
    #[must_use]
    pub fn batched_overhead_ratio(&self, n: u32) -> f64 {
        self.batched_total(n).as_u64() as f64 / self.unsecure_total(n).as_u64() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes_match_paper_components() {
        let w = WireFormat::default();
        assert_eq!(w.block, ByteSize::CACHELINE);
        assert_eq!(w.msg_ctr.as_u64(), 8); // 64-bit counter
        assert_eq!(w.msg_mac.as_u64(), 8); // paper §IV-D: 8 B MsgMAC
        assert_eq!(w.sender_id.as_u64(), 1);
        assert_eq!(w.batch_len.as_u64(), 1); // paper §IV-C: 1 B length
    }

    #[test]
    fn unbatched_overhead_lands_near_paper_average() {
        // Paper Fig. 12: security metadata adds ~36.5 % traffic on average.
        // Our default format: (72 + 17 + 16) / 72 = 1.458 per fully-ACKed
        // block; mixed with page-migration traffic in the system model the
        // average lands in the mid-30s. The per-block ceiling must be in a
        // plausible band.
        let w = WireFormat::default();
        let ratio = w.unbatched_overhead_ratio();
        assert!(ratio > 1.30 && ratio < 1.50, "ratio = {ratio}");
    }

    #[test]
    fn batching_amortizes_mac_and_ack() {
        let w = WireFormat::default();
        let unbatched_16 = w.unbatched_total().as_u64() * 16;
        let batched_16 = w.batched_total(16).as_u64();
        // Batching saves 15 MACs and 15 ACKs, costs 1 B length field.
        assert_eq!(
            unbatched_16 - batched_16,
            15 * (w.msg_mac.as_u64() + w.ack.as_u64()) - w.batch_len.as_u64()
        );
        assert!(w.batched_overhead_ratio(16) < w.unbatched_overhead_ratio());
    }

    #[test]
    fn batched_metadata_per_block_positions() {
        let w = WireFormat::default();
        // First block: ctr + id + length.
        assert_eq!(w.batched_forward_metadata(0, 16).as_u64(), 8 + 1 + 1);
        // Middle block: ctr + id.
        assert_eq!(w.batched_forward_metadata(7, 16).as_u64(), 9);
        // Last block: ctr + id + MAC.
        assert_eq!(w.batched_forward_metadata(15, 16).as_u64(), 9 + 8);
        // Batch of one pays everything at once.
        assert_eq!(w.batched_forward_metadata(0, 1).as_u64(), 9 + 1 + 8);
    }

    #[test]
    fn batched_total_equals_sum_of_parts() {
        let w = WireFormat::default();
        for n in [1u32, 2, 16, 64] {
            let sum: u64 = (0..n)
                .map(|i| (w.header + w.block + w.batched_forward_metadata(i, n)).as_u64())
                .sum::<u64>()
                + w.ack_message().as_u64();
            assert_eq!(sum, w.batched_total(n).as_u64(), "n = {n}");
        }
    }

    #[test]
    fn page_migration_example_from_paper() {
        // Paper §IV-C: a 4 KB page is 64 blocks; conventional sends 64 sets
        // of metadata + 64 ACKs, batched sends one MAC + one ACK.
        let w = WireFormat::default();
        let conventional = w.unbatched_total().as_u64() * 64;
        let batched = w.batched_total(64).as_u64();
        let saved = conventional - batched;
        assert_eq!(saved, 63 * (8 + 16) - 1);
    }

    #[test]
    #[should_panic(expected = "out of batch")]
    fn out_of_range_index_panics() {
        let w = WireFormat::default();
        let _ = w.batched_forward_metadata(16, 16);
    }

    #[test]
    fn overhead_ratio_monotonically_improves_with_batch_size() {
        let w = WireFormat::default();
        let mut prev = w.batched_overhead_ratio(1);
        for n in [2u32, 4, 8, 16, 32, 64] {
            let r = w.batched_overhead_ratio(n);
            assert!(r < prev, "n = {n}: {r} >= {prev}");
            prev = r;
        }
        // Asymptote: per-block decryption metadata only (9 B / 72 B).
        assert!(prev > 1.0 + 9.0 / 72.0 - 1e-9);
    }
}
