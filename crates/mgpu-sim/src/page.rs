//! Access-counter-based page migration policy.
//!
//! The paper adopts "an access counter-based page migration policy, similar
//! to the approach used in NVIDIA Volta GPUs" (§V-A): a remote page is
//! migrated to the accessing GPU once its access count crosses a threshold;
//! below the threshold, accesses are serviced as cacheline-granularity
//! direct block transfers. Migration moves the whole 4 KB page through the
//! same (secure) channel and remaps it locally.

use mgpu_types::NodeId;
use std::collections::HashMap;

/// Size of a migratable page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// The decision the policy makes for one remote access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationDecision {
    /// Service this access as a 64 B direct block transfer.
    DirectAccess,
    /// Threshold reached: migrate the 4 KB page to the accessor, then
    /// service locally.
    Migrate,
    /// The page is already local to the accessor (after a migration).
    Local,
}

/// Tracks page residency and per-(page, accessor) access counters.
///
/// # Examples
///
/// ```
/// use mgpu_sim::page::{MigrationDecision, PageTracker};
/// use mgpu_types::NodeId;
///
/// let mut tracker = PageTracker::new(3);
/// let gpu1 = NodeId::gpu(1);
/// let gpu2 = NodeId::gpu(2);
/// // Page 0x5000 starts on GPU2; GPU1 touches it repeatedly.
/// tracker.set_home(0x5000, gpu2);
/// assert_eq!(tracker.on_access(0x5000, gpu1), MigrationDecision::DirectAccess);
/// assert_eq!(tracker.on_access(0x5000, gpu1), MigrationDecision::DirectAccess);
/// assert_eq!(tracker.on_access(0x5000, gpu1), MigrationDecision::Migrate);
/// assert_eq!(tracker.on_access(0x5000, gpu1), MigrationDecision::Local);
/// ```
#[derive(Debug, Clone)]
pub struct PageTracker {
    threshold: u32,
    /// Current home node per page base address.
    home: HashMap<u64, NodeId>,
    /// Access counts per (page, accessor).
    counters: HashMap<(u64, NodeId), u32>,
    migrations: u64,
}

impl PageTracker {
    /// Creates a tracker that migrates a page on its `threshold`-th remote
    /// access by the same node.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    #[must_use]
    pub fn new(threshold: u32) -> Self {
        assert!(threshold > 0, "migration threshold must be >= 1");
        PageTracker {
            threshold,
            home: HashMap::new(),
            counters: HashMap::new(),
            migrations: 0,
        }
    }

    /// Aligns an address down to its page base.
    #[must_use]
    pub fn page_base(addr: u64) -> u64 {
        addr & !(PAGE_SIZE - 1)
    }

    /// Declares `node` the home of the page containing `addr`.
    pub fn set_home(&mut self, addr: u64, node: NodeId) {
        self.home.insert(Self::page_base(addr), node);
    }

    /// Current home of the page containing `addr`, if known.
    #[must_use]
    pub fn home_of(&self, addr: u64) -> Option<NodeId> {
        self.home.get(&Self::page_base(addr)).copied()
    }

    /// Records an access by `accessor` to the page containing `addr` and
    /// returns the policy decision. A [`MigrationDecision::Migrate`] result
    /// updates residency immediately (the caller models the transfer cost).
    pub fn on_access(&mut self, addr: u64, accessor: NodeId) -> MigrationDecision {
        let page = Self::page_base(addr);
        let home = *self.home.entry(page).or_insert(accessor);
        if home == accessor {
            return MigrationDecision::Local;
        }
        let count = self.counters.entry((page, accessor)).or_insert(0);
        *count += 1;
        if *count >= self.threshold {
            self.home.insert(page, accessor);
            // Reset counters for this page: a fresh placement.
            self.counters.retain(|(p, _), _| *p != page);
            self.migrations += 1;
            MigrationDecision::Migrate
        } else {
            MigrationDecision::DirectAccess
        }
    }

    /// Total migrations performed.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_alignment() {
        assert_eq!(PageTracker::page_base(0), 0);
        assert_eq!(PageTracker::page_base(4095), 0);
        assert_eq!(PageTracker::page_base(4096), 4096);
        assert_eq!(PageTracker::page_base(0x5A3F), 0x5000);
    }

    #[test]
    fn local_access_never_migrates() {
        let mut t = PageTracker::new(1);
        let g = NodeId::gpu(1);
        t.set_home(0x1000, g);
        for _ in 0..10 {
            assert_eq!(t.on_access(0x1000, g), MigrationDecision::Local);
        }
        assert_eq!(t.migrations(), 0);
    }

    #[test]
    fn first_toucher_becomes_home() {
        let mut t = PageTracker::new(2);
        let g = NodeId::gpu(3);
        assert_eq!(t.on_access(0x9000, g), MigrationDecision::Local);
        assert_eq!(t.home_of(0x9000), Some(g));
    }

    #[test]
    fn migration_after_threshold() {
        let mut t = PageTracker::new(3);
        let owner = NodeId::gpu(1);
        let remote = NodeId::gpu(2);
        t.set_home(0x2000, owner);
        assert_eq!(t.on_access(0x2000, remote), MigrationDecision::DirectAccess);
        assert_eq!(t.on_access(0x2FFF, remote), MigrationDecision::DirectAccess);
        assert_eq!(t.on_access(0x2800, remote), MigrationDecision::Migrate);
        assert_eq!(t.home_of(0x2000), Some(remote));
        assert_eq!(t.migrations(), 1);
        // Original owner is now remote and must count up again.
        assert_eq!(t.on_access(0x2000, owner), MigrationDecision::DirectAccess);
    }

    #[test]
    fn counters_are_per_accessor() {
        let mut t = PageTracker::new(3);
        t.set_home(0x2000, NodeId::CPU);
        let a = NodeId::gpu(1);
        let b = NodeId::gpu(2);
        assert_eq!(t.on_access(0x2000, a), MigrationDecision::DirectAccess);
        assert_eq!(t.on_access(0x2000, b), MigrationDecision::DirectAccess);
        assert_eq!(t.on_access(0x2000, a), MigrationDecision::DirectAccess);
        assert_eq!(t.on_access(0x2000, b), MigrationDecision::DirectAccess);
        // a reaches 3 first.
        assert_eq!(t.on_access(0x2000, a), MigrationDecision::Migrate);
    }

    #[test]
    fn different_pages_are_independent() {
        let mut t = PageTracker::new(2);
        t.set_home(0x1000, NodeId::CPU);
        t.set_home(0x2000, NodeId::CPU);
        let g = NodeId::gpu(1);
        assert_eq!(t.on_access(0x1000, g), MigrationDecision::DirectAccess);
        assert_eq!(t.on_access(0x2000, g), MigrationDecision::DirectAccess);
        assert_eq!(t.on_access(0x1000, g), MigrationDecision::Migrate);
        // 0x2000 still below threshold for a second access... now at 2.
        assert_eq!(t.on_access(0x2000, g), MigrationDecision::Migrate);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_threshold_panics() {
        let _ = PageTracker::new(0);
    }
}
