//! Static route computation over the configured fabric shape.
//!
//! A [`RoutingTable`] maps every directed node pair to the sequence of
//! [`Waypoint`]s its messages cross. Routes are computed once at
//! construction (the fabrics are static), so the hot transmit path is a
//! table lookup. The three shapes:
//!
//! * **Fully connected** — every pair is one direct hop (the paper's
//!   evaluated system).
//! * **Ring** — GPUs forward around the shorter arc through intermediate
//!   GPUs; ties break toward ascending indices so routes stay
//!   deterministic.
//! * **Switch** — GPUs attach in `radix`-sized groups to leaf switches;
//!   leaves hang off a root switch when there is more than one leaf.
//!
//! The CPU keeps a direct PCIe link to every GPU in all shapes: host
//! traffic never transits the GPU fabric, matching real systems where the
//! host bus is separate from NVLink.

use mgpu_types::{NodeId, PairId, PairTable, TopologyKind};

/// One stop on a route: either an endpoint/forwarding node or a switch.
///
/// Switches are fabric-internal: they forward ciphertext but are never a
/// message source or destination, and — deliberately — never hold keys.
/// End-to-end encryption means a compromised switch sees only ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Waypoint {
    /// A processor (CPU or GPU).
    Node(NodeId),
    /// A switch, numbered `0..switch_count`; when a root switch exists it
    /// has the highest number.
    Switch(u16),
}

impl core::fmt::Display for Waypoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Waypoint::Node(n) => write!(f, "{n}"),
            Waypoint::Switch(s) => write!(f, "SW{s}"),
        }
    }
}

/// Precomputed routes for every directed pair of a system.
///
/// # Examples
///
/// ```
/// use mgpu_sim::routing::{RoutingTable, Waypoint};
/// use mgpu_types::{NodeId, PairId, TopologyKind};
///
/// let table = RoutingTable::new(TopologyKind::Ring, 4);
/// let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(3));
/// // GPU1 -> GPU2 -> GPU3: two hops around the ring.
/// assert_eq!(table.hops(pair), 2);
/// assert_eq!(table.route(pair)[1], Waypoint::Node(NodeId::gpu(2)));
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    routes: PairTable<Vec<Waypoint>>,
    switch_count: u16,
    kind: TopologyKind,
}

impl RoutingTable {
    /// Computes routes for `kind` over a system with `gpu_count` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if the topology fails [`TopologyKind::validate`] for
    /// `gpu_count`.
    #[must_use]
    pub fn new(kind: TopologyKind, gpu_count: u16) -> Self {
        kind.validate(gpu_count)
            .expect("topology valid for gpu_count");
        let mut routes = PairTable::new();
        for src in NodeId::all(gpu_count) {
            for dst in src.peers(gpu_count) {
                let pair = PairId::new(src, dst);
                routes.insert(pair, compute_route(kind, gpu_count, src, dst));
            }
        }
        let switch_count = match kind {
            TopologyKind::Switch { radix } => {
                let leaves = gpu_count.div_ceil(radix);
                if leaves > 1 {
                    leaves + 1 // plus the root
                } else {
                    1
                }
            }
            _ => 0,
        };
        RoutingTable {
            routes,
            switch_count,
            kind,
        }
    }

    /// The full path for `pair`, endpoints included
    /// (`route[0] == src`, `route.last() == dst`).
    ///
    /// # Panics
    ///
    /// Panics if `pair` references a node outside the system.
    #[must_use]
    pub fn route(&self, pair: PairId) -> &[Waypoint] {
        self.routes.get(pair).expect("pair within system")
    }

    /// Number of links `pair`'s messages cross (`route.len() - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `pair` references a node outside the system.
    #[must_use]
    pub fn hops(&self, pair: PairId) -> usize {
        self.route(pair).len() - 1
    }

    /// The next waypoint after position `at` on `pair`'s route — the
    /// next-hop table view of the precomputed path.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is outside the system or `at` is past the
    /// destination.
    #[must_use]
    pub fn next_hop(&self, pair: PairId, at: usize) -> Waypoint {
        self.route(pair)[at + 1]
    }

    /// Switches instantiated by this fabric (0 outside `Switch`).
    #[must_use]
    pub fn switch_count(&self) -> u16 {
        self.switch_count
    }

    /// The shape these routes were computed for.
    #[must_use]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }
}

/// Assignment of every simulated resource owner — nodes and switches — to
/// one of `shards` worker shards, for conservative parallel execution.
///
/// Nodes are split into *contiguous* index ranges (CPU first): contiguous
/// assignment means iterating shards in order and each shard's nodes in
/// order visits nodes in global ascending order, which is what keeps
/// root-event creation order identical to the single-thread engine. A
/// switch is co-located with the first GPU attached to it (the root switch
/// with shard 0), so same-leaf traffic tends to stay shard-local.
///
/// # Examples
///
/// ```
/// use mgpu_sim::routing::{RoutingTable, ShardMap};
/// use mgpu_types::{NodeId, TopologyKind};
///
/// let table = RoutingTable::new(TopologyKind::Switch { radix: 4 }, 8);
/// let map = ShardMap::new(&table, 8, 2);
/// assert_eq!(map.of_node(NodeId::CPU), 0);
/// assert_eq!(map.of_node(NodeId::gpu(8)), 1);
/// // Leaf 1 serves GPUs 5..=8, all on shard 1.
/// assert_eq!(map.of_switch(1), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShardMap {
    node_shard: Vec<u16>,
    switch_shard: Vec<u16>,
    nodes_of: Vec<Vec<NodeId>>,
}

impl ShardMap {
    /// Partitions the `gpu_count + 1` nodes (and `table`'s switches) of a
    /// system across `shards` workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds the node count (an empty
    /// shard would deadlock nothing but serves nothing).
    #[must_use]
    pub fn new(table: &RoutingTable, gpu_count: u16, shards: u16) -> Self {
        let nodes = gpu_count + 1;
        assert!(shards >= 1, "at least one shard");
        assert!(
            shards <= nodes,
            "more shards ({shards}) than nodes ({nodes})"
        );
        // Contiguous balanced split: the first `extra` shards take one
        // node more than the rest.
        let base = nodes / shards;
        let extra = nodes % shards;
        let mut node_shard = Vec::with_capacity(usize::from(nodes));
        let mut nodes_of = vec![Vec::new(); usize::from(shards)];
        for s in 0..shards {
            let take = base + u16::from(s < extra);
            for _ in 0..take {
                let raw = node_shard.len() as u16;
                node_shard.push(s);
                nodes_of[usize::from(s)].push(NodeId::from_raw(raw));
            }
        }
        let switch_shard = (0..table.switch_count())
            .map(|sw| match table.kind() {
                TopologyKind::Switch { radix } => {
                    let leaves = gpu_count.div_ceil(radix);
                    if table.switch_count() == leaves + 1 && sw == leaves {
                        0 // the root switch rides with shard 0
                    } else {
                        node_shard[usize::from(sw * radix + 1)]
                    }
                }
                _ => 0,
            })
            .collect();
        ShardMap {
            node_shard,
            switch_shard,
            nodes_of,
        }
    }

    /// Number of shards in the partition.
    #[must_use]
    pub fn shards(&self) -> u16 {
        self.nodes_of.len() as u16
    }

    /// The shard owning `node`'s state (NIC, pacer, HBM, fabric ports).
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the system.
    #[must_use]
    pub fn of_node(&self, node: NodeId) -> u16 {
        self.node_shard[usize::from(node.raw())]
    }

    /// The shard owning switch `sw`'s ports.
    ///
    /// # Panics
    ///
    /// Panics if `sw` is outside the fabric.
    #[must_use]
    pub fn of_switch(&self, sw: u16) -> u16 {
        self.switch_shard[usize::from(sw)]
    }

    /// The shard owning a route waypoint.
    ///
    /// # Panics
    ///
    /// Panics if the waypoint is outside the system.
    #[must_use]
    pub fn of_waypoint(&self, w: Waypoint) -> u16 {
        match w {
            Waypoint::Node(n) => self.of_node(n),
            Waypoint::Switch(s) => self.of_switch(s),
        }
    }

    /// The nodes owned by `shard`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn nodes_of(&self, shard: u16) -> &[NodeId] {
        &self.nodes_of[usize::from(shard)]
    }
}

/// The leaf switch a GPU attaches to (GPU indices are 1-based).
fn leaf_of(gpu_index: u16, radix: u16) -> u16 {
    (gpu_index - 1) / radix
}

fn compute_route(kind: TopologyKind, gpu_count: u16, src: NodeId, dst: NodeId) -> Vec<Waypoint> {
    // Host traffic always takes the direct PCIe link.
    if src.is_cpu() || dst.is_cpu() {
        return vec![Waypoint::Node(src), Waypoint::Node(dst)];
    }
    match kind {
        TopologyKind::FullyConnected => vec![Waypoint::Node(src), Waypoint::Node(dst)],
        TopologyKind::Ring => {
            let n = gpu_count;
            let s = src.gpu_index().expect("src is a gpu") - 1;
            let d = dst.gpu_index().expect("dst is a gpu") - 1;
            // Shorter arc wins; a tie goes the ascending (clockwise) way.
            let cw = (d + n - s) % n;
            let ccw = n - cw;
            let (step, len) = if cw <= ccw { (1, cw) } else { (n - 1, ccw) };
            let mut route = Vec::with_capacity(usize::from(len) + 1);
            let mut at = s;
            route.push(Waypoint::Node(src));
            for _ in 0..len {
                at = (at + step) % n;
                route.push(Waypoint::Node(NodeId::gpu(at + 1)));
            }
            route
        }
        TopologyKind::Switch { radix } => {
            let s = src.gpu_index().expect("src is a gpu");
            let d = dst.gpu_index().expect("dst is a gpu");
            let (src_leaf, dst_leaf) = (leaf_of(s, radix), leaf_of(d, radix));
            let leaves = gpu_count.div_ceil(radix);
            let mut route = vec![Waypoint::Node(src), Waypoint::Switch(src_leaf)];
            if src_leaf != dst_leaf {
                route.push(Waypoint::Switch(leaves)); // the root
                route.push(Waypoint::Switch(dst_leaf));
            }
            route.push(Waypoint::Node(dst));
            route
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(i: u16) -> Waypoint {
        Waypoint::Node(NodeId::gpu(i))
    }

    #[test]
    fn fully_connected_is_single_hop_everywhere() {
        let t = RoutingTable::new(TopologyKind::FullyConnected, 4);
        for src in NodeId::all(4) {
            for dst in src.peers(4) {
                assert_eq!(t.hops(PairId::new(src, dst)), 1);
            }
        }
        assert_eq!(t.switch_count(), 0);
    }

    #[test]
    fn ring_takes_the_shorter_arc() {
        let t = RoutingTable::new(TopologyKind::Ring, 8);
        // Adjacent: one hop.
        assert_eq!(t.hops(PairId::new(NodeId::gpu(1), NodeId::gpu(2))), 1);
        // Wrap-around adjacency: GPU8 -> GPU1 directly.
        assert_eq!(t.hops(PairId::new(NodeId::gpu(8), NodeId::gpu(1))), 1);
        // Two steps the short way.
        assert_eq!(
            t.route(PairId::new(NodeId::gpu(1), NodeId::gpu(7))),
            &[gpu(1), gpu(8), gpu(7)]
        );
        // Antipodal tie breaks toward ascending indices.
        assert_eq!(
            t.route(PairId::new(NodeId::gpu(1), NodeId::gpu(5))),
            &[gpu(1), gpu(2), gpu(3), gpu(4), gpu(5)]
        );
    }

    #[test]
    fn ring_keeps_cpu_direct() {
        let t = RoutingTable::new(TopologyKind::Ring, 8);
        for g in 1..=8 {
            assert_eq!(t.hops(PairId::new(NodeId::CPU, NodeId::gpu(g))), 1);
            assert_eq!(t.hops(PairId::new(NodeId::gpu(g), NodeId::CPU)), 1);
        }
    }

    #[test]
    fn switch_routes_cross_leaf_and_root() {
        let t = RoutingTable::new(TopologyKind::Switch { radix: 4 }, 8);
        assert_eq!(t.switch_count(), 3); // two leaves + root
                                         // Same leaf: src -> leaf -> dst.
        assert_eq!(
            t.route(PairId::new(NodeId::gpu(1), NodeId::gpu(2))),
            &[gpu(1), Waypoint::Switch(0), gpu(2)]
        );
        // Different leaves: src -> leaf -> root -> leaf' -> dst.
        assert_eq!(
            t.route(PairId::new(NodeId::gpu(1), NodeId::gpu(5))),
            &[
                gpu(1),
                Waypoint::Switch(0),
                Waypoint::Switch(2),
                Waypoint::Switch(1),
                gpu(5)
            ]
        );
    }

    #[test]
    fn single_leaf_switch_has_no_root() {
        let t = RoutingTable::new(TopologyKind::Switch { radix: 4 }, 4);
        assert_eq!(t.switch_count(), 1);
        assert_eq!(
            t.route(PairId::new(NodeId::gpu(1), NodeId::gpu(4))),
            &[gpu(1), Waypoint::Switch(0), gpu(4)]
        );
    }

    #[test]
    fn next_hop_walks_the_route() {
        let t = RoutingTable::new(TopologyKind::Ring, 6);
        let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(3));
        assert_eq!(t.next_hop(pair, 0), gpu(2));
        assert_eq!(t.next_hop(pair, 1), gpu(3));
    }

    #[test]
    fn waypoint_display() {
        assert_eq!(gpu(2).to_string(), "GPU2");
        assert_eq!(Waypoint::Switch(1).to_string(), "SW1");
        assert_eq!(Waypoint::Node(NodeId::CPU).to_string(), "CPU");
    }

    #[test]
    #[should_panic(expected = "topology valid")]
    fn invalid_shape_panics() {
        let _ = RoutingTable::new(TopologyKind::Ring, 2);
    }

    #[test]
    fn shard_map_partitions_nodes_contiguously() {
        let t = RoutingTable::new(TopologyKind::FullyConnected, 8);
        let m = ShardMap::new(&t, 8, 4);
        // 9 nodes over 4 shards: 3+2+2+2, contiguous and exhaustive.
        let mut walked = Vec::new();
        for s in 0..4 {
            let nodes = m.nodes_of(s);
            assert!(!nodes.is_empty());
            for &n in nodes {
                assert_eq!(m.of_node(n), s);
                walked.push(n);
            }
        }
        assert_eq!(walked, NodeId::all(8).collect::<Vec<_>>());
        assert_eq!(m.nodes_of(0).len(), 3);
        assert_eq!(m.shards(), 4);
    }

    #[test]
    fn shard_map_colocates_switches_with_their_gpus() {
        let t = RoutingTable::new(TopologyKind::Switch { radix: 4 }, 8);
        let m = ShardMap::new(&t, 8, 3);
        // Leaf 0 serves GPUs 1..=4 (first: GPU1), leaf 1 serves 5..=8.
        assert_eq!(m.of_switch(0), m.of_node(NodeId::gpu(1)));
        assert_eq!(m.of_switch(1), m.of_node(NodeId::gpu(5)));
        assert_eq!(m.of_switch(2), 0); // root
        assert_eq!(
            m.of_waypoint(Waypoint::Switch(1)),
            m.of_node(NodeId::gpu(5))
        );
        assert_eq!(m.of_waypoint(Waypoint::Node(NodeId::CPU)), 0);
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn shard_map_rejects_more_shards_than_nodes() {
        let t = RoutingTable::new(TopologyKind::FullyConnected, 3);
        let _ = ShardMap::new(&t, 3, 5);
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashSet;

        /// All three shapes, valid for any `gpus >= 3`.
        fn kind(sel: u8, radix: u16) -> TopologyKind {
            match sel % 3 {
                0 => TopologyKind::FullyConnected,
                1 => TopologyKind::Ring,
                _ => TopologyKind::Switch { radix },
            }
        }

        proptest! {
            #[test]
            fn routes_start_and_end_at_the_endpoints(
                sel in 0u8..3, gpus in 3u16..17, radix in 2u16..6,
            ) {
                let t = RoutingTable::new(kind(sel, radix), gpus);
                for src in NodeId::all(gpus) {
                    for dst in src.peers(gpus) {
                        let route = t.route(PairId::new(src, dst));
                        prop_assert_eq!(route[0], Waypoint::Node(src));
                        prop_assert_eq!(*route.last().expect("non-empty"), Waypoint::Node(dst));
                        prop_assert!(t.hops(PairId::new(src, dst)) >= 1);
                    }
                }
            }

            #[test]
            fn routes_have_no_self_hops_or_cycles(
                sel in 0u8..3, gpus in 3u16..17, radix in 2u16..6,
            ) {
                let t = RoutingTable::new(kind(sel, radix), gpus);
                for src in NodeId::all(gpus) {
                    for dst in src.peers(gpus) {
                        let route = t.route(PairId::new(src, dst));
                        // A repeated waypoint is either a self-hop
                        // (adjacent repeat) or a cycle (distant repeat).
                        let mut seen = HashSet::new();
                        for w in route {
                            prop_assert!(seen.insert(w), "repeated waypoint {w} on {src}->{dst}");
                        }
                    }
                }
            }

            #[test]
            fn ring_routes_never_exceed_half_the_ring(
                gpus in 3u16..17,
            ) {
                let t = RoutingTable::new(TopologyKind::Ring, gpus);
                let max = usize::from(gpus) / 2 + usize::from(gpus % 2 == 1);
                for a in 1..=gpus {
                    for b in (1..=gpus).filter(|&b| b != a) {
                        let hops = t.hops(PairId::new(NodeId::gpu(a), NodeId::gpu(b)));
                        prop_assert!(hops <= max, "GPU{a}->GPU{b}: {hops} hops > {max}");
                    }
                }
            }
        }
    }
}
