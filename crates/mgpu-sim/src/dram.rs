//! HBM (stacked DRAM) service model.
//!
//! Each GPU's local memory is 3D-stacked HBM (paper Table III: 512 GB/s).
//! The model captures the two effects relevant to remote-request service
//! time: a fixed access latency and bank-level bandwidth serialization.
//! Physical protection of HBM itself is assumed (paper threat model), so
//! no memory encryption is modeled here — only the channel needs crypto.

use mgpu_types::{ByteSize, Cycle, Duration};

/// A bandwidth-limited, fixed-latency memory device.
///
/// # Examples
///
/// ```
/// use mgpu_sim::dram::Hbm;
/// use mgpu_types::{ByteSize, Cycle, Duration};
///
/// let mut hbm = Hbm::new(512, Duration::cycles(200));
/// let done = hbm.access(Cycle::ZERO, ByteSize::CACHELINE);
/// assert_eq!(done, Cycle::new(201)); // 200 latency + 1 cycle at 512 B/cy
/// ```
#[derive(Debug, Clone)]
pub struct Hbm {
    bytes_per_cycle: u32,
    latency: Duration,
    next_free: Cycle,
    served: u64,
    bytes: ByteSize,
}

impl Hbm {
    /// Creates an HBM stack with the given bandwidth (bytes/cycle) and
    /// access latency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    #[must_use]
    pub fn new(bytes_per_cycle: u32, latency: Duration) -> Self {
        assert!(bytes_per_cycle > 0, "HBM bandwidth must be non-zero");
        Hbm {
            bytes_per_cycle,
            latency,
            next_free: Cycle::ZERO,
            served: 0,
            bytes: ByteSize::ZERO,
        }
    }

    /// The paper's configuration: 512 GB/s at 1 GHz with a 200-cycle
    /// access latency.
    #[must_use]
    pub fn paper_default() -> Self {
        Hbm::new(512, Duration::cycles(200))
    }

    /// Services an access of `size` bytes arriving at `now`; returns the
    /// completion time. Requests serialize on the device's data bus.
    pub fn access(&mut self, now: Cycle, size: ByteSize) -> Cycle {
        let start = now.max(self.next_free);
        let occupancy = Duration::cycles(
            size.as_u64()
                .div_ceil(u64::from(self.bytes_per_cycle))
                .max(1),
        );
        self.next_free = start + occupancy;
        self.served += 1;
        self.bytes += size;
        start + self.latency + occupancy
    }

    /// Number of requests served.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total bytes transferred.
    #[must_use]
    pub fn bytes(&self) -> ByteSize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_latency() {
        let mut hbm = Hbm::paper_default();
        assert_eq!(
            hbm.access(Cycle::ZERO, ByteSize::CACHELINE),
            Cycle::new(201)
        );
        assert_eq!(hbm.served(), 1);
        assert_eq!(hbm.bytes(), ByteSize::CACHELINE);
    }

    #[test]
    fn accesses_serialize_on_the_bus() {
        let mut hbm = Hbm::new(64, Duration::cycles(100));
        // Page read: 4096/64 = 64 cycles occupancy.
        let a = hbm.access(Cycle::ZERO, ByteSize::PAGE);
        assert_eq!(a, Cycle::new(164));
        // Second request queues behind the 64-cycle occupancy.
        let b = hbm.access(Cycle::ZERO, ByteSize::CACHELINE);
        assert_eq!(b, Cycle::new(64 + 100 + 1));
    }

    #[test]
    fn idle_device_serves_immediately() {
        let mut hbm = Hbm::new(64, Duration::cycles(100));
        hbm.access(Cycle::ZERO, ByteSize::CACHELINE);
        let done = hbm.access(Cycle::new(1000), ByteSize::CACHELINE);
        assert_eq!(done, Cycle::new(1101));
    }

    #[test]
    fn tiny_access_still_occupies_one_cycle() {
        let mut hbm = Hbm::new(512, Duration::cycles(10));
        let done = hbm.access(Cycle::ZERO, ByteSize::new(8));
        assert_eq!(done, Cycle::new(11));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bandwidth_panics() {
        let _ = Hbm::new(0, Duration::ZERO);
    }
}
