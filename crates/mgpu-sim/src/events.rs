//! Deterministic discrete-event queue.
//!
//! Events are ordered by time; ties break by insertion order (FIFO), which
//! keeps simulations deterministic regardless of payload type.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — a calendar queue (bucketed time wheel). Near-future
//!   events (within [`WHEEL_SPAN`] cycles of the clock) go straight into a
//!   per-cycle bucket, so `schedule` and `pop` are O(1) amortized with no
//!   heap sift. Far-future events park in an overflow binary heap and
//!   migrate into the wheel as the clock advances. This is the engine's
//!   hot-path queue: simulation event gaps (link latency, DRAM access,
//!   flush timeouts) are typically a few hundred cycles, far inside the
//!   wheel span.
//! * [`HeapEventQueue`] — the original binary-heap queue, kept as the
//!   reference oracle. Property tests drive both with the same operation
//!   sequences and require identical pop streams.
//!
//! # Ordering equivalence
//!
//! The wheel reproduces heap order exactly because of two invariants:
//!
//! 1. Every pending event with time `< horizon` lives in the wheel;
//!    everything at or past `horizon` lives in the overflow heap. The
//!    horizon only advances (with the clock), and overflow events migrate
//!    into the wheel the moment the advancing horizon passes them.
//! 2. A bucket's entries are always in ascending sequence order: direct
//!    inserts append in call (= sequence) order, and a migrated batch for
//!    some time `t` lands before any direct insert for `t` can exist —
//!    a direct insert for `t` requires `t < horizon`, which first becomes
//!    true at the very migration that drains every overflow entry for `t`
//!    (all of which carry smaller sequence numbers).

use mgpu_types::Cycle;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Cycles covered by the calendar wheel ahead of the clock. Power of two
/// so bucket indexing is a mask, sized to swallow the simulator's typical
/// event horizons (link latencies ~100, DRAM ~200, flush timeouts ~160).
pub const WHEEL_SPAN: u64 = 1 << 12;

const WHEEL_MASK: u64 = WHEEL_SPAN - 1;

/// One scheduled entry: ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking, implemented as a
/// calendar queue (per-cycle buckets plus a far-future overflow heap).
///
/// # Examples
///
/// ```
/// use mgpu_sim::events::EventQueue;
/// use mgpu_types::Cycle;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::new(3), "late");
/// q.schedule(Cycle::new(1), "early");
/// q.schedule(Cycle::new(1), "early-second");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["early", "early-second", "late"]);
/// ```
pub struct EventQueue<E> {
    /// `WHEEL_SPAN` per-cycle buckets; bucket `t & WHEEL_MASK` holds the
    /// events for the unique time `t` inside `[now, horizon)` that maps to
    /// it. Each bucket is FIFO in sequence order (see module docs).
    buckets: Vec<VecDeque<(Cycle, E)>>,
    /// Pending events currently in the wheel.
    wheel_len: usize,
    /// Exclusive upper bound of wheel coverage: wheel entries have
    /// `time < horizon`, overflow entries `time >= horizon`.
    horizon: u64,
    /// Lower bound for the earliest occupied bucket (absolute cycles);
    /// buckets for times in `[now, scan_from)` are empty.
    scan_from: u64,
    /// Far-future events, ordered `(time, seq)` ascending.
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        let mut buckets = Vec::new();
        buckets.resize_with(WHEEL_SPAN as usize, VecDeque::new);
        EventQueue {
            buckets,
            wheel_len: 0,
            horizon: WHEEL_SPAN,
            scan_from: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time — an
    /// event cannot fire in the past.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = time.as_u64();
        if t < self.horizon {
            self.buckets[(t & WHEEL_MASK) as usize].push_back((time, event));
            self.wheel_len += 1;
            if t < self.scan_from {
                self.scan_from = t;
            }
        } else {
            self.overflow.push(Entry { time, seq, event });
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.wheel_len > 0 {
            // The wheel always wins: every wheel entry is earlier than the
            // horizon, every overflow entry at or past it.
            let mut t = self.scan_from.max(self.now.as_u64());
            loop {
                let bucket = &mut self.buckets[(t & WHEEL_MASK) as usize];
                if let Some((time, event)) = bucket.pop_front() {
                    debug_assert_eq!(time.as_u64(), t, "bucket holds a single absolute time");
                    self.wheel_len -= 1;
                    self.scan_from = t;
                    self.now = time;
                    self.migrate();
                    return Some((time, event));
                }
                t += 1;
            }
        }
        let entry = self.overflow.pop()?;
        self.now = entry.time;
        self.scan_from = entry.time.as_u64();
        self.migrate();
        Some((entry.time, entry.event))
    }

    /// Moves overflow events the advancing horizon now covers into their
    /// buckets. The heap yields them `(time, seq)` ascending, so each
    /// bucket receives its migrants in sequence order.
    fn migrate(&mut self) {
        let new_horizon = self.now.as_u64() + WHEEL_SPAN;
        if new_horizon <= self.horizon {
            return;
        }
        self.horizon = new_horizon;
        while self
            .overflow
            .peek()
            .is_some_and(|e| e.time.as_u64() < self.horizon)
        {
            let e = self.overflow.pop().expect("peeked entry exists");
            self.buckets[(e.time.as_u64() & WHEEL_MASK) as usize].push_back((e.time, e.event));
            self.wheel_len += 1;
        }
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.wheel_len > 0 {
            let mut t = self.scan_from.max(self.now.as_u64());
            loop {
                if let Some(&(time, _)) = self.buckets[(t & WHEEL_MASK) as usize].front() {
                    return Some(time);
                }
                t += 1;
            }
        }
        self.overflow.peek().map(|e| e.time)
    }

    /// The current simulation time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

/// The original binary-heap event queue: same `(time, seq)` FIFO contract
/// as [`EventQueue`], kept as the reference oracle for equivalence tests.
///
/// # Examples
///
/// ```
/// use mgpu_sim::events::HeapEventQueue;
/// use mgpu_types::Cycle;
///
/// let mut q = HeapEventQueue::new();
/// q.schedule(Cycle::new(2), "b");
/// q.schedule(Cycle::new(1), "a");
/// assert_eq!(q.pop(), Some((Cycle::new(1), "a")));
/// ```
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulation time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> core::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

/// Creation-lineage ordering stamp for sharded (multi-queue) execution.
///
/// A single global queue breaks same-cycle ties by a global insertion
/// sequence number: events created earlier pop first. Sharded execution
/// has no global counter, so each event instead carries a stamp that lets
/// any two stamps be compared *as if* global sequence numbers existed:
///
/// * `create` — fire time of the *creating* event (the one whose handler
///   scheduled this event); `Cycle::ZERO` for pre-loop roots,
/// * `shard`  — the shard whose handler created this event,
/// * `seq`    — that shard's private creation counter (for roots: the
///   globally agreed root rank),
/// * `parent` — the full stamp of the creating event, shared via `Arc`
///   (absent for roots).
///
/// Comparison reproduces the global creation order exactly:
///
/// 1. Two events created by the **same shard** compare by `seq` alone —
///    a shard creates events in its local pop order, which (inductively)
///    is the global order restricted to that shard.
/// 2. Otherwise compare `create`: the global counter gives the event
///    created at the earlier cycle the smaller sequence number.
/// 3. Equal `create` means both creating events fired at the same cycle;
///    their pop order decides — recurse into the parents. Different-shard
///    events always have different creators (one handler runs on exactly
///    one shard), so the recursion terminates at a strict comparison or
///    at two roots, which carry globally agreed ranks in `seq`.
///
/// The recursion depth is the length of the common lineage prefix. Two
/// independent issue cadences can stay in lockstep for many generations
/// (the creating event of each generation fired the same cycle on both
/// chains), which is exactly why any *finite* lineage prefix fails: the
/// distinguishing ancestor recedes one generation per cycle step. Sharing
/// the chain through `Arc` makes the comparison exact at O(1) amortized
/// memory per created event, and rule 1 short-circuits every same-shard
/// comparison — deep walks only happen for cross-shard lockstep ties.
///
/// # Ordering invariant
///
/// Engine-generated stamps satisfy: on one shard, `seq` order is
/// consistent with `create` order (a shard's creation counter advances
/// with its clock). Hand-built stamps must respect this too — rule 1 is a
/// shortcut, not an independent ordering.
#[derive(Clone)]
pub struct Stamp {
    /// Fire time of the event whose handler scheduled this one
    /// (`Cycle::ZERO` for roots).
    pub create: Cycle,
    /// Shard that created this event.
    pub shard: u16,
    /// Creation counter private to `shard`; global root rank for roots.
    pub seq: u64,
    /// Stamp of the creating event; `None` for roots.
    pub parent: Option<Arc<Stamp>>,
}

impl Stamp {
    /// Stamp for a root event scheduled before the engine starts (initial
    /// issue kicks, the first sample tick). `seq` must be the *global*
    /// root rank, agreed by all shards: legacy assigns roots the first
    /// sequence numbers in root creation order, and cross-shard root
    /// comparisons bottom out here.
    #[must_use]
    pub fn root(shard: u16, seq: u64) -> Self {
        Stamp {
            create: Cycle::ZERO,
            shard,
            seq,
            parent: None,
        }
    }

    /// Stamp for an event scheduled by a handler running at `now` on
    /// `shard`, where `parent` is the stamp of the event being handled.
    #[must_use]
    pub fn child(parent: &Arc<Stamp>, now: Cycle, shard: u16, seq: u64) -> Self {
        Stamp {
            create: now,
            shard,
            seq,
            parent: Some(Arc::clone(parent)),
        }
    }

    /// Lineage depth (number of ancestors); a root has depth 0.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut d = 0;
        let mut cur = self.parent.as_deref();
        while let Some(p) = cur {
            d += 1;
            cur = p.parent.as_deref();
        }
        d
    }
}

impl PartialEq for Stamp {
    fn eq(&self, other: &Self) -> bool {
        // (shard, seq) identifies an event: seq is unique per shard.
        self.shard == other.shard && self.seq == other.seq
    }
}

impl Eq for Stamp {}

impl PartialOrd for Stamp {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Stamp {
    fn cmp(&self, other: &Self) -> Ordering {
        // Iterative: lockstep lineages can be tens of thousands of links
        // deep, far past any safe recursion depth.
        let (mut a, mut b) = (self, other);
        loop {
            if a.shard == b.shard {
                // Same creating shard: local creation order is the global
                // order restricted to the shard. Strict unless `a` and `b`
                // are the same event (only possible at the entry level:
                // one step up, two chains meeting at the same ancestor
                // would have been resolved as same-shard siblings first).
                return a.seq.cmp(&b.seq);
            }
            match a.create.cmp(&b.create) {
                Ordering::Equal => {}
                ord => return ord,
            }
            match (&a.parent, &b.parent) {
                (Some(pa), Some(pb)) => {
                    a = pa;
                    b = pb;
                }
                // Roots precede any handler-created event of the same
                // cycle (legacy hands out root sequence numbers first);
                // two roots order by their global ranks in `seq`.
                (None, None) => return a.seq.cmp(&b.seq).then_with(|| a.shard.cmp(&b.shard)),
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
            }
        }
    }
}

impl Drop for Stamp {
    fn drop(&mut self) {
        // Dismantle the lineage chain iteratively: dropping the last
        // holder of a deep chain would otherwise recurse per link.
        let mut cur = self.parent.take();
        while let Some(arc) = cur {
            match Arc::try_unwrap(arc) {
                Ok(mut inner) => cur = inner.parent.take(),
                // The tail is still shared; its other owners drop it.
                Err(_) => break,
            }
        }
    }
}

impl core::fmt::Debug for Stamp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Deliberately shallow: printing the whole lineage chain would
        // emit thousands of nodes for long runs.
        f.debug_struct("Stamp")
            .field("create", &self.create)
            .field("shard", &self.shard)
            .field("seq", &self.seq)
            .field("depth", &self.depth())
            .finish()
    }
}

struct StampedEntry<E> {
    fire: Cycle,
    stamp: Stamp,
    event: E,
}

impl<E> PartialEq for StampedEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.fire == other.fire && self.stamp == other.stamp
    }
}

impl<E> Eq for StampedEntry<E> {}

impl<E> PartialOrd for StampedEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for StampedEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap; reverse for earliest-first ordering.
        other
            .fire
            .cmp(&self.fire)
            .then_with(|| other.stamp.cmp(&self.stamp))
    }
}

/// Per-shard event queue for conservative time-window synchronization.
///
/// Orders events by `(fire, `[`Stamp`]`)` — a total order, so the result
/// of merging inbound mailbox messages is independent of arrival order —
/// and exposes [`ShardQueue::pop_before`], the window-bounded pop that
/// lets a shard drain exactly the events inside `[window start, window
/// end)` before synchronizing with its peers.
///
/// # Examples
///
/// ```
/// use mgpu_sim::events::{ShardQueue, Stamp};
/// use mgpu_types::Cycle;
///
/// let mut q = ShardQueue::new();
/// q.schedule(Cycle::new(5), Stamp::root(0, 1), "b");
/// q.schedule(Cycle::new(5), Stamp::root(0, 0), "a");
/// q.schedule(Cycle::new(9), Stamp::root(0, 2), "c");
/// // Window [0, 8): only the two cycle-5 events pop, stamp-ordered.
/// assert_eq!(q.pop_before(Cycle::new(8)).map(|(_, _, e)| e), Some("a"));
/// assert_eq!(q.pop_before(Cycle::new(8)).map(|(_, _, e)| e), Some("b"));
/// assert_eq!(q.pop_before(Cycle::new(8)), None);
/// assert_eq!(q.peek_time(), Some(Cycle::new(9)));
/// ```
pub struct ShardQueue<E> {
    heap: BinaryHeap<StampedEntry<E>>,
    now: Cycle,
}

impl<E> Default for ShardQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ShardQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        ShardQueue {
            heap: BinaryHeap::new(),
            now: Cycle::ZERO,
        }
    }

    /// Schedules `event` to fire at `fire` with ordering stamp `stamp`.
    ///
    /// Also used to inject mailbox messages at window barriers: a
    /// conservative window guarantees cross-shard messages fire at or
    /// after the window end, so injection never lands in the local past.
    ///
    /// # Panics
    ///
    /// Panics if `fire` is earlier than the current shard-local time.
    pub fn schedule(&mut self, fire: Cycle, stamp: Stamp, event: E) {
        assert!(
            fire >= self.now,
            "cannot schedule into the past: {fire} < now {now}",
            now = self.now
        );
        self.heap.push(StampedEntry { fire, stamp, event });
    }

    /// Removes and returns the earliest event if it fires strictly before
    /// `limit`, advancing the shard-local clock to its timestamp. Returns
    /// `None` when the next event is at or past `limit` (the window is
    /// drained) or the queue is empty.
    pub fn pop_before(&mut self, limit: Cycle) -> Option<(Cycle, Stamp, E)> {
        if self.heap.peek().is_some_and(|e| e.fire < limit) {
            let e = self.heap.pop().expect("peeked entry exists");
            self.now = e.fire;
            Some((e.fire, e.stamp, e.event))
        } else {
            None
        }
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.fire)
    }

    /// The current shard-local time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> core::fmt::Debug for ShardQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), 3);
        q.schedule(Cycle::new(10), 1);
        q.schedule(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(5), i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.schedule(Cycle::new(42), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(42));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), ());
        q.pop();
        q.schedule(Cycle::new(5), ());
    }

    #[test]
    #[should_panic(expected = "past")]
    fn heap_scheduling_into_the_past_panics() {
        let mut q = HeapEventQueue::new();
        q.schedule(Cycle::new(10), ());
        q.pop();
        q.schedule(Cycle::new(5), ());
    }

    #[test]
    fn same_time_scheduling_after_pop_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), 1);
        q.pop();
        q.schedule(Cycle::new(10), 2); // now == 10; same-cycle follow-up
        assert_eq!(q.pop(), Some((Cycle::new(10), 2)));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle::new(7), "x");
        q.schedule(Cycle::new(3), "y");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(3)));
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        let far = Cycle::new(3 * WHEEL_SPAN + 17);
        q.schedule(far, "far");
        q.schedule(Cycle::new(1), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle::new(1), "near")));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn migration_preserves_fifo_across_horizon() {
        let mut q = EventQueue::new();
        let far = Cycle::new(WHEEL_SPAN + 100); // beyond initial horizon
        q.schedule(far, 1); // seq 0: parks in overflow
        q.schedule(Cycle::new(500), 0); // wheel
        assert_eq!(q.pop(), Some((Cycle::new(500), 0))); // migrates `far`
        q.schedule(far, 2); // direct insert lands after the migrant
        assert_eq!(q.pop(), Some((far, 1)));
        assert_eq!(q.pop(), Some((far, 2)));
    }

    #[test]
    fn wheel_wraparound_reuses_buckets() {
        // March the clock several wheel spans forward in steps smaller
        // than the span, so buckets are reused many times.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        let mut t = 0u64;
        for i in 0..200u64 {
            t += 97; // co-prime with the span: hits every bucket eventually
            q.schedule(Cycle::new(t), i);
            expect.push((Cycle::new(t), i));
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, expect);
    }

    /// Pinned: merging two shards' mailbox messages into a `ShardQueue`
    /// yields one specific order — `(fire, lineage)` — no matter which
    /// mailbox drains first.
    #[test]
    fn shard_queue_merge_order_is_deterministic() {
        let r0 = Arc::new(Stamp::root(0, 0));
        let r1 = Arc::new(Stamp::root(1, 1));
        let mid_parent = Arc::new(Stamp::child(&r0, Cycle::new(4), 0, 3));
        let msgs = [
            // Cross-shard ties at the same fire cycle resolve by creation
            // cycle first, then by lineage down to the root ranks.
            (20, Stamp::child(&r1, Cycle::new(10), 1, 9), "d"),
            (20, Stamp::child(&r1, Cycle::new(5), 1, 4), "b"),
            (20, Stamp::child(&r0, Cycle::new(5), 0, 4), "a"),
            (20, Stamp::child(&r0, Cycle::new(10), 0, 6), "c"),
            (15, Stamp::child(&r1, Cycle::new(12), 1, 10), "first"),
            (20, Stamp::child(&mid_parent, Cycle::new(7), 0, 5), "mid"),
        ];
        let expect = ["first", "a", "b", "mid", "c", "d"];
        // Try both drain orders (shard 0's messages first, then shard 1's,
        // and vice versa): the pop stream must be identical.
        for reverse in [false, true] {
            let mut q = ShardQueue::new();
            let mut order: Vec<_> = msgs.to_vec();
            if reverse {
                order.reverse();
            }
            for (fire, stamp, payload) in order {
                q.schedule(Cycle::new(fire), stamp, payload);
            }
            let got: Vec<_> = std::iter::from_fn(|| q.pop_before(Cycle::new(u64::MAX)))
                .map(|(_, _, e)| e)
                .collect();
            assert_eq!(got, expect, "reverse={reverse}");
        }
    }

    /// With one shard stamping `create = now` and a monotonically
    /// increasing local counter, `ShardQueue` reproduces the global-queue
    /// `(time, seq)` FIFO order exactly — the shards=1 equivalence the
    /// sharded engine leans on.
    #[test]
    fn single_shard_stamps_match_global_fifo_order() {
        let mut global = HeapEventQueue::new();
        let mut sharded = ShardQueue::new();
        let root = Arc::new(Stamp::root(0, 0));
        let mut seq = 0u64;
        let mut schedule = |g: &mut HeapEventQueue<u64>, s: &mut ShardQueue<u64>, t: u64, now| {
            g.schedule(Cycle::new(t), seq);
            s.schedule(Cycle::new(t), Stamp::child(&root, now, 0, seq), seq);
            seq += 1;
        };
        for t in [5, 5, 3, 9, 3, 5] {
            schedule(&mut global, &mut sharded, t, Cycle::ZERO);
        }
        for _ in 0..6 {
            let (gt, ge) = global.pop().expect("global event");
            let (st, _, se) = sharded
                .pop_before(Cycle::new(u64::MAX))
                .expect("shard event");
            assert_eq!((gt, ge), (st, se));
            // Same-cycle follow-ups created "by" the popped event.
            if ge == 2 {
                schedule(&mut global, &mut sharded, gt.as_u64(), gt);
            }
        }
    }

    /// Two issue cadences on different shards can stay in creation-cycle
    /// lockstep for arbitrarily many generations; the order of their
    /// same-cycle descendants is then decided by the first lineage
    /// divergence — here, all the way back at the root ranks. A finite
    /// lineage prefix (the design this replaced) cannot see that deep.
    #[test]
    fn deep_lockstep_lineages_order_by_first_divergence() {
        let gap = 3u64;
        let grow = |root: Arc<Stamp>, shard: u16, generations: u64| {
            let mut tip = root;
            for g in 0..generations {
                let now = Cycle::new((g + 1) * gap);
                let seq = 100 + g; // same local counter values on both shards
                tip = Arc::new(Stamp::child(&tip, now, shard, seq));
            }
            tip
        };
        // Root ranks say shard 1's chain was created first.
        let a = grow(Arc::new(Stamp::root(0, 1)), 0, 40);
        let b = grow(Arc::new(Stamp::root(1, 0)), 1, 40);
        assert_eq!(a.depth(), 40);
        assert!(
            b.as_ref() < a.as_ref(),
            "root rank 0 wins through 40 lockstep generations"
        );
        // A single creation-cycle divergence near the tip overrides roots.
        let c = Arc::new(Stamp::child(
            &grow(Arc::new(Stamp::root(1, 0)), 1, 39),
            Cycle::new(40 * gap + 1),
            1,
            200,
        ));
        assert!(
            a.as_ref() < c.as_ref(),
            "later creation cycle loses regardless of root rank"
        );
    }

    #[test]
    fn pop_before_respects_the_window_bound() {
        let mut q = ShardQueue::new();
        q.schedule(Cycle::new(100), Stamp::root(0, 0), "in");
        q.schedule(Cycle::new(200), Stamp::root(0, 1), "out");
        assert_eq!(q.pop_before(Cycle::new(200)).map(|(_, _, e)| e), Some("in"));
        assert_eq!(q.pop_before(Cycle::new(200)), None); // fire == limit stays
        assert_eq!(q.now(), Cycle::new(100));
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_before(Cycle::new(201)).map(|(_, _, e)| e),
            Some("out")
        );
        assert!(q.is_empty());
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn output_is_sorted(times in proptest::collection::vec(0u64..1000, 1..200)) {
                let mut q = EventQueue::new();
                for &t in &times {
                    q.schedule(Cycle::new(t), t);
                }
                let mut prev = 0u64;
                while let Some((t, _)) = q.pop() {
                    prop_assert!(t.as_u64() >= prev);
                    prev = t.as_u64();
                }
            }

            #[test]
            fn all_events_are_delivered(times in proptest::collection::vec(0u64..1000, 0..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(Cycle::new(t), i);
                }
                let mut seen = std::collections::HashSet::new();
                while let Some((_, i)) = q.pop() {
                    seen.insert(i);
                }
                prop_assert_eq!(seen.len(), times.len());
            }

            /// The calendar queue and the heap oracle, driven by one
            /// operation stream (schedules at `now + delta`, interleaved
            /// pops while draining), must produce identical pop streams.
            /// Deltas deliberately straddle `WHEEL_SPAN` so events land on
            /// both sides of the horizon, and delta 0 exercises same-cycle
            /// FIFO ties.
            #[test]
            fn calendar_matches_heap_oracle(
                ops in proptest::collection::vec((0u8..4, 0usize..12), 1..300)
            ) {
                // Deltas deliberately straddle WHEEL_SPAN so events land on
                // both sides of the horizon; delta 0 exercises same-cycle
                // FIFO ties.
                const DELTAS: [u64; 12] = [
                    0, 1, 2, 3, 50, 100, 161, 1000,
                    WHEEL_SPAN - 1, WHEEL_SPAN, WHEEL_SPAN + 1, 3 * WHEEL_SPAN,
                ];
                let mut cal = EventQueue::new();
                let mut heap = HeapEventQueue::new();
                let mut payload = 0u32;
                for &(kind, delta_idx) in &ops {
                    let delta = DELTAS[delta_idx];
                    if kind == 3 {
                        // Interleaved pop: schedule-while-draining.
                        prop_assert_eq!(cal.pop(), heap.pop());
                        prop_assert_eq!(cal.now(), heap.now());
                    } else {
                        let time = Cycle::new(cal.now().as_u64() + delta);
                        cal.schedule(time, payload);
                        heap.schedule(time, payload);
                        payload += 1;
                    }
                    prop_assert_eq!(cal.len(), heap.len());
                }
                loop {
                    let (a, b) = (cal.pop(), heap.pop());
                    prop_assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
