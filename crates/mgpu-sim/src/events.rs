//! Deterministic discrete-event queue.
//!
//! Events are ordered by time; ties break by insertion order (FIFO), which
//! keeps simulations deterministic regardless of payload type.

use mgpu_types::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use mgpu_sim::events::EventQueue;
/// use mgpu_types::Cycle;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::new(3), "late");
/// q.schedule(Cycle::new(1), "early");
/// q.schedule(Cycle::new(1), "early-second");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["early", "early-second", "late"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time — an
    /// event cannot fire in the past.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulation time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), 3);
        q.schedule(Cycle::new(10), 1);
        q.schedule(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(5), i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.schedule(Cycle::new(42), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(42));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), ());
        q.pop();
        q.schedule(Cycle::new(5), ());
    }

    #[test]
    fn same_time_scheduling_after_pop_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), 1);
        q.pop();
        q.schedule(Cycle::new(10), 2); // now == 10; same-cycle follow-up
        assert_eq!(q.pop(), Some((Cycle::new(10), 2)));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle::new(7), "x");
        q.schedule(Cycle::new(3), "y");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(3)));
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn output_is_sorted(times in proptest::collection::vec(0u64..1000, 1..200)) {
                let mut q = EventQueue::new();
                for &t in &times {
                    q.schedule(Cycle::new(t), t);
                }
                let mut prev = 0u64;
                while let Some((t, _)) = q.pop() {
                    prop_assert!(t.as_u64() >= prev);
                    prev = t.as_u64();
                }
            }

            #[test]
            fn all_events_are_delivered(times in proptest::collection::vec(0u64..1000, 0..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(Cycle::new(t), i);
                }
                let mut seen = std::collections::HashSet::new();
                while let Some((_, i)) = q.pop() {
                    seen.insert(i);
                }
                prop_assert_eq!(seen.len(), times.len());
            }
        }
    }
}
