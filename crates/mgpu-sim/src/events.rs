//! Deterministic discrete-event queue.
//!
//! Events are ordered by time; ties break by insertion order (FIFO), which
//! keeps simulations deterministic regardless of payload type.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — a calendar queue (bucketed time wheel). Near-future
//!   events (within [`WHEEL_SPAN`] cycles of the clock) go straight into a
//!   per-cycle bucket, so `schedule` and `pop` are O(1) amortized with no
//!   heap sift. Far-future events park in an overflow binary heap and
//!   migrate into the wheel as the clock advances. This is the engine's
//!   hot-path queue: simulation event gaps (link latency, DRAM access,
//!   flush timeouts) are typically a few hundred cycles, far inside the
//!   wheel span.
//! * [`HeapEventQueue`] — the original binary-heap queue, kept as the
//!   reference oracle. Property tests drive both with the same operation
//!   sequences and require identical pop streams.
//!
//! # Ordering equivalence
//!
//! The wheel reproduces heap order exactly because of two invariants:
//!
//! 1. Every pending event with time `< horizon` lives in the wheel;
//!    everything at or past `horizon` lives in the overflow heap. The
//!    horizon only advances (with the clock), and overflow events migrate
//!    into the wheel the moment the advancing horizon passes them.
//! 2. A bucket's entries are always in ascending sequence order: direct
//!    inserts append in call (= sequence) order, and a migrated batch for
//!    some time `t` lands before any direct insert for `t` can exist —
//!    a direct insert for `t` requires `t < horizon`, which first becomes
//!    true at the very migration that drains every overflow entry for `t`
//!    (all of which carry smaller sequence numbers).

use mgpu_types::Cycle;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Cycles covered by the calendar wheel ahead of the clock. Power of two
/// so bucket indexing is a mask, sized to swallow the simulator's typical
/// event horizons (link latencies ~100, DRAM ~200, flush timeouts ~160).
pub const WHEEL_SPAN: u64 = 1 << 12;

const WHEEL_MASK: u64 = WHEEL_SPAN - 1;

/// One scheduled entry: ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking, implemented as a
/// calendar queue (per-cycle buckets plus a far-future overflow heap).
///
/// # Examples
///
/// ```
/// use mgpu_sim::events::EventQueue;
/// use mgpu_types::Cycle;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::new(3), "late");
/// q.schedule(Cycle::new(1), "early");
/// q.schedule(Cycle::new(1), "early-second");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["early", "early-second", "late"]);
/// ```
pub struct EventQueue<E> {
    /// `WHEEL_SPAN` per-cycle buckets; bucket `t & WHEEL_MASK` holds the
    /// events for the unique time `t` inside `[now, horizon)` that maps to
    /// it. Each bucket is FIFO in sequence order (see module docs).
    buckets: Vec<VecDeque<(Cycle, E)>>,
    /// Pending events currently in the wheel.
    wheel_len: usize,
    /// Exclusive upper bound of wheel coverage: wheel entries have
    /// `time < horizon`, overflow entries `time >= horizon`.
    horizon: u64,
    /// Lower bound for the earliest occupied bucket (absolute cycles);
    /// buckets for times in `[now, scan_from)` are empty.
    scan_from: u64,
    /// Far-future events, ordered `(time, seq)` ascending.
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        let mut buckets = Vec::new();
        buckets.resize_with(WHEEL_SPAN as usize, VecDeque::new);
        EventQueue {
            buckets,
            wheel_len: 0,
            horizon: WHEEL_SPAN,
            scan_from: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time — an
    /// event cannot fire in the past.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = time.as_u64();
        if t < self.horizon {
            self.buckets[(t & WHEEL_MASK) as usize].push_back((time, event));
            self.wheel_len += 1;
            if t < self.scan_from {
                self.scan_from = t;
            }
        } else {
            self.overflow.push(Entry { time, seq, event });
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.wheel_len > 0 {
            // The wheel always wins: every wheel entry is earlier than the
            // horizon, every overflow entry at or past it.
            let mut t = self.scan_from.max(self.now.as_u64());
            loop {
                let bucket = &mut self.buckets[(t & WHEEL_MASK) as usize];
                if let Some((time, event)) = bucket.pop_front() {
                    debug_assert_eq!(time.as_u64(), t, "bucket holds a single absolute time");
                    self.wheel_len -= 1;
                    self.scan_from = t;
                    self.now = time;
                    self.migrate();
                    return Some((time, event));
                }
                t += 1;
            }
        }
        let entry = self.overflow.pop()?;
        self.now = entry.time;
        self.scan_from = entry.time.as_u64();
        self.migrate();
        Some((entry.time, entry.event))
    }

    /// Moves overflow events the advancing horizon now covers into their
    /// buckets. The heap yields them `(time, seq)` ascending, so each
    /// bucket receives its migrants in sequence order.
    fn migrate(&mut self) {
        let new_horizon = self.now.as_u64() + WHEEL_SPAN;
        if new_horizon <= self.horizon {
            return;
        }
        self.horizon = new_horizon;
        while self
            .overflow
            .peek()
            .is_some_and(|e| e.time.as_u64() < self.horizon)
        {
            let e = self.overflow.pop().expect("peeked entry exists");
            self.buckets[(e.time.as_u64() & WHEEL_MASK) as usize].push_back((e.time, e.event));
            self.wheel_len += 1;
        }
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.wheel_len > 0 {
            let mut t = self.scan_from.max(self.now.as_u64());
            loop {
                if let Some(&(time, _)) = self.buckets[(t & WHEEL_MASK) as usize].front() {
                    return Some(time);
                }
                t += 1;
            }
        }
        self.overflow.peek().map(|e| e.time)
    }

    /// The current simulation time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

/// The original binary-heap event queue: same `(time, seq)` FIFO contract
/// as [`EventQueue`], kept as the reference oracle for equivalence tests.
///
/// # Examples
///
/// ```
/// use mgpu_sim::events::HeapEventQueue;
/// use mgpu_types::Cycle;
///
/// let mut q = HeapEventQueue::new();
/// q.schedule(Cycle::new(2), "b");
/// q.schedule(Cycle::new(1), "a");
/// assert_eq!(q.pop(), Some((Cycle::new(1), "a")));
/// ```
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulation time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> core::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), 3);
        q.schedule(Cycle::new(10), 1);
        q.schedule(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(5), i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.schedule(Cycle::new(42), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(42));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), ());
        q.pop();
        q.schedule(Cycle::new(5), ());
    }

    #[test]
    #[should_panic(expected = "past")]
    fn heap_scheduling_into_the_past_panics() {
        let mut q = HeapEventQueue::new();
        q.schedule(Cycle::new(10), ());
        q.pop();
        q.schedule(Cycle::new(5), ());
    }

    #[test]
    fn same_time_scheduling_after_pop_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), 1);
        q.pop();
        q.schedule(Cycle::new(10), 2); // now == 10; same-cycle follow-up
        assert_eq!(q.pop(), Some((Cycle::new(10), 2)));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle::new(7), "x");
        q.schedule(Cycle::new(3), "y");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(3)));
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        let far = Cycle::new(3 * WHEEL_SPAN + 17);
        q.schedule(far, "far");
        q.schedule(Cycle::new(1), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle::new(1), "near")));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn migration_preserves_fifo_across_horizon() {
        let mut q = EventQueue::new();
        let far = Cycle::new(WHEEL_SPAN + 100); // beyond initial horizon
        q.schedule(far, 1); // seq 0: parks in overflow
        q.schedule(Cycle::new(500), 0); // wheel
        assert_eq!(q.pop(), Some((Cycle::new(500), 0))); // migrates `far`
        q.schedule(far, 2); // direct insert lands after the migrant
        assert_eq!(q.pop(), Some((far, 1)));
        assert_eq!(q.pop(), Some((far, 2)));
    }

    #[test]
    fn wheel_wraparound_reuses_buckets() {
        // March the clock several wheel spans forward in steps smaller
        // than the span, so buckets are reused many times.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        let mut t = 0u64;
        for i in 0..200u64 {
            t += 97; // co-prime with the span: hits every bucket eventually
            q.schedule(Cycle::new(t), i);
            expect.push((Cycle::new(t), i));
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, expect);
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn output_is_sorted(times in proptest::collection::vec(0u64..1000, 1..200)) {
                let mut q = EventQueue::new();
                for &t in &times {
                    q.schedule(Cycle::new(t), t);
                }
                let mut prev = 0u64;
                while let Some((t, _)) = q.pop() {
                    prop_assert!(t.as_u64() >= prev);
                    prev = t.as_u64();
                }
            }

            #[test]
            fn all_events_are_delivered(times in proptest::collection::vec(0u64..1000, 0..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(Cycle::new(t), i);
                }
                let mut seen = std::collections::HashSet::new();
                while let Some((_, i)) = q.pop() {
                    seen.insert(i);
                }
                prop_assert_eq!(seen.len(), times.len());
            }

            /// The calendar queue and the heap oracle, driven by one
            /// operation stream (schedules at `now + delta`, interleaved
            /// pops while draining), must produce identical pop streams.
            /// Deltas deliberately straddle `WHEEL_SPAN` so events land on
            /// both sides of the horizon, and delta 0 exercises same-cycle
            /// FIFO ties.
            #[test]
            fn calendar_matches_heap_oracle(
                ops in proptest::collection::vec((0u8..4, 0usize..12), 1..300)
            ) {
                // Deltas deliberately straddle WHEEL_SPAN so events land on
                // both sides of the horizon; delta 0 exercises same-cycle
                // FIFO ties.
                const DELTAS: [u64; 12] = [
                    0, 1, 2, 3, 50, 100, 161, 1000,
                    WHEEL_SPAN - 1, WHEEL_SPAN, WHEEL_SPAN + 1, 3 * WHEEL_SPAN,
                ];
                let mut cal = EventQueue::new();
                let mut heap = HeapEventQueue::new();
                let mut payload = 0u32;
                for &(kind, delta_idx) in &ops {
                    let delta = DELTAS[delta_idx];
                    if kind == 3 {
                        // Interleaved pop: schedule-while-draining.
                        prop_assert_eq!(cal.pop(), heap.pop());
                        prop_assert_eq!(cal.now(), heap.now());
                    } else {
                        let time = Cycle::new(cal.now().as_u64() + delta);
                        cal.schedule(time, payload);
                        heap.schedule(time, payload);
                        payload += 1;
                    }
                    prop_assert_eq!(cal.len(), heap.len());
                }
                loop {
                    let (a, b) = (cal.pop(), heap.pop());
                    prop_assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
