//! System topology: CPU hub plus a routed GPU interconnect fabric.
//!
//! The paper's target architecture (Fig. 2, Table III) connects every GPU
//! to the CPU over PCIe v4 (32 GB/s) and GPUs to each other over an
//! NVLink2-class fabric (50 GB/s). At the 1 GHz shader clock those are
//! 32 B/cycle and 50 B/cycle.
//!
//! Bandwidth is a *per-port* resource, as in real NVLink/PCIe systems: all
//! data a node sends shares its **egress port**, and all data it receives
//! shares its **ingress port** (CPU ports run at PCIe speed, GPU ports at
//! NVLink speed; a transfer is limited by the slower of the two ports it
//! crosses). Small request packets and trailing MACs travel on per-pair
//! **control virtual channels**, separate from bulk data — mirroring the
//! request/response VC split real interconnects use for protocol deadlock
//! freedom, and keeping tiny control messages from head-of-line blocking
//! behind bulk data in the FIFO occupancy model.
//!
//! The fabric shape is configurable ([`TopologyKind`]): fully connected
//! (the paper's evaluated system, every GPU pair one direct hop), a ring
//! (messages forward through intermediate GPUs), or a switch hierarchy
//! (messages cross leaf/root switch ports). Multi-hop shapes charge every
//! byte — payload *and* security metadata — once per hop crossed, so the
//! per-hop amplification of the metadata overhead is directly measurable
//! in [`Topology::traffic_totals`]. Routes come from a static
//! [`RoutingTable`]; intermediate hops only forward ciphertext, so the
//! fabric never needs keys (encryption, MACs and replay protection stay
//! end-to-end between the communicating pair).

use crate::link::{TrafficClass, TrafficTotals};
use crate::routing::{RoutingTable, Waypoint};
use crate::timeq::{Busy, TimedServer, Vc};
use mgpu_types::{
    ByteSize, Cycle, DenseNodeMap, Duration, NodeId, PairId, PairTable, SystemConfig,
};

/// The full interconnect: per-waypoint data ports plus per-pair control
/// VCs, routed over the configured fabric shape.
///
/// # Examples
///
/// ```
/// use mgpu_sim::topology::Topology;
/// use mgpu_sim::link::TrafficClass;
/// use mgpu_types::{ByteSize, Cycle, NodeId, PairId, SystemConfig};
///
/// let mut topo = Topology::new(&SystemConfig::paper_4gpu());
/// let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(2));
/// let arrival = topo.transmit(
///     pair, Cycle::ZERO, &[(ByteSize::CACHELINE, TrafficClass::Data)]);
/// assert!(arrival > Cycle::ZERO);
/// ```
#[derive(Debug)]
pub struct Topology {
    /// Outgoing data port per node (accounts traffic totals; every hop's
    /// bytes are charged to the port they leave through). Dense-indexed by
    /// node id — port lookups sit on the per-hop transmit path. Egress is
    /// where data-VC credits apply: all fabric backpressure is exerted at
    /// the port a message leaves through.
    node_egress: DenseNodeMap<TimedServer>,
    /// Incoming data port per node (occupancy only; zero latency so each
    /// hop's propagation delay is charged once, at its egress). Always
    /// unbounded: backpressure lives at egress, never at ingress.
    node_ingress: DenseNodeMap<TimedServer>,
    /// Outgoing data port per switch, indexed by switch number.
    switch_egress: Vec<TimedServer>,
    /// Incoming data port per switch, indexed by switch number.
    switch_ingress: Vec<TimedServer>,
    /// Small-message control VC per directed pair. Multi-hop pairs get a
    /// hop-scaled propagation latency and hop-scaled byte accounting.
    /// Finite ctrl-VC credits stall the *sender* (service start shifts to
    /// the credit-free cycle) so control sends stay infallible.
    ctrl: PairTable<TimedServer>,
    routes: RoutingTable,
    gpu_count: u16,
}

impl Topology {
    /// Builds the topology for `config`.
    #[must_use]
    pub fn new(config: &SystemConfig) -> Self {
        let routes = RoutingTable::new(config.topology, config.gpu_count);
        let data_credits = config.flow.data_vc_credits;
        let ctrl_credits = config.flow.ctrl_vc_credits;
        let mut node_egress = DenseNodeMap::with_gpu_count(config.gpu_count);
        let mut node_ingress = DenseNodeMap::with_gpu_count(config.gpu_count);
        let mut ctrl = PairTable::new();
        for node in NodeId::all(config.gpu_count) {
            let port_bw = if node.is_cpu() {
                config.pcie_bytes_per_cycle
            } else {
                config.gpu_link_bytes_per_cycle
            };
            node_egress.insert(
                node,
                TimedServer::new(port_bw, config.link_latency, data_credits, None),
            );
            node_ingress.insert(node, TimedServer::unbounded(port_bw, Duration::ZERO));
            for dst in node.peers(config.gpu_count) {
                let pair = PairId::new(node, dst);
                let bw = if pair.involves_cpu() {
                    config.pcie_bytes_per_cycle
                } else {
                    config.gpu_link_bytes_per_cycle
                };
                let hops = routes.hops(pair) as u64;
                let latency = Duration::cycles(config.link_latency.as_u64() * hops);
                ctrl.insert(pair, TimedServer::new(bw, latency, None, ctrl_credits));
            }
        }
        // Switch ports run at fabric (NVLink) speed.
        let switch_egress = (0..routes.switch_count())
            .map(|_| {
                TimedServer::new(
                    config.gpu_link_bytes_per_cycle,
                    config.link_latency,
                    data_credits,
                    None,
                )
            })
            .collect();
        let switch_ingress = (0..routes.switch_count())
            .map(|_| TimedServer::unbounded(config.gpu_link_bytes_per_cycle, Duration::ZERO))
            .collect();
        Topology {
            node_egress,
            node_ingress,
            switch_egress,
            switch_ingress,
            ctrl,
            routes,
            gpu_count: config.gpu_count,
        }
    }

    /// The egress port of waypoint `w` (hot path: O(1) dense index).
    fn egress_mut(&mut self, w: Waypoint) -> &mut TimedServer {
        match w {
            Waypoint::Node(n) => self.node_egress.get_mut(n).expect("waypoint within fabric"),
            Waypoint::Switch(s) => self
                .switch_egress
                .get_mut(usize::from(s))
                .expect("waypoint within fabric"),
        }
    }

    /// The ingress port of waypoint `w` (hot path: O(1) dense index).
    fn ingress_mut(&mut self, w: Waypoint) -> &mut TimedServer {
        match w {
            Waypoint::Node(n) => self
                .node_ingress
                .get_mut(n)
                .expect("waypoint within fabric"),
            Waypoint::Switch(s) => self
                .switch_ingress
                .get_mut(usize::from(s))
                .expect("waypoint within fabric"),
        }
    }

    /// The static routing table of this fabric.
    #[must_use]
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// Links a message from `pair.src` to `pair.dst` crosses.
    ///
    /// # Panics
    ///
    /// Panics if `pair` references a node outside the system.
    #[must_use]
    pub fn hops(&self, pair: PairId) -> usize {
        self.routes.hops(pair)
    }

    /// The egress data port of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the system.
    #[must_use]
    pub fn egress(&self, node: NodeId) -> &TimedServer {
        self.node_egress.get(node).expect("node within system")
    }

    /// The ingress data port of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the system.
    #[must_use]
    pub fn ingress(&self, node: NodeId) -> &TimedServer {
        self.node_ingress.get(node).expect("node within system")
    }

    /// The egress port of switch `s` (switch fabrics only).
    ///
    /// # Panics
    ///
    /// Panics if the fabric has no switch `s`.
    #[must_use]
    pub fn switch_egress(&self, s: u16) -> &TimedServer {
        self.switch_egress
            .get(usize::from(s))
            .expect("switch within fabric")
    }

    /// The control VC for `pair`.
    ///
    /// # Panics
    ///
    /// Panics if `pair` references a node outside the system.
    #[must_use]
    pub fn ctrl(&self, pair: PairId) -> &TimedServer {
        self.ctrl.get(pair).expect("pair within system")
    }

    /// Books a multi-part message onto the egress port of waypoint `hop`
    /// on `pair`'s route (0 = the source node). Bytes are accounted to
    /// that port — per-hop accounting is what makes shared-link metadata
    /// amplification measurable. Returns when the last byte reaches the
    /// next waypoint.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is outside the system or `hop` is past the last
    /// link of the route.
    pub fn depart(
        &mut self,
        pair: PairId,
        hop: usize,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Cycle {
        assert!(hop < self.routes.hops(pair), "hop within route");
        let w = self.routes.route(pair)[hop];
        self.egress_mut(w)
            .serve_parts_blocking(Vc::Data, now, parts)
            .done
    }

    /// Credit-checked variant of [`Topology::depart`]: requests a data-VC
    /// ticket on the hop's egress server. `Err` is the typed credit
    /// reject carrying the exact retry cycle — event-driven callers
    /// reschedule then instead of re-polling.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is outside the system or `hop` is past the last
    /// link of the route.
    pub fn try_depart(
        &mut self,
        pair: PairId,
        hop: usize,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Result<Cycle, Busy> {
        assert!(hop < self.routes.hops(pair), "hop within route");
        let w = self.routes.route(pair)[hop];
        self.egress_mut(w)
            .serve_parts(Vc::Data, now, parts)
            .map(|t| t.done)
    }

    /// Non-mutating data-VC admission probe on the egress server of
    /// waypoint `hop` of `pair`'s route: would [`Topology::try_depart`]
    /// at `now` be granted? Lets callers order side effects (e.g. ACK
    /// window reservations) after the egress admission decision without
    /// consuming the credit.
    pub fn egress_ready(&self, pair: PairId, hop: usize, now: Cycle) -> Result<(), Busy> {
        assert!(hop < self.routes.hops(pair), "hop within route");
        match self.routes.route(pair)[hop] {
            Waypoint::Node(n) => self.node_egress.get(n).expect("waypoint within fabric"),
            Waypoint::Switch(sw) => self
                .switch_egress
                .get(usize::from(sw))
                .expect("waypoint within fabric"),
        }
        .check(Vc::Data, now)
    }

    /// Occupies the ingress port of waypoint `hop` on `pair`'s route
    /// (1 = first waypoint after the source; `hops` = the destination).
    /// No byte accounting: the bytes were counted at the egress port they
    /// left. Returns when the last byte is through.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is outside the system or `hop` is 0 or past the
    /// destination.
    pub fn arrive(&mut self, pair: PairId, hop: usize, now: Cycle, bytes: ByteSize) -> Cycle {
        assert!(
            hop >= 1 && hop <= self.routes.hops(pair),
            "hop within route"
        );
        let w = self.routes.route(pair)[hop];
        self.ingress_mut(w)
            .occupy(Vc::Data, now, bytes)
            .expect("ingress ports are unbounded")
            .done
    }

    /// Transmits a multi-part data message end to end: serializes through
    /// every hop of the route (store-and-forward), occupying each
    /// waypoint's ingress and egress ports in turn. Returns when the last
    /// byte is received at the destination.
    pub fn transmit(
        &mut self,
        pair: PairId,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Cycle {
        let total: ByteSize = parts.iter().map(|(b, _)| *b).sum();
        let hops = self.routes.hops(pair);
        let mut t = self.depart(pair, 0, now, parts);
        for hop in 1..=hops {
            t = self.arrive(pair, hop, t, total);
            if hop < hops {
                t = self.depart(pair, hop, t, parts);
            }
        }
        t
    }

    /// Books only the first egress leg of a data transmission from `src`;
    /// returns when the last byte arrives at the next waypoint. Use
    /// together with [`Topology::ingress_occupy`] when the ingress booking
    /// should happen at arrival time (event-driven callers). Multi-hop
    /// callers should prefer [`Topology::depart`]/[`Topology::arrive`].
    pub fn transmit_egress(
        &mut self,
        src: NodeId,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Cycle {
        self.node_egress
            .get_mut(src)
            .expect("src within system")
            .serve_parts_blocking(Vc::Data, now, parts)
            .done
    }

    /// Books `bytes` on `dst`'s ingress port at `now`; returns when the
    /// last byte is through.
    pub fn ingress_occupy(&mut self, dst: NodeId, now: Cycle, bytes: ByteSize) -> Cycle {
        self.node_ingress
            .get_mut(dst)
            .expect("dst within system")
            .occupy(Vc::Data, now, bytes)
            .expect("ingress ports are unbounded")
            .done
    }

    /// Transmits a message over the pair's control VC (requests, trailing
    /// MACs). The VC's propagation latency covers the whole route; on
    /// multi-hop pairs the bytes are additionally charged once per extra
    /// hop so control metadata shows the same per-hop amplification as
    /// data.
    pub fn transmit_ctrl(
        &mut self,
        pair: PairId,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Cycle {
        let hops = self.routes.hops(pair) as u64;
        let vc = self.ctrl.get_mut(pair).expect("pair within system");
        let arrival = vc.serve_parts_blocking(Vc::Ctrl, now, parts).done;
        for &(bytes, class) in parts {
            if hops > 1 {
                vc.charge_background(bytes * (hops - 1), class);
            }
        }
        arrival
    }

    /// Charges background (non-queueing) traffic on a pair's control VC,
    /// once per hop of the pair's route.
    pub fn charge_background(&mut self, pair: PairId, bytes: ByteSize, class: TrafficClass) {
        let hops = self.routes.hops(pair) as u64;
        self.ctrl
            .get_mut(pair)
            .expect("pair within system")
            .charge_background(bytes * hops, class);
    }

    /// Number of GPUs in the system.
    #[must_use]
    pub fn gpu_count(&self) -> u16 {
        self.gpu_count
    }

    /// Number of directed control VCs.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.ctrl.len()
    }

    /// Minimum propagation latency over every link that can carry a
    /// message *between* waypoints: all egress data ports (node and
    /// switch) and all control VCs. Ingress ports are excluded — they have
    /// zero latency by construction, and an ingress booking happens on the
    /// same waypoint (hence the same shard) as the arrival event that
    /// triggers it, so it never bounds a cross-shard delay.
    ///
    /// This is the conservative-synchronization lookahead: any event a
    /// handler at cycle `c` schedules on a *different* waypoint fires at
    /// `c + min_crossing_latency()` or later.
    #[must_use]
    pub fn min_crossing_latency(&self) -> Duration {
        self.node_egress
            .values()
            .chain(self.switch_egress.iter())
            .chain(self.ctrl.values())
            .map(TimedServer::latency)
            .min()
            .unwrap_or(Duration::ZERO)
    }

    /// Aggregated traffic totals across the system, counted **per hop**:
    /// data bytes are accounted at every egress port they cross (node and
    /// switch); control/ACK bytes at their VC, scaled by route length.
    #[must_use]
    pub fn traffic_totals(&self) -> TrafficTotals {
        let mut totals = TrafficTotals::default();
        for link in self
            .node_egress
            .values()
            .chain(self.switch_egress.iter())
            .chain(self.ctrl.values())
        {
            totals.merge(link.totals());
        }
        totals
    }

    /// Records `n` adversary-tampered crossings against `src`'s egress
    /// port. All of a node's injected faults are charged to its egress
    /// link regardless of which message leg (block, trailer or returning
    /// ACK) was hit — a deliberate simplification that keeps per-node
    /// attribution without per-leg bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `src` is outside the system.
    pub fn note_tampered_egress(&mut self, src: NodeId, n: u64) {
        self.node_egress
            .get_mut(src)
            .expect("src within system")
            .note_tampered(n);
    }

    /// Total adversary-tampered crossings across all egress ports.
    #[must_use]
    pub fn tampered_total(&self) -> u64 {
        self.node_egress
            .values()
            .chain(self.switch_egress.iter())
            .map(TimedServer::tampered_messages)
            .sum()
    }

    /// Settles every port at drain time `now`: reclaims all credits whose
    /// grants completed by `now` on both VCs of every server, so the
    /// conservation invariant `credits_issued == credits_returned` can be
    /// checked once the fabric is idle. Reclaim is otherwise lazy — it
    /// happens on the next serve attempt — so an idle port may hold
    /// settled-but-unreturned credits indefinitely without this call.
    pub fn settle(&mut self, now: Cycle) {
        for server in self
            .node_egress
            .values_mut()
            .chain(self.node_ingress.values_mut())
            .chain(self.switch_egress.iter_mut())
            .chain(self.switch_ingress.iter_mut())
            .chain(self.ctrl.values_mut())
        {
            server.settle(now);
        }
    }

    /// Iterates over `(node, egress port)` entries in ascending node
    /// order — the per-node data-traffic breakdown (switch ports excluded;
    /// see [`Topology::iter_switch_egress`]).
    pub fn iter_egress(&self) -> impl Iterator<Item = (NodeId, &TimedServer)> {
        self.node_egress.iter()
    }

    /// Iterates over `(switch, egress port)` entries in switch order —
    /// the per-switch forwarding-traffic breakdown (empty outside
    /// [`TopologyKind::Switch`]).
    pub fn iter_switch_egress(&self) -> impl Iterator<Item = (u16, &TimedServer)> {
        self.switch_egress
            .iter()
            .enumerate()
            .map(|(s, srv)| (s as u16, srv))
    }

    /// Control-VC bytes granted so far on pairs leaving `src`, summed
    /// over every peer. All of a node's control messages share its
    /// physical port even though they ride per-pair VCs, so this sum is
    /// the byte counter a tap co-located on that port would read
    /// (chaff included — shaping padding is indistinguishable on the
    /// wire).
    #[must_use]
    pub fn ctrl_bytes_from(&self, src: NodeId) -> u64 {
        self.ctrl
            .iter()
            .filter(|(pair, _)| pair.src == src)
            .map(|(_, vc)| vc.vc_bytes(Vc::Ctrl))
            .sum()
    }

    /// Control-VC grants issued so far on pairs leaving `src` — the
    /// count of serviced control messages visible at the node's port.
    #[must_use]
    pub fn ctrl_grants_from(&self, src: NodeId) -> u64 {
        self.ctrl
            .iter()
            .filter(|(pair, _)| pair.src == src)
            .map(|(_, vc)| vc.grants(Vc::Ctrl))
            .sum()
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    //! Shared topology fixtures for this crate's unit tests.
    use super::Topology;
    use mgpu_types::{SystemConfig, TopologyKind};

    /// The paper's 4-GPU fully-connected system.
    pub fn paper_topo() -> Topology {
        Topology::new(&SystemConfig::paper_4gpu())
    }

    /// A paper-parameter system with `gpus` GPUs on `kind`.
    pub fn topo_for(kind: TopologyKind, gpus: u16) -> Topology {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.gpu_count = gpus;
        cfg.topology = kind;
        Topology::new(&cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::{paper_topo, topo_for};
    use super::*;
    use mgpu_types::TopologyKind;

    #[test]
    fn four_gpu_port_and_vc_counts() {
        let topo = paper_topo();
        assert_eq!(topo.link_count(), 20); // 5 nodes x 4 peers, directed
        assert_eq!(topo.gpu_count(), 4);
        assert_eq!(topo.iter_egress().count(), 5);
        assert_eq!(topo.iter_switch_egress().count(), 0);
    }

    #[test]
    fn port_speeds_follow_node_kind() {
        let topo = paper_topo();
        assert_eq!(topo.egress(NodeId::CPU).bandwidth(), 32);
        assert_eq!(topo.ingress(NodeId::CPU).bandwidth(), 32);
        assert_eq!(topo.egress(NodeId::gpu(1)).bandwidth(), 50);
        assert_eq!(
            topo.ctrl(PairId::new(NodeId::CPU, NodeId::gpu(1)))
                .bandwidth(),
            32
        );
        assert_eq!(
            topo.ctrl(PairId::new(NodeId::gpu(1), NodeId::gpu(2)))
                .bandwidth(),
            50
        );
    }

    #[test]
    fn gpu_to_cpu_is_pcie_limited_at_ingress() {
        let mut topo = paper_topo();
        let pair = PairId::new(NodeId::gpu(1), NodeId::CPU);
        // 64 B: egress at 50 B/cy (2 cy) + 100 cy latency, then CPU ingress
        // at 32 B/cy (2 cy).
        let arrival = topo.transmit(
            pair,
            Cycle::ZERO,
            &[(ByteSize::CACHELINE, TrafficClass::Data)],
        );
        assert_eq!(arrival, Cycle::new(2 + 100 + 2));
    }

    #[test]
    fn egress_port_is_shared_across_destinations() {
        let mut topo = paper_topo();
        // 500 B to GPU2 occupies GPU1's egress for 10 cycles.
        topo.transmit(
            PairId::new(NodeId::gpu(1), NodeId::gpu(2)),
            Cycle::ZERO,
            &[(ByteSize::new(500), TrafficClass::Data)],
        );
        // A message to a *different* destination queues behind it.
        let b = topo.transmit(
            PairId::new(NodeId::gpu(1), NodeId::gpu(3)),
            Cycle::ZERO,
            &[(ByteSize::new(50), TrafficClass::Data)],
        );
        assert_eq!(b, Cycle::new(10 + 1 + 100 + 1));
    }

    #[test]
    fn ingress_port_is_shared_across_sources() {
        let mut topo = paper_topo();
        // Two 5000 B messages from different sources to GPU1 arriving
        // together: the second serializes behind the first at ingress.
        let a = topo.transmit(
            PairId::new(NodeId::gpu(2), NodeId::gpu(1)),
            Cycle::ZERO,
            &[(ByteSize::new(5000), TrafficClass::Data)],
        );
        let b = topo.transmit(
            PairId::new(NodeId::gpu(3), NodeId::gpu(1)),
            Cycle::ZERO,
            &[(ByteSize::new(5000), TrafficClass::Data)],
        );
        assert_eq!(a, Cycle::new(100 + 100 + 100));
        assert_eq!(b, Cycle::new(100 + 100 + 200));
    }

    #[test]
    fn ctrl_vc_does_not_contend_with_data() {
        let mut topo = paper_topo();
        let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(2));
        for _ in 0..100 {
            topo.transmit(
                pair,
                Cycle::ZERO,
                &[(ByteSize::CACHELINE, TrafficClass::Data)],
            );
        }
        // A control message still goes through immediately.
        let arrival = topo.transmit_ctrl(
            pair,
            Cycle::ZERO,
            &[(ByteSize::new(16), TrafficClass::Data)],
        );
        assert_eq!(arrival, Cycle::new(1 + 100));
    }

    #[test]
    fn traffic_totals_count_data_once() {
        let mut topo = paper_topo();
        topo.transmit(
            PairId::new(NodeId::gpu(1), NodeId::gpu(2)),
            Cycle::ZERO,
            &[(ByteSize::new(64), TrafficClass::Data)],
        );
        topo.transmit_ctrl(
            PairId::new(NodeId::gpu(1), NodeId::gpu(2)),
            Cycle::ZERO,
            &[(ByteSize::new(16), TrafficClass::Data)],
        );
        topo.charge_background(
            PairId::new(NodeId::gpu(2), NodeId::gpu(1)),
            ByteSize::new(16),
            TrafficClass::Ack,
        );
        let totals = topo.traffic_totals();
        assert_eq!(totals.get(TrafficClass::Data).as_u64(), 80);
        assert_eq!(totals.get(TrafficClass::Ack).as_u64(), 16);
    }

    #[test]
    fn tampered_crossings_accumulate_per_egress() {
        let mut topo = paper_topo();
        assert_eq!(topo.tampered_total(), 0);
        topo.note_tampered_egress(NodeId::gpu(1), 2);
        topo.note_tampered_egress(NodeId::gpu(3), 1);
        assert_eq!(topo.egress(NodeId::gpu(1)).tampered_messages(), 2);
        assert_eq!(topo.egress(NodeId::gpu(2)).tampered_messages(), 0);
        assert_eq!(topo.tampered_total(), 3);
    }

    #[test]
    #[should_panic(expected = "within system")]
    fn out_of_system_pair_panics() {
        let topo = paper_topo();
        let _ = topo.ctrl(PairId::new(NodeId::gpu(1), NodeId::gpu(9)));
    }

    #[test]
    fn ring_transit_charges_each_hop() {
        let mut topo = topo_for(TopologyKind::Ring, 8);
        let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(3));
        assert_eq!(topo.hops(pair), 2);
        let arrival = topo.transmit(
            pair,
            Cycle::ZERO,
            &[(ByteSize::CACHELINE, TrafficClass::Data)],
        );
        // Two store-and-forward legs: (2 ser + 100 lat + 2 ingress) x 2.
        assert_eq!(arrival, Cycle::new(2 * (2 + 100 + 2)));
        // 64 B counted once per hop.
        assert_eq!(
            topo.traffic_totals().get(TrafficClass::Data).as_u64(),
            2 * 64
        );
        // The forwarding GPU's egress carried the transit bytes.
        assert_eq!(
            topo.egress(NodeId::gpu(2))
                .totals()
                .get(TrafficClass::Data)
                .as_u64(),
            64
        );
    }

    #[test]
    fn ring_forwarding_contends_with_own_traffic() {
        let mut topo = topo_for(TopologyKind::Ring, 8);
        // GPU2 is busy sending its own 500 B when GPU1->GPU3 transit
        // traffic reaches it: the transit queues behind it.
        topo.transmit(
            PairId::new(NodeId::gpu(2), NodeId::gpu(3)),
            Cycle::ZERO,
            &[(ByteSize::new(50_000), TrafficClass::Data)],
        );
        let free = topo.egress(NodeId::gpu(2)).next_free();
        let arrival = topo.transmit(
            PairId::new(NodeId::gpu(1), NodeId::gpu(3)),
            Cycle::ZERO,
            &[(ByteSize::CACHELINE, TrafficClass::Data)],
        );
        assert!(
            arrival > free,
            "transit {arrival} should queue behind GPU2's own send ending {free}"
        );
    }

    #[test]
    fn switch_transit_uses_switch_ports() {
        let mut topo = topo_for(TopologyKind::Switch { radix: 4 }, 8);
        let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(5));
        assert_eq!(topo.hops(pair), 4); // gpu -> leaf -> root -> leaf -> gpu
        topo.transmit(
            pair,
            Cycle::ZERO,
            &[(ByteSize::CACHELINE, TrafficClass::Data)],
        );
        assert_eq!(
            topo.traffic_totals().get(TrafficClass::Data).as_u64(),
            4 * 64
        );
        let switch_bytes: u64 = topo
            .iter_switch_egress()
            .map(|(_, l)| l.totals().get(TrafficClass::Data).as_u64())
            .sum();
        assert_eq!(switch_bytes, 3 * 64); // leaf0, root, leaf1
    }

    #[test]
    fn ctrl_latency_and_accounting_scale_with_hops() {
        let mut topo = topo_for(TopologyKind::Ring, 8);
        let far = PairId::new(NodeId::gpu(1), NodeId::gpu(4)); // 3 hops
        let arrival =
            topo.transmit_ctrl(far, Cycle::ZERO, &[(ByteSize::new(16), TrafficClass::Mac)]);
        // 1 cy serialization + 3 x 100 cy propagation.
        assert_eq!(arrival, Cycle::new(1 + 300));
        assert_eq!(topo.traffic_totals().get(TrafficClass::Mac).as_u64(), 48);
        topo.charge_background(far, ByteSize::new(8), TrafficClass::Ack);
        assert_eq!(topo.traffic_totals().get(TrafficClass::Ack).as_u64(), 24);
    }

    #[test]
    fn min_crossing_latency_is_the_link_latency() {
        // All waypoint-to-waypoint links (egress ports, ctrl VCs) carry at
        // least the configured per-hop latency; ingress ports (zero
        // latency) are excluded from the lookahead.
        for kind in [
            TopologyKind::FullyConnected,
            TopologyKind::Ring,
            TopologyKind::Switch { radix: 4 },
        ] {
            let topo = topo_for(kind, 8);
            assert_eq!(topo.min_crossing_latency(), Duration::cycles(100));
        }
    }

    #[test]
    fn fully_connected_matches_legacy_split_path() {
        // depart/arrive on a 1-hop route must equal the legacy
        // transmit_egress + ingress_occupy sequence.
        let mut a = paper_topo();
        let mut b = paper_topo();
        let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(2));
        let parts = [(ByteSize::CACHELINE, TrafficClass::Data)];
        let at_a = a.depart(pair, 0, Cycle::ZERO, &parts);
        let done_a = a.arrive(pair, 1, at_a, ByteSize::CACHELINE);
        let at_b = b.transmit_egress(NodeId::gpu(1), Cycle::ZERO, &parts);
        let done_b = b.ingress_occupy(NodeId::gpu(2), at_b, ByteSize::CACHELINE);
        assert_eq!(at_a, at_b);
        assert_eq!(done_a, done_b);
        assert_eq!(a.traffic_totals(), b.traffic_totals());
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Per-class byte conservation: for every injected message,
            /// the system-wide totals grow by exactly `bytes x hops` in
            /// that message's class — nothing is dropped, duplicated, or
            /// misclassified anywhere on the route.
            #[test]
            fn bytes_injected_equal_bytes_accounted_per_hop(
                shape in (0u8..3, 3u16..13),
                msgs in proptest::collection::vec(
                    ((1u16..64, 1u16..64), (1u64..4096, 0u8..6)), 1..40),
            ) {
                let (sel, gpus) = shape;
                let kind = match sel {
                    0 => TopologyKind::FullyConnected,
                    1 => TopologyKind::Ring,
                    _ => TopologyKind::Switch { radix: 4 },
                };
                let mut topo = topo_for(kind, gpus);
                let mut expected = TrafficTotals::default();
                for ((s, d), (bytes, class_sel)) in msgs {
                    let src = NodeId::gpu((s - 1) % gpus + 1);
                    let dst = NodeId::gpu((d - 1) % gpus + 1);
                    prop_assume!(src != dst);
                    let pair = PairId::new(src, dst);
                    let class = TrafficClass::ALL[usize::from(class_sel) % 6];
                    let hops = topo.hops(pair) as u64;
                    topo.transmit(pair, Cycle::ZERO, &[(ByteSize::new(bytes), class)]);
                    expected.add(class, ByteSize::new(bytes * hops));
                }
                prop_assert_eq!(topo.traffic_totals(), expected);
            }

            /// Control-VC accounting follows the same x hops rule.
            #[test]
            fn ctrl_bytes_scale_with_route_length(
                shape in (0u8..3, 3u16..13),
                msgs in proptest::collection::vec(
                    ((1u16..64, 1u16..64), 1u64..256), 1..40),
            ) {
                let (sel, gpus) = shape;
                let kind = match sel {
                    0 => TopologyKind::FullyConnected,
                    1 => TopologyKind::Ring,
                    _ => TopologyKind::Switch { radix: 4 },
                };
                let mut topo = topo_for(kind, gpus);
                let mut expected = 0u64;
                for ((s, d), bytes) in msgs {
                    let src = NodeId::gpu((s - 1) % gpus + 1);
                    let dst = NodeId::gpu((d - 1) % gpus + 1);
                    prop_assume!(src != dst);
                    let pair = PairId::new(src, dst);
                    let hops = topo.hops(pair) as u64;
                    topo.transmit_ctrl(
                        pair, Cycle::ZERO, &[(ByteSize::new(bytes), TrafficClass::Mac)]);
                    expected += bytes * hops;
                }
                prop_assert_eq!(topo.traffic_totals().get(TrafficClass::Mac).as_u64(), expected);
            }

            /// Credit conservation and no-starvation under finite VC
            /// credits: every message injected through the typed-reject
            /// retry protocol eventually serves (each `Busy` carries a
            /// strictly-later retry cycle, and the retry count stays
            /// bounded), and once the fabric drains, every server on
            /// every route has returned exactly the credits it issued on
            /// both VCs.
            #[test]
            fn finite_credits_conserve_and_never_starve(
                shape in ((0u8..3, 3u16..13), (1u32..4, 1u32..3)),
                msgs in proptest::collection::vec(
                    ((1u16..64, 1u16..64), (1u64..2048, 0u64..400)), 1..40),
            ) {
                let ((sel, gpus), (data_credits, ctrl_credits)) = shape;
                let kind = match sel {
                    0 => TopologyKind::FullyConnected,
                    1 => TopologyKind::Ring,
                    _ => TopologyKind::Switch { radix: 4 },
                };
                let mut cfg = SystemConfig::paper_4gpu();
                cfg.gpu_count = gpus;
                cfg.topology = kind;
                cfg.flow.data_vc_credits = Some(data_credits);
                cfg.flow.ctrl_vc_credits = Some(ctrl_credits);
                let mut topo = Topology::new(&cfg);

                let mut horizon = Cycle::ZERO;
                for ((s, d), (bytes, start)) in msgs {
                    let src = NodeId::gpu((s - 1) % gpus + 1);
                    let dst = NodeId::gpu((d - 1) % gpus + 1);
                    prop_assume!(src != dst);
                    let pair = PairId::new(src, dst);
                    let parts = [(ByteSize::new(bytes), TrafficClass::Data)];
                    let mut now = Cycle::new(start);
                    for hop in 0..topo.hops(pair) {
                        let mut retries = 0u32;
                        let at = loop {
                            match topo.try_depart(pair, hop, now, &parts) {
                                Ok(done) => break done,
                                Err(busy) => {
                                    prop_assert!(
                                        busy.retry_at > now,
                                        "Busy must carry a strictly-later retry cycle"
                                    );
                                    now = busy.retry_at;
                                    retries += 1;
                                    prop_assert!(
                                        retries <= 64,
                                        "no starvation: retry count stays bounded"
                                    );
                                }
                            }
                        };
                        now = topo.arrive(pair, hop + 1, at, ByteSize::new(bytes));
                    }
                    let ctrl_done = topo.transmit_ctrl(
                        pair, Cycle::new(start), &[(ByteSize::new(16), TrafficClass::Mac)]);
                    horizon = horizon.max(now).max(ctrl_done);
                }

                topo.settle(Cycle::new(horizon.as_u64() + 1));
                let drained = Cycle::new(horizon.as_u64() + 1);
                let check = |server: &TimedServer, label: &str| {
                    for vc in [Vc::Data, Vc::Ctrl] {
                        assert_eq!(
                            server.credits_issued(vc),
                            server.credits_returned(vc),
                            "{label}: credits leaked on {vc:?}"
                        );
                        assert_eq!(
                            server.credits_issued(vc),
                            server.grants(vc),
                            "{label}: issued credits must equal grants on {vc:?}"
                        );
                        assert_eq!(
                            server.occupancy(vc, drained), 0,
                            "{label}: no credits held after drain on {vc:?}"
                        );
                    }
                };
                for (node, server) in topo.iter_egress() {
                    check(server, &format!("egress {node}"));
                }
                for (id, server) in topo.iter_switch_egress() {
                    check(server, &format!("switch egress {id}"));
                }
                for node in NodeId::all(gpus) {
                    check(topo.ingress(node), &format!("ingress {node}"));
                    for dst in node.peers(gpus) {
                        let pair = PairId::new(node, dst);
                        check(topo.ctrl(pair), &format!("ctrl {pair:?}"));
                    }
                }
            }
        }
    }
}
