//! System topology: CPU hub plus switch-fabric GPU interconnect.
//!
//! The paper's target architecture (Fig. 2, Table III) connects every GPU
//! to the CPU over PCIe v4 (32 GB/s) and GPUs to each other over an
//! NVLink2-class fabric (50 GB/s). At the 1 GHz shader clock those are
//! 32 B/cycle and 50 B/cycle.
//!
//! Bandwidth is a *per-port* resource, as in real NVLink/PCIe systems: all
//! data a node sends shares its **egress port**, and all data it receives
//! shares its **ingress port** (CPU ports run at PCIe speed, GPU ports at
//! NVLink speed; a transfer is limited by the slower of the two ports it
//! crosses). Small request packets and trailing MACs travel on per-pair
//! **control virtual channels**, separate from bulk data — mirroring the
//! request/response VC split real interconnects use for protocol deadlock
//! freedom, and keeping tiny control messages from head-of-line blocking
//! behind bulk data in the FIFO occupancy model.

use crate::link::{Link, TrafficClass, TrafficTotals};
use mgpu_types::{ByteSize, Cycle, Duration, NodeId, PairId, SystemConfig};
use std::collections::HashMap;

/// The full interconnect: per-node data ports plus per-pair control VCs.
///
/// # Examples
///
/// ```
/// use mgpu_sim::topology::Topology;
/// use mgpu_sim::link::TrafficClass;
/// use mgpu_types::{ByteSize, Cycle, NodeId, PairId, SystemConfig};
///
/// let mut topo = Topology::new(&SystemConfig::paper_4gpu());
/// let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(2));
/// let arrival = topo.transmit(
///     pair, Cycle::ZERO, &[(ByteSize::CACHELINE, TrafficClass::Data)]);
/// assert!(arrival > Cycle::ZERO);
/// ```
#[derive(Debug)]
pub struct Topology {
    /// Outgoing data port per node (accounts traffic totals).
    egress: HashMap<NodeId, Link>,
    /// Incoming data port per node (occupancy only; zero latency so the
    /// propagation delay is charged once, at egress).
    ingress: HashMap<NodeId, Link>,
    /// Small-message control VC per directed pair.
    ctrl: HashMap<PairId, Link>,
    gpu_count: u16,
}

impl Topology {
    /// Builds the topology for `config`.
    #[must_use]
    pub fn new(config: &SystemConfig) -> Self {
        let mut egress = HashMap::new();
        let mut ingress = HashMap::new();
        let mut ctrl = HashMap::new();
        for node in NodeId::all(config.gpu_count) {
            let port_bw = if node.is_cpu() {
                config.pcie_bytes_per_cycle
            } else {
                config.gpu_link_bytes_per_cycle
            };
            egress.insert(node, Link::new(port_bw, config.link_latency));
            ingress.insert(node, Link::new(port_bw, Duration::ZERO));
            for dst in node.peers(config.gpu_count) {
                let pair = PairId::new(node, dst);
                let bw = if pair.involves_cpu() {
                    config.pcie_bytes_per_cycle
                } else {
                    config.gpu_link_bytes_per_cycle
                };
                ctrl.insert(pair, Link::new(bw, config.link_latency));
            }
        }
        Topology {
            egress,
            ingress,
            ctrl,
            gpu_count: config.gpu_count,
        }
    }

    /// The egress data port of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the system.
    #[must_use]
    pub fn egress(&self, node: NodeId) -> &Link {
        self.egress.get(&node).expect("node within system")
    }

    /// The ingress data port of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the system.
    #[must_use]
    pub fn ingress(&self, node: NodeId) -> &Link {
        self.ingress.get(&node).expect("node within system")
    }

    /// The control VC for `pair`.
    ///
    /// # Panics
    ///
    /// Panics if `pair` references a node outside the system.
    #[must_use]
    pub fn ctrl(&self, pair: PairId) -> &Link {
        self.ctrl.get(&pair).expect("pair within system")
    }

    /// Transmits a multi-part data message from `pair.src` to `pair.dst`:
    /// serializes through the source's egress port (propagation latency
    /// charged there), then through the destination's ingress port.
    /// Returns when the last byte is received.
    pub fn transmit(
        &mut self,
        pair: PairId,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Cycle {
        let at_ingress = self
            .egress
            .get_mut(&pair.src)
            .expect("src within system")
            .transmit_parts(now, parts);
        let total: ByteSize = parts.iter().map(|(b, _)| *b).sum();
        self.ingress
            .get_mut(&pair.dst)
            .expect("dst within system")
            .occupy(at_ingress, total)
    }

    /// Books only the egress half of a data transmission; returns when the
    /// last byte arrives at the destination's ingress port. Use together
    /// with [`Topology::ingress_occupy`] when the ingress booking should
    /// happen at arrival time (event-driven callers).
    pub fn transmit_egress(
        &mut self,
        src: NodeId,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Cycle {
        self.egress
            .get_mut(&src)
            .expect("src within system")
            .transmit_parts(now, parts)
    }

    /// Books `bytes` on `dst`'s ingress port at `now`; returns when the
    /// last byte is through.
    pub fn ingress_occupy(&mut self, dst: NodeId, now: Cycle, bytes: ByteSize) -> Cycle {
        self.ingress
            .get_mut(&dst)
            .expect("dst within system")
            .occupy(now, bytes)
    }

    /// Transmits a message over the pair's control VC (requests, trailing
    /// MACs).
    pub fn transmit_ctrl(
        &mut self,
        pair: PairId,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Cycle {
        self.ctrl
            .get_mut(&pair)
            .expect("pair within system")
            .transmit_parts(now, parts)
    }

    /// Charges background (non-queueing) traffic on a pair's control VC.
    pub fn charge_background(&mut self, pair: PairId, bytes: ByteSize, class: TrafficClass) {
        self.ctrl
            .get_mut(&pair)
            .expect("pair within system")
            .charge_background(bytes, class);
    }

    /// Number of GPUs in the system.
    #[must_use]
    pub fn gpu_count(&self) -> u16 {
        self.gpu_count
    }

    /// Number of directed control VCs.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.ctrl.len()
    }

    /// Aggregated traffic totals across the system. Data bytes are
    /// accounted once (at egress); control/ACK bytes at their VC.
    #[must_use]
    pub fn traffic_totals(&self) -> TrafficTotals {
        let mut totals = TrafficTotals::default();
        for link in self.egress.values().chain(self.ctrl.values()) {
            totals.merge(link.totals());
        }
        totals
    }

    /// Records `n` adversary-tampered crossings against `src`'s egress
    /// port. All of a node's injected faults are charged to its egress
    /// link regardless of which message leg (block, trailer or returning
    /// ACK) was hit — a deliberate simplification that keeps per-node
    /// attribution without per-leg bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `src` is outside the system.
    pub fn note_tampered_egress(&mut self, src: NodeId, n: u64) {
        self.egress
            .get_mut(&src)
            .expect("src within system")
            .note_tampered(n);
    }

    /// Total adversary-tampered crossings across all egress ports.
    #[must_use]
    pub fn tampered_total(&self) -> u64 {
        self.egress.values().map(Link::tampered_messages).sum()
    }

    /// Iterates over `(node, egress port)` entries in a deterministic
    /// order — the per-node data-traffic breakdown.
    pub fn iter_egress(&self) -> impl Iterator<Item = (NodeId, &Link)> {
        let mut nodes: Vec<_> = self.egress.keys().copied().collect();
        nodes.sort();
        nodes.into_iter().map(move |n| (n, &self.egress[&n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_gpu_port_and_vc_counts() {
        let topo = Topology::new(&SystemConfig::paper_4gpu());
        assert_eq!(topo.link_count(), 20); // 5 nodes x 4 peers, directed
        assert_eq!(topo.gpu_count(), 4);
        assert_eq!(topo.iter_egress().count(), 5);
    }

    #[test]
    fn port_speeds_follow_node_kind() {
        let topo = Topology::new(&SystemConfig::paper_4gpu());
        assert_eq!(topo.egress(NodeId::CPU).bandwidth(), 32);
        assert_eq!(topo.ingress(NodeId::CPU).bandwidth(), 32);
        assert_eq!(topo.egress(NodeId::gpu(1)).bandwidth(), 50);
        assert_eq!(
            topo.ctrl(PairId::new(NodeId::CPU, NodeId::gpu(1)))
                .bandwidth(),
            32
        );
        assert_eq!(
            topo.ctrl(PairId::new(NodeId::gpu(1), NodeId::gpu(2)))
                .bandwidth(),
            50
        );
    }

    #[test]
    fn gpu_to_cpu_is_pcie_limited_at_ingress() {
        let mut topo = Topology::new(&SystemConfig::paper_4gpu());
        let pair = PairId::new(NodeId::gpu(1), NodeId::CPU);
        // 64 B: egress at 50 B/cy (2 cy) + 100 cy latency, then CPU ingress
        // at 32 B/cy (2 cy).
        let arrival = topo.transmit(
            pair,
            Cycle::ZERO,
            &[(ByteSize::CACHELINE, TrafficClass::Data)],
        );
        assert_eq!(arrival, Cycle::new(2 + 100 + 2));
    }

    #[test]
    fn egress_port_is_shared_across_destinations() {
        let mut topo = Topology::new(&SystemConfig::paper_4gpu());
        // 500 B to GPU2 occupies GPU1's egress for 10 cycles.
        topo.transmit(
            PairId::new(NodeId::gpu(1), NodeId::gpu(2)),
            Cycle::ZERO,
            &[(ByteSize::new(500), TrafficClass::Data)],
        );
        // A message to a *different* destination queues behind it.
        let b = topo.transmit(
            PairId::new(NodeId::gpu(1), NodeId::gpu(3)),
            Cycle::ZERO,
            &[(ByteSize::new(50), TrafficClass::Data)],
        );
        assert_eq!(b, Cycle::new(10 + 1 + 100 + 1));
    }

    #[test]
    fn ingress_port_is_shared_across_sources() {
        let mut topo = Topology::new(&SystemConfig::paper_4gpu());
        // Two 5000 B messages from different sources to GPU1 arriving
        // together: the second serializes behind the first at ingress.
        let a = topo.transmit(
            PairId::new(NodeId::gpu(2), NodeId::gpu(1)),
            Cycle::ZERO,
            &[(ByteSize::new(5000), TrafficClass::Data)],
        );
        let b = topo.transmit(
            PairId::new(NodeId::gpu(3), NodeId::gpu(1)),
            Cycle::ZERO,
            &[(ByteSize::new(5000), TrafficClass::Data)],
        );
        assert_eq!(a, Cycle::new(100 + 100 + 100));
        assert_eq!(b, Cycle::new(100 + 100 + 200));
    }

    #[test]
    fn ctrl_vc_does_not_contend_with_data() {
        let mut topo = Topology::new(&SystemConfig::paper_4gpu());
        let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(2));
        for _ in 0..100 {
            topo.transmit(
                pair,
                Cycle::ZERO,
                &[(ByteSize::CACHELINE, TrafficClass::Data)],
            );
        }
        // A control message still goes through immediately.
        let arrival = topo.transmit_ctrl(
            pair,
            Cycle::ZERO,
            &[(ByteSize::new(16), TrafficClass::Data)],
        );
        assert_eq!(arrival, Cycle::new(1 + 100));
    }

    #[test]
    fn traffic_totals_count_data_once() {
        let mut topo = Topology::new(&SystemConfig::paper_4gpu());
        topo.transmit(
            PairId::new(NodeId::gpu(1), NodeId::gpu(2)),
            Cycle::ZERO,
            &[(ByteSize::new(64), TrafficClass::Data)],
        );
        topo.transmit_ctrl(
            PairId::new(NodeId::gpu(1), NodeId::gpu(2)),
            Cycle::ZERO,
            &[(ByteSize::new(16), TrafficClass::Data)],
        );
        topo.charge_background(
            PairId::new(NodeId::gpu(2), NodeId::gpu(1)),
            ByteSize::new(16),
            TrafficClass::Ack,
        );
        let totals = topo.traffic_totals();
        assert_eq!(totals.get(TrafficClass::Data).as_u64(), 80);
        assert_eq!(totals.get(TrafficClass::Ack).as_u64(), 16);
    }

    #[test]
    fn tampered_crossings_accumulate_per_egress() {
        let mut topo = Topology::new(&SystemConfig::paper_4gpu());
        assert_eq!(topo.tampered_total(), 0);
        topo.note_tampered_egress(NodeId::gpu(1), 2);
        topo.note_tampered_egress(NodeId::gpu(3), 1);
        assert_eq!(topo.egress(NodeId::gpu(1)).tampered_messages(), 2);
        assert_eq!(topo.egress(NodeId::gpu(2)).tampered_messages(), 0);
        assert_eq!(topo.tampered_total(), 3);
    }

    #[test]
    #[should_panic(expected = "within system")]
    fn out_of_system_pair_panics() {
        let topo = Topology::new(&SystemConfig::paper_4gpu());
        let _ = topo.ctrl(PairId::new(NodeId::gpu(1), NodeId::gpu(9)));
    }
}
