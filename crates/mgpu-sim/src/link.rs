//! Bandwidth-serialized interconnect link model.
//!
//! A [`Link`] is one direction of a full-duplex point-to-point channel
//! (PCIe lane group or NVLink brick). It models the two first-order effects
//! the paper's traffic analysis depends on:
//!
//! * **Serialization**: a message of `bytes` occupies the wire for
//!   `ceil(bytes / bytes_per_cycle)` cycles; messages queue behind one
//!   another.
//! * **Propagation latency**: a fixed pipeline delay added after
//!   serialization completes.
//!
//! The link also keeps per-category byte counters so experiments can split
//! traffic into data vs. security metadata (paper Figs. 12 and 23).

use mgpu_types::{ByteSize, Cycle, Duration};

/// Traffic categories for interconnect accounting.
///
/// `Data` is payload (cachelines and request headers that an unsecure
/// system would also send); the remaining categories are the security
/// metadata whose bandwidth cost the paper measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Ciphertext payload plus baseline message headers.
    Data,
    /// Message counters (MsgCTR) travelling with each block.
    Counter,
    /// Message authentication codes, batched or unbatched.
    Mac,
    /// Sender identifiers.
    SenderId,
    /// Acknowledgements used for replay protection.
    Ack,
    /// Batch framing (the 1 B length header of the batching scheme).
    BatchHeader,
    /// Constant-rate shaping padding on the ctrl VC (the passive-observer
    /// defense). Never emitted unless `DefenseConfig::constant_rate` is
    /// on; accounted separately so the defense's bandwidth overhead is
    /// directly measurable.
    Chaff,
}

impl TrafficClass {
    /// All categories, for iteration in reports.
    pub const ALL: [TrafficClass; 7] = [
        TrafficClass::Data,
        TrafficClass::Counter,
        TrafficClass::Mac,
        TrafficClass::SenderId,
        TrafficClass::Ack,
        TrafficClass::BatchHeader,
        TrafficClass::Chaff,
    ];

    /// Whether this category is security metadata (everything but data).
    #[must_use]
    pub fn is_metadata(self) -> bool {
        !matches!(self, TrafficClass::Data)
    }
}

/// A block's wire components travelling together, stored inline.
///
/// The engine's per-block hot path (NIC prepare → egress event → per-hop
/// transit) carries at most [`WireParts::CAPACITY`] parts (payload,
/// counter, MAC/batch framing, sender ID), so a fixed-capacity `Copy`
/// array replaces the `Vec` that used to cost one heap allocation per
/// transmitted block.
///
/// # Examples
///
/// ```
/// use mgpu_sim::link::{TrafficClass, WireParts};
/// use mgpu_types::ByteSize;
///
/// let mut parts = WireParts::of(ByteSize::new(72), TrafficClass::Data);
/// parts.push(ByteSize::new(8), TrafficClass::Mac);
/// assert_eq!(parts.len(), 2);
/// assert_eq!(parts.total(), ByteSize::new(80));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireParts {
    len: u8,
    items: [(ByteSize, TrafficClass); WireParts::CAPACITY],
}

impl WireParts {
    /// Maximum parts one block can carry (data + counter/sender-id +
    /// batch header + MAC).
    pub const CAPACITY: usize = 4;

    /// Creates an empty part list.
    #[must_use]
    pub fn new() -> Self {
        WireParts {
            len: 0,
            items: [(ByteSize::ZERO, TrafficClass::Data); WireParts::CAPACITY],
        }
    }

    /// Creates a single-part list.
    #[must_use]
    pub fn of(bytes: ByteSize, class: TrafficClass) -> Self {
        let mut parts = WireParts::new();
        parts.push(bytes, class);
        parts
    }

    /// Appends a part.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds [`WireParts::CAPACITY`] parts.
    pub fn push(&mut self, bytes: ByteSize, class: TrafficClass) {
        let slot = usize::from(self.len);
        assert!(slot < WireParts::CAPACITY, "wire part capacity exceeded");
        self.items[slot] = (bytes, class);
        self.len += 1;
    }

    /// The parts as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[(ByteSize, TrafficClass)] {
        &self.items[..usize::from(self.len)]
    }

    /// Total bytes across all parts.
    #[must_use]
    pub fn total(&self) -> ByteSize {
        self.as_slice().iter().map(|(b, _)| *b).sum()
    }
}

impl Default for WireParts {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for WireParts {
    type Target = [(ByteSize, TrafficClass)];

    fn deref(&self) -> &Self::Target {
        self.as_slice()
    }
}

/// Per-class byte counters accumulated by a link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficTotals {
    counts: [u64; 7],
}

impl TrafficTotals {
    fn index(class: TrafficClass) -> usize {
        TrafficClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL")
    }

    /// Adds `bytes` to `class`.
    pub fn add(&mut self, class: TrafficClass, bytes: ByteSize) {
        self.counts[Self::index(class)] += bytes.as_u64();
    }

    /// Bytes recorded for `class`.
    #[must_use]
    pub fn get(&self, class: TrafficClass) -> ByteSize {
        ByteSize::new(self.counts[Self::index(class)])
    }

    /// Total bytes across all classes.
    #[must_use]
    pub fn total(&self) -> ByteSize {
        ByteSize::new(self.counts.iter().sum())
    }

    /// Bytes of security metadata (all classes except data).
    #[must_use]
    pub fn metadata(&self) -> ByteSize {
        ByteSize::new(
            TrafficClass::ALL
                .iter()
                .filter(|c| c.is_metadata())
                .map(|&c| self.counts[Self::index(c)])
                .sum(),
        )
    }

    /// Merges another set of totals into this one.
    pub fn merge(&mut self, other: &TrafficTotals) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// One direction of a point-to-point interconnect link.
///
/// # Examples
///
/// ```
/// use mgpu_sim::link::{Link, TrafficClass};
/// use mgpu_types::{ByteSize, Cycle, Duration};
///
/// // A 50 B/cycle NVLink-class link with 100-cycle propagation delay.
/// let mut link = Link::new(50, Duration::cycles(100));
/// let arrival = link.transmit(Cycle::ZERO, ByteSize::new(64), TrafficClass::Data);
/// // 64 B serialize in ceil(64/50) = 2 cycles, then 100 cycles of flight.
/// assert_eq!(arrival, Cycle::new(102));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    bytes_per_cycle: u32,
    latency: Duration,
    /// Transmitter occupancy in *byte-ticks* (cycles × bandwidth): byte
    /// granularity lets back-to-back messages pack tightly, so every
    /// metadata byte genuinely consumes bandwidth instead of hiding in
    /// per-message rounding.
    next_free_bt: u128,
    totals: TrafficTotals,
    /// Total bytes that occupied the transmitter, for utilization
    /// reporting.
    busy_bytes: u64,
    /// Wire crossings on this link that an adversary tampered with
    /// (replayed, flipped, forged or dropped messages).
    tampered_messages: u64,
}

impl Link {
    /// Creates a link with the given serialization bandwidth and
    /// propagation latency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    #[must_use]
    pub fn new(bytes_per_cycle: u32, latency: Duration) -> Self {
        assert!(bytes_per_cycle > 0, "link bandwidth must be non-zero");
        Link {
            bytes_per_cycle,
            latency,
            next_free_bt: 0,
            totals: TrafficTotals::default(),
            busy_bytes: 0,
            tampered_messages: 0,
        }
    }

    /// Books `bytes` onto the transmitter starting no earlier than `now`;
    /// returns the cycle the last byte leaves.
    fn book(&mut self, now: Cycle, bytes: ByteSize) -> Cycle {
        let bw = u128::from(self.bytes_per_cycle);
        let start = (u128::from(now.as_u64()) * bw).max(self.next_free_bt);
        let end = start + u128::from(bytes.as_u64());
        self.next_free_bt = end;
        self.busy_bytes += bytes.as_u64();
        Cycle::new(end.div_ceil(bw) as u64)
    }

    /// Cycles needed to serialize `bytes` onto the wire.
    #[must_use]
    pub fn serialization_delay(&self, bytes: ByteSize) -> Duration {
        Duration::cycles(bytes.as_u64().div_ceil(u64::from(self.bytes_per_cycle)))
    }

    /// Transmits a message handed to the link at time `now`; returns the
    /// cycle at which the last byte arrives at the far end.
    ///
    /// Messages queue FIFO behind earlier transmissions; bytes are counted
    /// under `class` for traffic reports.
    pub fn transmit(&mut self, now: Cycle, bytes: ByteSize, class: TrafficClass) -> Cycle {
        self.totals.add(class, bytes);
        self.book(now, bytes) + self.latency
    }

    /// Transmits a multi-part message whose parts travel together (one
    /// serialization occupancy, per-class accounting). Returns arrival time
    /// of the whole message.
    pub fn transmit_parts(&mut self, now: Cycle, parts: &[(ByteSize, TrafficClass)]) -> Cycle {
        let total: ByteSize = parts.iter().map(|(b, _)| *b).sum();
        for &(bytes, class) in parts {
            self.totals.add(class, bytes);
        }
        self.book(now, total) + self.latency
    }

    /// Serializes `bytes` through the link *without* traffic accounting —
    /// used by ingress ports, whose bytes were already counted at the
    /// egress port they left. Returns when the last byte is through.
    pub fn occupy(&mut self, now: Cycle, bytes: ByteSize) -> Cycle {
        self.book(now, bytes) + self.latency
    }

    /// Charges `bytes` of background traffic to the link: the bytes are
    /// counted (traffic totals, busy time) but do not occupy the FIFO
    /// queue. Used for small reverse-direction messages (ACKs) that in
    /// hardware interleave with the request stream; modeling them as
    /// queue-blocking would let a late-scheduled ACK delay an earlier
    /// request, an artifact of lifecycle-ordered processing.
    pub fn charge_background(&mut self, bytes: ByteSize, class: TrafficClass) {
        self.busy_bytes += bytes.as_u64();
        self.totals.add(class, bytes);
    }

    /// When the transmitter next becomes free (queue head time).
    #[must_use]
    pub fn next_free(&self) -> Cycle {
        Cycle::new(self.next_free_bt.div_ceil(u128::from(self.bytes_per_cycle)) as u64)
    }

    /// Accumulated per-class traffic.
    #[must_use]
    pub fn totals(&self) -> &TrafficTotals {
        &self.totals
    }

    /// Total busy (transmitting) cycles, rounded up from the exact byte
    /// count.
    #[must_use]
    pub fn busy_cycles(&self) -> Duration {
        Duration::cycles(self.busy_bytes.div_ceil(u64::from(self.bytes_per_cycle)))
    }

    /// Link bandwidth in bytes per cycle.
    #[must_use]
    pub fn bandwidth(&self) -> u32 {
        self.bytes_per_cycle
    }

    /// Propagation latency of this link — the minimum time any message
    /// spends in flight, independent of serialization. Conservative
    /// parallel simulation uses the minimum latency over shard-crossing
    /// links as its synchronization lookahead.
    #[must_use]
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Records `n` adversary-tampered crossings on this link. Tampering
    /// does not change the timing model (the attacker rewrites bytes in
    /// flight); the counter feeds security reporting.
    pub fn note_tampered(&mut self, n: u64) {
        self.tampered_messages += n;
    }

    /// Wire crossings on this link the adversary tampered with.
    #[must_use]
    pub fn tampered_messages(&self) -> u64 {
        self.tampered_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(32, Duration::cycles(10))
    }

    #[test]
    fn serialization_rounds_up() {
        let l = link();
        assert_eq!(l.serialization_delay(ByteSize::new(0)), Duration::ZERO);
        assert_eq!(l.serialization_delay(ByteSize::new(1)), Duration::cycles(1));
        assert_eq!(
            l.serialization_delay(ByteSize::new(32)),
            Duration::cycles(1)
        );
        assert_eq!(
            l.serialization_delay(ByteSize::new(33)),
            Duration::cycles(2)
        );
        assert_eq!(
            l.serialization_delay(ByteSize::new(64)),
            Duration::cycles(2)
        );
    }

    #[test]
    fn messages_queue_fifo() {
        let mut l = link();
        // Two 64 B messages at t=0: first occupies [0,2), second [2,4).
        let a = l.transmit(Cycle::ZERO, ByteSize::new(64), TrafficClass::Data);
        let b = l.transmit(Cycle::ZERO, ByteSize::new(64), TrafficClass::Data);
        assert_eq!(a, Cycle::new(12));
        assert_eq!(b, Cycle::new(14));
    }

    #[test]
    fn idle_link_does_not_queue() {
        let mut l = link();
        l.transmit(Cycle::ZERO, ByteSize::new(64), TrafficClass::Data);
        // Arriving long after the link drained: starts immediately.
        let c = l.transmit(Cycle::new(100), ByteSize::new(32), TrafficClass::Data);
        assert_eq!(c, Cycle::new(111));
    }

    #[test]
    fn traffic_accounting_by_class() {
        let mut l = link();
        l.transmit(Cycle::ZERO, ByteSize::new(64), TrafficClass::Data);
        l.transmit(Cycle::ZERO, ByteSize::new(8), TrafficClass::Mac);
        l.transmit(Cycle::ZERO, ByteSize::new(8), TrafficClass::Counter);
        l.transmit(Cycle::ZERO, ByteSize::new(1), TrafficClass::SenderId);
        assert_eq!(l.totals().get(TrafficClass::Data).as_u64(), 64);
        assert_eq!(l.totals().metadata().as_u64(), 17);
        assert_eq!(l.totals().total().as_u64(), 81);
    }

    #[test]
    fn transmit_parts_single_occupancy() {
        let mut l = link();
        // 64+8+8+1 = 81 B -> ceil(81/32) = 3 cycles + 10 latency.
        let arrival = l.transmit_parts(
            Cycle::ZERO,
            &[
                (ByteSize::new(64), TrafficClass::Data),
                (ByteSize::new(8), TrafficClass::Mac),
                (ByteSize::new(8), TrafficClass::Counter),
                (ByteSize::new(1), TrafficClass::SenderId),
            ],
        );
        assert_eq!(arrival, Cycle::new(13));
        assert_eq!(l.busy_cycles(), Duration::cycles(3));
        assert_eq!(l.totals().total().as_u64(), 81);
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut l = link();
        l.transmit(Cycle::ZERO, ByteSize::new(64), TrafficClass::Data);
        l.transmit(Cycle::new(50), ByteSize::new(64), TrafficClass::Data);
        assert_eq!(l.busy_cycles(), Duration::cycles(4));
    }

    #[test]
    fn totals_merge() {
        let mut a = TrafficTotals::default();
        let mut b = TrafficTotals::default();
        a.add(TrafficClass::Data, ByteSize::new(10));
        b.add(TrafficClass::Data, ByteSize::new(5));
        b.add(TrafficClass::Ack, ByteSize::new(16));
        a.merge(&b);
        assert_eq!(a.get(TrafficClass::Data).as_u64(), 15);
        assert_eq!(a.get(TrafficClass::Ack).as_u64(), 16);
        assert_eq!(a.total().as_u64(), 31);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bandwidth_panics() {
        let _ = Link::new(0, Duration::ZERO);
    }

    #[test]
    fn metadata_classification() {
        assert!(!TrafficClass::Data.is_metadata());
        for c in TrafficClass::ALL.iter().skip(1) {
            assert!(c.is_metadata());
        }
    }
}
