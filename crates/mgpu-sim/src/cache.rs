//! Set-associative, write-back, LRU cache model.
//!
//! Models the GPU cache hierarchy of the paper's Table III (16 KB 4-way L1
//! vector cache, 2 MB 16-way shared L2). The workload models in
//! `mgpu-workloads` generate *remote request* streams directly, so the
//! cache model's role in the full system is to filter repeated accesses to
//! migrated pages; it is also exercised standalone as a substrate
//! component.

use mgpu_types::ByteSize;

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: ByteSize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (paper: 64 B).
    pub line_size: u32,
}

impl CacheConfig {
    /// The paper's 16 KB 4-way L1 vector cache.
    #[must_use]
    pub fn paper_l1_vector() -> Self {
        CacheConfig {
            capacity: ByteSize::new(16 * 1024),
            ways: 4,
            line_size: 64,
        }
    }

    /// The paper's 2 MB 16-way shared L2.
    #[must_use]
    pub fn paper_l2() -> Self {
        CacheConfig {
            capacity: ByteSize::new(2 * 1024 * 1024),
            ways: 16,
            line_size: 64,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `ways * line_size`, or any field zero).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_size > 0, "invalid geometry");
        let denom = self.ways as u64 * u64::from(self.line_size);
        let cap = self.capacity.as_u64();
        assert!(
            cap > 0 && cap.is_multiple_of(denom),
            "capacity must be a multiple of ways*line"
        );
        (cap / denom) as usize
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; `writeback` carries the evicted dirty line's
    /// address if one had to be written back.
    Miss {
        /// Address of a dirty victim line, if any.
        writeback: Option<u64>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    dirty: bool,
    /// Monotonic use stamp for LRU.
    last_use: u64,
    valid: bool,
}

/// A set-associative write-back cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use mgpu_sim::cache::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::paper_l1_vector());
/// assert!(!l1.access(0x1000, false).is_hit()); // cold miss
/// assert!(l1.access(0x1000, false).is_hit());  // now resident
/// assert!(l1.access(0x1010, false).is_hit());  // same 64 B line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<LineState>>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets: vec![
                vec![
                    LineState {
                        tag: 0,
                        dirty: false,
                        last_use: 0,
                        valid: false,
                    };
                    config.ways
                ];
                sets
            ],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / u64::from(self.config.line_size);
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Accesses `addr`; `write` marks the line dirty on hit or fill.
    /// Returns whether it hit and any dirty writeback on eviction.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.split(addr);
        let sets_len = self.sets.len() as u64;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().filter(|l| l.valid).find(|l| l.tag == tag) {
            line.last_use = self.tick;
            line.dirty |= write;
            self.hits += 1;
            return AccessOutcome::Hit;
        }

        self.misses += 1;
        // Victim: an invalid way, else the LRU way.
        let victim_idx = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set")
        });
        let victim = set[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.writebacks += 1;
            let line_number = victim.tag * sets_len + set_idx as u64;
            Some(line_number * u64::from(self.config.line_size))
        } else {
            None
        };
        set[victim_idx] = LineState {
            tag,
            dirty: write,
            last_use: self.tick,
            valid: true,
        };
        AccessOutcome::Miss { writeback }
    }

    /// Invalidates every line of the 4 KB page containing `addr` (used on
    /// page un-mapping during migration). Dirty lines are counted as
    /// writebacks and their addresses returned.
    pub fn invalidate_page(&mut self, addr: u64) -> Vec<u64> {
        let page_base = addr & !0xFFFu64;
        let mut flushed = Vec::new();
        for line_addr in (page_base..page_base + 4096).step_by(self.config.line_size as usize) {
            let (set_idx, tag) = self.split(line_addr);
            let sets_len = self.sets.len() as u64;
            if let Some(line) = self.sets[set_idx]
                .iter_mut()
                .filter(|l| l.valid)
                .find(|l| l.tag == tag)
            {
                if line.dirty {
                    self.writebacks += 1;
                    let line_number = line.tag * sets_len + set_idx as u64;
                    flushed.push(line_number * u64::from(self.config.line_size));
                }
                line.valid = false;
            }
        }
        flushed
    }

    /// Hit count so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    #[must_use]
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit rate in [0, 1]; zero if no accesses.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            capacity: ByteSize::new(512),
            ways: 2,
            line_size: 64,
        })
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::paper_l1_vector().sets(), 64);
        assert_eq!(CacheConfig::paper_l2().sets(), 2048);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
        assert!(c.access(63, false).is_hit()); // same line
        assert!(!c.access(64, false).is_hit()); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with (line % 4 == 0): addresses 0, 256, 512...
        c.access(0, false); // A
        c.access(256, false); // B — set full
        c.access(0, false); // touch A; B is now LRU
        c.access(512, false); // C evicts B
        assert!(c.access(0, false).is_hit()); // A still resident
        assert!(!c.access(256, false).is_hit()); // B was evicted
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty A in set 0
        c.access(256, false); // B
        c.access(0, false); // touch A
                            // C evicts B (clean): no writeback.
        match c.access(512, false) {
            AccessOutcome::Miss { writeback } => assert_eq!(writeback, None),
            AccessOutcome::Hit => panic!("expected miss"),
        }
        // D evicts A (dirty): writeback of address 0.
        match c.access(768, false) {
            AccessOutcome::Miss { writeback } => assert_eq!(writeback, Some(0)),
            AccessOutcome::Hit => panic!("expected miss"),
        }
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // becomes dirty via hit
        c.access(256, false);
        c.access(512, false); // evicts either; force eviction of line 0
        c.access(0, false); // miss: 0 was evicted... ensure determinism below
                            // Simpler check: fill and evict 0 explicitly.
        let mut c = tiny();
        c.access(0, true);
        c.access(256, false);
        c.access(256, false); // 0 is LRU
        match c.access(512, false) {
            AccessOutcome::Miss { writeback } => assert_eq!(writeback, Some(0)),
            AccessOutcome::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn invalidate_page_flushes_dirty_lines() {
        let mut c = Cache::new(CacheConfig::paper_l1_vector());
        c.access(0x2000, true);
        c.access(0x2040, false);
        c.access(0x3000, true); // different page
        let flushed = c.invalidate_page(0x2010);
        assert_eq!(flushed, vec![0x2000]);
        // Page lines gone; other page untouched.
        assert!(!c.access(0x2000, false).is_hit());
        assert!(c.access(0x3000, false).is_hit());
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            capacity: ByteSize::new(100),
            ways: 3,
            line_size: 64,
        });
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn working_set_within_capacity_always_hits_after_warmup(
                lines in proptest::collection::vec(0u64..8, 1..100)) {
                // 8 distinct lines fit in the 512 B tiny cache only if
                // they spread across sets; use direct-mapped-safe subset:
                // lines 0..8 map to sets 0..4 twice -> exactly fills ways.
                let mut c = tiny();
                for &l in &lines {
                    c.access(l * 64, false);
                }
                // Second pass over the distinct lines in the trace: all hits
                // only guaranteed if <= ways per set; verify no panic and
                // accounting consistency instead.
                let total = c.hits() + c.misses();
                prop_assert_eq!(total, lines.len() as u64);
            }

            #[test]
            fn accounting_is_consistent(addrs in proptest::collection::vec(0u64..100_000, 0..500),
                                        writes in proptest::collection::vec(any::<bool>(), 0..500)) {
                let mut c = Cache::new(CacheConfig::paper_l1_vector());
                let n = addrs.len().min(writes.len());
                for i in 0..n {
                    c.access(addrs[i], writes[i]);
                }
                prop_assert_eq!(c.hits() + c.misses(), n as u64);
                prop_assert!(c.writebacks() <= c.misses());
            }
        }
    }
}
