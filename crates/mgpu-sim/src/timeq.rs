//! Timed-server flow substrate: credit-gated service on a serialized link.
//!
//! Every bandwidth resource in the fabric — node egress/ingress ports,
//! switch ports, per-pair control VCs — is a *timed server*: a [`Link`]
//! (capacity = bandwidth, service time = serialization + propagation)
//! fronted by per-virtual-channel **credit-based flow control**. Callers
//! request service and receive a [`Ticket`] naming the completion cycle;
//! when a VC is out of credits the server answers with a typed
//! [`Busy`] reject carrying the exact cycle the next credit frees — the
//! caller re-requests *then*, never by blind re-polling.
//!
//! A credit is held from grant until the message's last byte clears the
//! server (serialization end plus propagation), i.e. until the downstream
//! buffer slot it models drains. Credits reclaim lazily by time: every
//! admission first returns all credits whose completion is `<= now`, so
//! no completion callback wiring is needed and the credit counters stay
//! exact for conservation checks (`credits_issued == credits_returned`
//! once the server drains).
//!
//! With a VC's credit limit set to `None` (the default — see
//! `FlowControlConfig`) admission never rejects and every booking lands
//! on the wrapped link exactly as a bare [`Link`] call would: the
//! substrate is bit-for-bit invisible until credits are configured
//! finite.
//!
//! # Examples
//!
//! ```
//! use mgpu_sim::timeq::{TimedServer, Vc};
//! use mgpu_sim::link::TrafficClass;
//! use mgpu_types::{ByteSize, Cycle, Duration};
//!
//! // 50 B/cy, 100 cy propagation, one data credit.
//! let mut srv = TimedServer::new(50, Duration::cycles(100), Some(1), None);
//! let t = srv
//!     .serve(Vc::Data, Cycle::ZERO, ByteSize::CACHELINE, TrafficClass::Data)
//!     .expect("credit available");
//! assert_eq!(t.done, Cycle::new(2 + 100));
//! // Second request finds the VC out of credits: typed reject, exact retry.
//! let busy = srv
//!     .serve(Vc::Data, Cycle::ZERO, ByteSize::CACHELINE, TrafficClass::Data)
//!     .unwrap_err();
//! assert_eq!(busy.retry_at, Cycle::new(102));
//! // At the retry cycle the credit has reclaimed and service proceeds.
//! assert!(srv.serve(Vc::Data, busy.retry_at, ByteSize::CACHELINE, TrafficClass::Data).is_ok());
//! ```

use std::collections::VecDeque;

use crate::link::{Link, TrafficClass, TrafficTotals, WireParts};
use mgpu_types::{ByteSize, Cycle, Duration};

/// Virtual channel selector: bulk data vs. small control/protocol
/// messages, mirroring the request/response VC split real interconnects
/// use for protocol deadlock freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vc {
    /// Bulk data blocks (and their inline security metadata).
    Data,
    /// Small control messages: requests, trailing MACs, ACKs.
    Ctrl,
}

impl Vc {
    const COUNT: usize = 2;

    #[inline]
    fn index(self) -> usize {
        match self {
            Vc::Data => 0,
            Vc::Ctrl => 1,
        }
    }
}

/// Typed backpressure: the VC is out of credits until `retry_at`.
///
/// `retry_at` is the earliest cycle at which an in-flight grant
/// completes and returns its credit — re-requesting at exactly that
/// cycle is guaranteed to find a credit free (absent intervening
/// grants), so callers schedule one retry instead of polling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    /// Earliest cycle a credit frees.
    pub retry_at: Cycle,
}

/// A granted service request: receipt for one credit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Cycle the last byte clears the server (credit returns then).
    pub done: Cycle,
    /// Grant sequence number on this server (across both VCs).
    pub serial: u64,
}

/// Per-VC credit ledger.
#[derive(Debug, Default)]
struct VcState {
    /// `None` = unbounded: admission never rejects.
    limit: Option<u32>,
    /// Completion cycles of in-flight grants, nondecreasing (link
    /// bookings are monotone in completion time).
    in_flight: VecDeque<Cycle>,
    /// Requests granted on this VC.
    grants: u64,
    /// Requests rejected with [`Busy`] on this VC.
    rejects: u64,
    /// Credits handed out (== grants; kept separate so the conservation
    /// invariant is checkable without aliasing).
    issued: u64,
    /// Credits reclaimed after their grant completed.
    returned: u64,
}

impl VcState {
    /// Returns every credit whose grant completed by `now`.
    fn reclaim(&mut self, now: Cycle) {
        while self.in_flight.front().is_some_and(|&done| done <= now) {
            self.in_flight.pop_front();
            self.returned += 1;
        }
    }

    /// Checks admission at `now` without mutating: `Err` carries the
    /// earliest in-flight completion past `now`.
    fn check(&self, now: Cycle) -> Result<(), Busy> {
        let Some(limit) = self.limit else {
            return Ok(());
        };
        let occupied = self.in_flight.iter().filter(|&&done| done > now).count();
        if (occupied as u64) < u64::from(limit) {
            Ok(())
        } else {
            let retry_at = self
                .in_flight
                .iter()
                .copied()
                .find(|&done| done > now)
                .expect("occupied VC has a pending completion");
            Err(Busy { retry_at })
        }
    }

    /// Earliest cycle at which an admission started at `now` would find
    /// a credit free (assumes `reclaim(now)` already ran). `now` itself
    /// when under limit.
    fn credit_free_at(&self, now: Cycle) -> Cycle {
        match self.limit {
            Some(limit) if self.in_flight.len() >= limit as usize => {
                // The (len - limit + 1)-th pending completion frees the
                // slot this admission needs.
                self.in_flight[self.in_flight.len() - limit as usize]
            }
            _ => now,
        }
    }

    fn grant(&mut self, done: Cycle) {
        self.in_flight.push_back(done);
        self.grants += 1;
        self.issued += 1;
    }
}

/// A serialized link fronted by per-VC credit admission. See the module
/// docs for the credit lifecycle.
#[derive(Debug)]
pub struct TimedServer {
    link: Link,
    vcs: [VcState; Vc::COUNT],
    serial: u64,
    /// Bytes served per VC (granted service only; `occupy` accounts no
    /// bytes, background charges are class- not VC-attributed). This is
    /// the per-channel byte counter a co-located observer can read.
    vc_bytes: [u64; Vc::COUNT],
}

impl TimedServer {
    /// A server over a `bytes_per_cycle`-wide link with `latency`
    /// propagation; `data_credits` / `ctrl_credits` bound the respective
    /// VCs (`None` = unbounded, the bit-for-bit-neutral default).
    #[must_use]
    pub fn new(
        bytes_per_cycle: u32,
        latency: Duration,
        data_credits: Option<u32>,
        ctrl_credits: Option<u32>,
    ) -> Self {
        let mut vcs: [VcState; Vc::COUNT] = Default::default();
        vcs[Vc::Data.index()].limit = data_credits;
        vcs[Vc::Ctrl.index()].limit = ctrl_credits;
        TimedServer {
            link: Link::new(bytes_per_cycle, latency),
            vcs,
            serial: 0,
            vc_bytes: [0; Vc::COUNT],
        }
    }

    /// A server with unbounded credits on both VCs — behaves exactly
    /// like a bare [`Link`].
    #[must_use]
    pub fn unbounded(bytes_per_cycle: u32, latency: Duration) -> Self {
        TimedServer::new(bytes_per_cycle, latency, None, None)
    }

    /// Non-mutating admission probe at `now`: `Ok` iff a request on
    /// `vc` would be granted. Agrees with what [`TimedServer::serve_parts`]
    /// at the same cycle would decide.
    pub fn check(&self, vc: Vc, now: Cycle) -> Result<(), Busy> {
        self.vcs[vc.index()].check(now)
    }

    /// Requests service for a multi-part message on `vc`: admission,
    /// then a booked, byte-accounted transmission (the [`Link::transmit_parts`]
    /// semantics). `Err` is the typed credit reject.
    pub fn serve_parts(
        &mut self,
        vc: Vc,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Result<Ticket, Busy> {
        let state = &mut self.vcs[vc.index()];
        state.reclaim(now);
        if let Some(limit) = state.limit {
            if state.in_flight.len() >= limit as usize {
                state.rejects += 1;
                return Err(Busy {
                    retry_at: state.in_flight[state.in_flight.len() - limit as usize],
                });
            }
        }
        let done = self.link.transmit_parts(now, parts);
        self.vcs[vc.index()].grant(done);
        self.vc_bytes[vc.index()] += parts.iter().map(|(b, _)| b.as_u64()).sum::<u64>();
        self.serial += 1;
        Ok(Ticket {
            done,
            serial: self.serial,
        })
    }

    /// Single-part convenience over [`TimedServer::serve_parts`].
    pub fn serve(
        &mut self,
        vc: Vc,
        now: Cycle,
        bytes: ByteSize,
        class: TrafficClass,
    ) -> Result<Ticket, Busy> {
        self.serve_parts(vc, now, &[(bytes, class)])
    }

    /// Sender-blocking service: instead of rejecting when `vc` is out
    /// of credits, delays the *start* of service to the cycle the needed
    /// credit frees (the sender stalls holding the message). Used by the
    /// control path, whose callers are synchronous and cannot retry.
    pub fn serve_parts_blocking(
        &mut self,
        vc: Vc,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Ticket {
        let state = &mut self.vcs[vc.index()];
        state.reclaim(now);
        let start = state.credit_free_at(now);
        if start > now {
            self.vcs[vc.index()].reclaim(start);
        }
        let done = self.link.transmit_parts(start.max(now), parts);
        self.vcs[vc.index()].grant(done);
        self.vc_bytes[vc.index()] += parts.iter().map(|(b, _)| b.as_u64()).sum::<u64>();
        self.serial += 1;
        Ticket {
            done,
            serial: self.serial,
        }
    }

    /// Requests occupancy-only service on `vc` (the [`Link::occupy`]
    /// semantics: books the server, accounts no bytes). Ingress ports
    /// use this — their bytes were counted at the egress they left.
    pub fn occupy(&mut self, vc: Vc, now: Cycle, bytes: ByteSize) -> Result<Ticket, Busy> {
        let state = &mut self.vcs[vc.index()];
        state.reclaim(now);
        if let Some(limit) = state.limit {
            if state.in_flight.len() >= limit as usize {
                state.rejects += 1;
                return Err(Busy {
                    retry_at: state.in_flight[state.in_flight.len() - limit as usize],
                });
            }
        }
        let done = self.link.occupy(now, bytes);
        self.vcs[vc.index()].grant(done);
        self.serial += 1;
        Ok(Ticket {
            done,
            serial: self.serial,
        })
    }

    /// Accounts background traffic that neither queues nor holds a
    /// credit (returning ACKs, hop-scaled ctrl accounting).
    pub fn charge_background(&mut self, bytes: ByteSize, class: TrafficClass) {
        self.link.charge_background(bytes, class);
    }

    /// Credits of `vc` held by in-flight grants at `now` (non-mutating).
    #[must_use]
    pub fn occupancy(&self, vc: Vc, now: Cycle) -> u32 {
        self.vcs[vc.index()]
            .in_flight
            .iter()
            .filter(|&&done| done > now)
            .count() as u32
    }

    /// Requests granted on `vc` so far.
    #[must_use]
    pub fn grants(&self, vc: Vc) -> u64 {
        self.vcs[vc.index()].grants
    }

    /// Bytes served on `vc` so far (granted service only; background
    /// charges are excluded — they are class-, not VC-attributed).
    #[must_use]
    pub fn vc_bytes(&self, vc: Vc) -> u64 {
        self.vc_bytes[vc.index()]
    }

    /// Requests rejected with [`Busy`] on `vc` so far.
    #[must_use]
    pub fn rejects(&self, vc: Vc) -> u64 {
        self.vcs[vc.index()].rejects
    }

    /// Credits handed out on `vc` (== grants).
    #[must_use]
    pub fn credits_issued(&self, vc: Vc) -> u64 {
        self.vcs[vc.index()].issued
    }

    /// Credits reclaimed on `vc` after their grant completed.
    #[must_use]
    pub fn credits_returned(&self, vc: Vc) -> u64 {
        self.vcs[vc.index()].returned
    }

    /// Reclaims every credit whose grant completed by `now` on both
    /// VCs. Call at drain to settle the conservation invariant
    /// `credits_issued == credits_returned`.
    pub fn settle(&mut self, now: Cycle) {
        for vc in &mut self.vcs {
            vc.reclaim(now);
        }
    }

    // --- wrapped-link passthroughs -------------------------------------

    /// Per-class byte totals accounted on the wrapped link.
    #[must_use]
    pub fn totals(&self) -> &TrafficTotals {
        self.link.totals()
    }

    /// First cycle a new booking could start serializing.
    #[must_use]
    pub fn next_free(&self) -> Cycle {
        self.link.next_free()
    }

    /// Total time the wrapped link spent serializing bytes.
    #[must_use]
    pub fn busy_cycles(&self) -> Duration {
        self.link.busy_cycles()
    }

    /// Link bandwidth in bytes per cycle.
    #[must_use]
    pub fn bandwidth(&self) -> u32 {
        self.link.bandwidth()
    }

    /// Link propagation latency.
    #[must_use]
    pub fn latency(&self) -> Duration {
        self.link.latency()
    }

    /// Records `n` adversary-tampered crossings on the wrapped link.
    pub fn note_tampered(&mut self, n: u64) {
        self.link.note_tampered(n);
    }

    /// Adversary-tampered crossings recorded on the wrapped link.
    #[must_use]
    pub fn tampered_messages(&self) -> u64 {
        self.link.tampered_messages()
    }

    /// Convenience: multi-part message as [`WireParts`] served on the
    /// data VC (the dominant fast path).
    pub fn serve_wire(&mut self, now: Cycle, parts: &WireParts) -> Result<Ticket, Busy> {
        self.serve_parts(Vc::Data, now, parts.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CACHELINE: ByteSize = ByteSize::CACHELINE;

    fn parts(bytes: u64) -> [(ByteSize, TrafficClass); 1] {
        [(ByteSize::new(bytes), TrafficClass::Data)]
    }

    #[test]
    fn unbounded_server_matches_bare_link_bit_for_bit() {
        let mut link = Link::new(50, Duration::cycles(100));
        let mut srv = TimedServer::unbounded(50, Duration::cycles(100));
        for (now, bytes) in [(0u64, 64u64), (0, 500), (3, 16), (1000, 4096), (1000, 64)] {
            let expect = link.transmit_parts(Cycle::new(now), &parts(bytes));
            let got = srv
                .serve_parts(Vc::Data, Cycle::new(now), &parts(bytes))
                .expect("unbounded VC never rejects");
            assert_eq!(got.done, expect);
        }
        assert_eq!(srv.totals(), link.totals());
        assert_eq!(srv.next_free(), link.next_free());
        assert_eq!(srv.busy_cycles(), link.busy_cycles());
        assert_eq!(srv.rejects(Vc::Data), 0);
        assert_eq!(srv.grants(Vc::Data), 5);
    }

    #[test]
    fn finite_credits_reject_with_exact_retry_cycle() {
        let mut srv = TimedServer::new(50, Duration::cycles(100), Some(2), None);
        // Two grants fill the VC: byte-ticks 0..64 and 64..128 at
        // 50 B/cy -> done at 102 and 103.
        let a = srv.serve(Vc::Data, Cycle::ZERO, CACHELINE, TrafficClass::Data);
        let b = srv.serve(Vc::Data, Cycle::ZERO, CACHELINE, TrafficClass::Data);
        assert_eq!(a.unwrap().done, Cycle::new(102));
        assert_eq!(b.unwrap().done, Cycle::new(103));
        // Third rejects; the credit the request needs frees at 102.
        let busy = srv
            .serve(Vc::Data, Cycle::new(50), CACHELINE, TrafficClass::Data)
            .unwrap_err();
        assert_eq!(busy.retry_at, Cycle::new(102));
        assert_eq!(srv.rejects(Vc::Data), 1);
        // Non-mutating probe agrees before and after the credit frees.
        assert_eq!(
            srv.check(Vc::Data, Cycle::new(101)),
            Err(Busy {
                retry_at: Cycle::new(102)
            })
        );
        assert_eq!(srv.check(Vc::Data, Cycle::new(102)), Ok(()));
        // Retrying at the named cycle succeeds.
        assert!(srv
            .serve(Vc::Data, busy.retry_at, CACHELINE, TrafficClass::Data)
            .is_ok());
    }

    #[test]
    fn blocking_service_shifts_start_to_credit_free_cycle() {
        let mut blocked = TimedServer::new(50, Duration::cycles(100), None, Some(1));
        let mut open = TimedServer::new(50, Duration::cycles(100), None, None);
        let first = blocked.serve_parts_blocking(Vc::Ctrl, Cycle::ZERO, &parts(64));
        assert_eq!(first.done, Cycle::new(102));
        // Out of ctrl credits: service start shifts to 102 (the sender
        // stalls), equivalent to an unbounded send issued at 102.
        let shifted = blocked.serve_parts_blocking(Vc::Ctrl, Cycle::new(10), &parts(64));
        open.serve_parts_blocking(Vc::Ctrl, Cycle::ZERO, &parts(64));
        let reference = open.serve_parts_blocking(Vc::Ctrl, Cycle::new(102), &parts(64));
        assert_eq!(shifted.done, reference.done);
        assert_eq!(blocked.grants(Vc::Ctrl), 2);
        assert_eq!(blocked.rejects(Vc::Ctrl), 0);
    }

    #[test]
    fn occupancy_tracks_in_flight_credits_per_vc() {
        let mut srv = TimedServer::new(50, Duration::cycles(100), Some(4), None);
        srv.serve(Vc::Data, Cycle::ZERO, CACHELINE, TrafficClass::Data)
            .unwrap(); // done 102
        srv.serve(Vc::Data, Cycle::ZERO, CACHELINE, TrafficClass::Data)
            .unwrap(); // done 103
        assert_eq!(srv.occupancy(Vc::Data, Cycle::ZERO), 2);
        assert_eq!(srv.occupancy(Vc::Data, Cycle::new(102)), 1);
        assert_eq!(srv.occupancy(Vc::Data, Cycle::new(103)), 0);
        assert_eq!(srv.occupancy(Vc::Ctrl, Cycle::ZERO), 0);
    }

    #[test]
    fn credit_conservation_settles_at_drain() {
        let mut srv = TimedServer::new(50, Duration::cycles(100), Some(3), Some(2));
        let mut last = Cycle::ZERO;
        for i in 0..20u64 {
            let mut now = Cycle::new(i * 7);
            match srv.serve_parts(Vc::Data, now, &parts(64 + i * 8)) {
                Ok(t) => last = last.max(t.done),
                Err(busy) => {
                    let t = srv
                        .serve_parts(Vc::Data, busy.retry_at, &parts(64 + i * 8))
                        .expect("retry at the named cycle finds a credit");
                    now = busy.retry_at;
                    last = last.max(t.done);
                }
            }
            let t = srv.serve_parts_blocking(Vc::Ctrl, now, &parts(16));
            last = last.max(t.done);
        }
        assert!(srv.credits_issued(Vc::Data) > srv.credits_returned(Vc::Data));
        srv.settle(last);
        for vc in [Vc::Data, Vc::Ctrl] {
            assert_eq!(
                srv.credits_issued(vc),
                srv.credits_returned(vc),
                "{vc:?} credits leak"
            );
            assert_eq!(srv.credits_issued(vc), srv.grants(vc));
            assert_eq!(srv.occupancy(vc, last), 0);
        }
    }

    #[test]
    fn vc_bytes_split_by_channel_and_exclude_background() {
        let mut srv = TimedServer::unbounded(50, Duration::cycles(100));
        srv.serve(Vc::Data, Cycle::ZERO, ByteSize::new(64), TrafficClass::Data)
            .unwrap();
        srv.serve_parts_blocking(
            Vc::Ctrl,
            Cycle::ZERO,
            &[
                (ByteSize::new(8), TrafficClass::Mac),
                (ByteSize::new(4), TrafficClass::Ack),
            ],
        );
        // Background charges are class-attributed but belong to no VC.
        srv.charge_background(ByteSize::new(16), TrafficClass::Ack);
        assert_eq!(srv.vc_bytes(Vc::Data), 64);
        assert_eq!(srv.vc_bytes(Vc::Ctrl), 12);
        // Occupancy-only service books the server but moves no bytes.
        srv.occupy(Vc::Data, Cycle::new(500), ByteSize::new(64))
            .unwrap();
        assert_eq!(srv.vc_bytes(Vc::Data), 64);
        assert_eq!(srv.totals().total().as_u64(), 92);
    }

    #[test]
    fn occupy_respects_credits_without_accounting_bytes() {
        let mut srv = TimedServer::new(32, Duration::ZERO, Some(1), None);
        let t = srv
            .occupy(Vc::Data, Cycle::ZERO, ByteSize::new(64))
            .unwrap();
        assert_eq!(t.done, Cycle::new(2));
        let busy = srv
            .occupy(Vc::Data, Cycle::ZERO, ByteSize::new(64))
            .unwrap_err();
        assert_eq!(busy.retry_at, Cycle::new(2));
        assert!(srv
            .occupy(Vc::Data, Cycle::new(2), ByteSize::new(64))
            .is_ok());
        assert_eq!(srv.totals().total().as_u64(), 0, "occupy accounts no bytes");
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// No-starvation and conservation on a single server under
            /// arbitrary arrival sequences: every [`Busy`] names a
            /// strictly-later cycle at which the retry is guaranteed a
            /// credit (one retry always suffices in a serial driver), and
            /// at drain every issued credit has been returned on both VCs.
            #[test]
            fn retry_protocol_never_starves_and_conserves_credits(
                limits in ((1u32..5, 1u32..3), (1u32..64, 0u64..32)),
                ops in proptest::collection::vec(
                    ((0u8..2, 1u64..1024), 0u64..50), 1..60),
            ) {
                let ((data_limit, ctrl_limit), (bw, latency)) = limits;
                let mut srv = TimedServer::new(
                    bw,
                    Duration::cycles(latency),
                    Some(data_limit),
                    Some(ctrl_limit),
                );
                let mut now = Cycle::ZERO;
                let mut last = Cycle::ZERO;
                for ((vc_sel, bytes), advance) in ops {
                    now = Cycle::new(now.as_u64() + advance);
                    let parts = [(ByteSize::new(bytes), TrafficClass::Data)];
                    if vc_sel == 0 {
                        let done = match srv.serve_parts(Vc::Data, now, &parts) {
                            Ok(t) => t.done,
                            Err(busy) => {
                                prop_assert!(
                                    busy.retry_at > now,
                                    "Busy must name a strictly-later cycle"
                                );
                                srv.serve_parts(Vc::Data, busy.retry_at, &parts)
                                    .expect("retry at the named cycle finds a credit")
                                    .done
                            }
                        };
                        last = last.max(done);
                    } else {
                        // Ctrl path is infallible by construction: finite
                        // credits stall the sender instead of rejecting.
                        let t = srv.serve_parts_blocking(Vc::Ctrl, now, &parts);
                        prop_assert_eq!(srv.rejects(Vc::Ctrl), 0);
                        last = last.max(t.done);
                    }
                }
                srv.settle(last);
                for vc in [Vc::Data, Vc::Ctrl] {
                    prop_assert_eq!(srv.credits_issued(vc), srv.credits_returned(vc));
                    prop_assert_eq!(srv.credits_issued(vc), srv.grants(vc));
                    prop_assert_eq!(srv.occupancy(vc, last), 0);
                }
            }
        }
    }
}
