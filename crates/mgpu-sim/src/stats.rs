//! Small statistics helpers used across the simulator and experiments:
//! histograms with custom bucket edges (for the paper's burstiness
//! figures) and running means.

use core::fmt;

/// A histogram over `u64` samples with caller-defined bucket edges.
///
/// Buckets are `[edge[i], edge[i+1])`, plus a final overflow bucket
/// `[edge[last], ∞)`. The paper's Figs. 15/16 use edges
/// `[0, 40, 160, 640, 2560]` cycles.
///
/// Boundary convention: buckets are **half-open on the right** — a sample
/// equal to an edge belongs to the bucket *starting* at that edge (exactly
/// 160 lands in `[160, 640)`). `Trace::accumulation_fraction_within` in
/// `mgpu-workloads` uses the matching strict-`<` test, so "within edge"
/// always equals the summed fractions of the buckets strictly below that
/// edge; both sites pin this with tests.
///
/// # Examples
///
/// ```
/// use mgpu_sim::stats::Histogram;
///
/// let mut h = Histogram::new(&[0, 40, 160, 640, 2560]);
/// h.record(25);
/// h.record(100);
/// h.record(100_000);
/// assert_eq!(h.counts(), &[1, 1, 0, 0, 1]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    #[must_use]
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "at least one edge required");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len()],
        }
    }

    /// The bucket edges used by the paper's burst-interval figures.
    #[must_use]
    pub fn paper_burst_edges() -> Self {
        Histogram::new(&[0, 40, 160, 640, 2560])
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is below the first edge.
    pub fn record(&mut self, value: u64) {
        assert!(value >= self.edges[0], "sample below histogram range");
        let bucket = match self.edges.binary_search(&value) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.counts[bucket] += 1;
    }

    /// Per-bucket counts (last bucket is the overflow bucket).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bucket fractions in [0, 1]; all zeros when empty.
    #[must_use]
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Human-readable bucket labels, e.g. `[40, 160)` and `[2560, inf)`.
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::with_capacity(self.edges.len());
        for w in self.edges.windows(2) {
            labels.push(format!("[{}, {})", w[0], w[1]));
        }
        labels.push(format!("[{}, inf)", self.edges.last().expect("non-empty")));
        labels
    }

    /// Merges another histogram with identical edges into this one.
    ///
    /// # Panics
    ///
    /// Panics if the edge vectors differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "histograms must share edges");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fractions = self.fractions();
        for (label, frac) in self.labels().iter().zip(fractions.iter()) {
            writeln!(f, "{label:>16}: {:5.1}%", frac * 100.0)?;
        }
        Ok(())
    }
}

/// An online mean over `f64` samples.
///
/// # Examples
///
/// ```
/// use mgpu_sim::stats::RunningMean;
///
/// let mut m = RunningMean::new();
/// m.add(1.0);
/// m.add(3.0);
/// assert_eq!(m.mean(), 2.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningMean::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Current mean; zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Geometric mean over positive samples — the conventional way to average
/// normalized execution times across benchmarks.
///
/// # Examples
///
/// ```
/// use mgpu_sim::stats::geometric_mean;
///
/// let g = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert!(geometric_mean(&[]).is_none());
/// ```
#[must_use]
pub fn geometric_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&s| s <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|s| s.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

/// The `p`-th percentile (0–100) of `samples` by linear interpolation
/// between closest ranks; `None` when empty or any sample is NaN.
///
/// Used by the observability layer to fold interval series (hit rates,
/// queue depths) into summary statistics for `BENCH_repro.json`.
///
/// # Examples
///
/// ```
/// use mgpu_sim::stats::percentile;
///
/// assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
/// assert_eq!(percentile(&[1.0, 2.0], 100.0), Some(2.0));
/// assert!(percentile(&[], 50.0).is_none());
/// ```
#[must_use]
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|s| s.is_nan()) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// The `p`-th percentile of **already-sorted** `samples` — same
/// interpolation as [`percentile`], without the per-call clone, sort, and
/// NaN scan. For hot summary paths whose sample vectors are sorted once at
/// collection time (e.g. `LatencyReport::finish`); sortedness is checked
/// in debug builds only.
///
/// # Examples
///
/// ```
/// use mgpu_sim::stats::percentile_sorted;
///
/// assert_eq!(percentile_sorted(&[1.0, 2.0, 3.0], 50.0), Some(2.0));
/// assert!(percentile_sorted(&[], 50.0).is_none());
/// ```
#[must_use]
pub fn percentile_sorted(samples: &[f64], p: f64) -> Option<f64> {
    debug_assert!(
        samples.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
        "percentile_sorted requires ascending samples"
    );
    // In `total_cmp` order every NaN sorts to an end (negative-bit NaNs
    // first, positive-bit NaNs last), so checking the two ends replaces
    // the full O(n) scan the unsorted variant needs.
    let (first, last) = (samples.first(), samples.last());
    if first.is_none_or(|s| s.is_nan()) || last.is_some_and(|s| s.is_nan()) {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (samples.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(samples[lo] + (samples[hi] - samples[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment() {
        let mut h = Histogram::paper_burst_edges();
        h.record(0);
        h.record(39);
        h.record(40);
        h.record(159);
        h.record(160);
        h.record(2559);
        h.record(2560);
        h.record(1_000_000);
        assert_eq!(h.counts(), &[2, 2, 1, 1, 2]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(&[0, 10]);
        for v in [1, 2, 3, 11] {
            h.record(v);
        }
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f, vec![0.75, 0.25]);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = Histogram::new(&[0, 10]);
        assert_eq!(h.fractions(), vec![0.0, 0.0]);
    }

    #[test]
    fn labels_format() {
        let h = Histogram::new(&[0, 40, 160]);
        assert_eq!(h.labels(), vec!["[0, 40)", "[40, 160)", "[160, inf)"]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(&[0, 10]);
        let mut b = Histogram::new(&[0, 10]);
        a.record(5);
        b.record(5);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "share edges")]
    fn merge_rejects_mismatched_edges() {
        let mut a = Histogram::new(&[0, 10]);
        let b = Histogram::new(&[0, 20]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_edges_panic() {
        let _ = Histogram::new(&[0, 10, 10]);
    }

    #[test]
    #[should_panic(expected = "below histogram range")]
    fn sample_below_range_panics() {
        let mut h = Histogram::new(&[10, 20]);
        h.record(5);
    }

    #[test]
    fn running_mean_empty_is_zero() {
        assert_eq!(RunningMean::new().mean(), 0.0);
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn geometric_mean_of_identical_values() {
        let g = geometric_mean(&[1.195, 1.195, 1.195]).unwrap();
        assert!((g - 1.195).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let s = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&s, 0.0), Some(10.0));
        assert_eq!(percentile(&s, 100.0), Some(40.0));
        assert_eq!(percentile(&s, 50.0), Some(25.0));
        assert_eq!(percentile(&[7.0], 90.0), Some(7.0));
        assert!(percentile(&[1.0, f64::NAN], 50.0).is_none());
    }

    #[test]
    fn percentile_sorted_matches_unsorted_variant() {
        let s = [10.0, 20.0, 30.0, 40.0];
        for p in [0.0, 25.0, 50.0, 90.0, 100.0] {
            assert_eq!(percentile_sorted(&s, p), percentile(&s, p));
        }
        assert_eq!(percentile_sorted(&[7.0], 90.0), Some(7.0));
        assert!(percentile_sorted(&[], 50.0).is_none());
        // NaNs sort to the ends under total_cmp; both are rejected.
        assert!(percentile_sorted(&[1.0, 2.0, f64::NAN], 50.0).is_none());
        assert!(percentile_sorted(&[-f64::NAN, 1.0, 2.0], 50.0).is_none());
    }
}
