//! Discrete-event multi-GPU simulator substrate.
//!
//! The paper evaluates on MGPUSim, a cycle-level multi-GPU simulator. This
//! crate provides the equivalent substrate for this reproduction: a
//! deterministic discrete-event engine plus the structural components the
//! communication study needs — bandwidth-serialized interconnect links
//! ([`link`]), static route computation over configurable fabric shapes
//! ([`routing`]), the CPU-hub + routed-GPU-fabric topology ([`topology`]),
//! set-associative write-back caches ([`cache`]), a fixed-latency HBM model
//! ([`dram`]), and an access-counter page-migration policy ([`page`]).
//!
//! The detailed shader pipelines of a real GPU are intentionally abstracted
//! away: what the paper measures — OTP buffer behaviour and security-
//! metadata bandwidth — depends on the *request arrival process* at the
//! communication layer, which `mgpu-workloads` models directly.
//!
//! # Examples
//!
//! ```
//! use mgpu_sim::events::EventQueue;
//! use mgpu_types::Cycle;
//!
//! let mut q = EventQueue::new();
//! q.schedule(Cycle::new(10), "b");
//! q.schedule(Cycle::new(5), "a");
//! assert_eq!(q.pop(), Some((Cycle::new(5), "a")));
//! assert_eq!(q.pop(), Some((Cycle::new(10), "b")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod events;
pub mod link;
pub mod page;
pub mod routing;
pub mod stats;
pub mod timeq;
pub mod topology;

pub use cache::{Cache, CacheConfig};
pub use events::EventQueue;
pub use link::Link;
pub use routing::{RoutingTable, Waypoint};
pub use timeq::{Busy, Ticket, TimedServer, Vc};
pub use topology::Topology;
