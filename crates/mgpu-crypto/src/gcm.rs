//! AES-GCM authenticated encryption (NIST SP 800-38D), composed from the
//! in-repo AES-128, CTR and GHASH primitives.
//!
//! The secure channel in `mgpu-secure` uses this for end-to-end functional
//! validation: real ciphertexts, real tags, real tamper detection.

use crate::aes::Aes128;
use crate::backend::{self, Backend};
use crate::ghash::{Ghash, GhashKey};

/// Authentication tag length in bytes (full 128-bit tags).
pub const TAG_LEN: usize = 16;

/// AES-GCM authenticated encryption bound to one 128-bit key.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::gcm::AesGcm;
///
/// let gcm = AesGcm::new(&[1u8; 16]);
/// let sealed = gcm.seal(&[2u8; 12], b"aad", b"hello");
/// assert_eq!(gcm.open(&[2u8; 12], b"aad", &sealed).unwrap(), b"hello");
/// assert!(gcm.open(&[2u8; 12], b"tampered-aad", &sealed).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes128,
    /// `H = AES_K(0)` expanded into the backend's key tables (Shoup
    /// product table and `H`-power table), built once per key and shared
    /// by every tag computation.
    h: GhashKey,
}

/// Authentication failure returned by [`AesGcm::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagMismatch;

impl core::fmt::Display for TagMismatch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("GCM authentication tag mismatch")
    }
}

impl std::error::Error for TagMismatch {}

impl AesGcm {
    /// Creates a GCM instance, deriving the hash subkey `H = AES_K(0)`,
    /// using the process-default backend ([`backend::default_backend`]).
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_backend(key, backend::default_backend())
    }

    /// Creates a GCM instance on an explicitly chosen backend (both the
    /// AES and GHASH halves). Output is bit-identical across backends.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is not available on this CPU.
    #[must_use]
    pub fn with_backend(key: &[u8; 16], backend: Backend) -> Self {
        let aes = Aes128::with_backend(key, backend);
        let h = GhashKey::with_backend(aes.encrypt_block([0u8; 16]), backend);
        AesGcm { aes, h }
    }

    /// The implementation family this instance dispatches to.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.aes.backend()
    }

    /// Builds the initial counter block J0 for a 96-bit nonce
    /// (SP 800-38D §7.1: J0 = IV || 0^31 || 1).
    fn j0(nonce: &[u8; 12]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// Increments the low 32 bits of a counter block (inc32).
    fn inc32(block: &mut [u8; 16]) {
        let ctr = u32::from_be_bytes(block[12..16].try_into().expect("4 bytes"));
        block[12..16].copy_from_slice(&ctr.wrapping_add(1).to_be_bytes());
    }

    /// Counter blocks encrypted per bulk call in [`AesGcm::ctr_xor_into`];
    /// 16 blocks (256 B) comfortably covers the protocol's 64 B cachelines
    /// in one call while keeping the scratch on the stack.
    const CTR_CHUNK: usize = 16;

    /// CTR-mode encrypt/decrypt starting from counter block `icb`, writing
    /// the output into `out` (cleared first). Keystream blocks live in a
    /// stack scratch, so the call performs no heap allocation once `out`
    /// has capacity.
    fn ctr_xor_into(&self, icb: [u8; 16], data: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.reserve(data.len());
        let mut cb = icb;
        let mut chunk = [[0u8; 16]; Self::CTR_CHUNK];
        for piece in data.chunks(16 * Self::CTR_CHUNK) {
            let nblocks = piece.len().div_ceil(16);
            for counter in chunk.iter_mut().take(nblocks) {
                *counter = cb;
                Self::inc32(&mut cb);
            }
            self.aes.encrypt_blocks(&mut chunk[..nblocks]);
            out.extend(
                piece
                    .iter()
                    .zip(chunk[..nblocks].iter().flatten())
                    .map(|(d, k)| d ^ k),
            );
        }
    }

    /// CTR-mode encrypt/decrypt starting from counter block `icb`.
    fn ctr_xor(&self, icb: [u8; 16], data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        self.ctr_xor_into(icb, data, &mut out);
        out
    }

    /// Computes the GCM tag over `aad` and `ciphertext`.
    fn tag(&self, nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        let mut g = Ghash::with_key(self.h.clone());
        g.update(aad);
        g.pad_to_block();
        g.update(ciphertext);
        let s = g.finalize(aad.len() as u64, ciphertext.len() as u64);
        let ek_j0 = self.aes.encrypt_block(Self::j0(nonce));
        let mut tag = [0u8; 16];
        for i in 0..16 {
            tag[i] = s[i] ^ ek_j0[i];
        }
        tag
    }

    /// Encrypts `plaintext` and appends the 16-byte tag.
    ///
    /// `aad` is authenticated but not encrypted — the protocol uses it for
    /// message headers (sender ID, counter) that must travel in the clear.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut icb = Self::j0(nonce);
        Self::inc32(&mut icb);
        let mut out = self.ctr_xor(icb, plaintext);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Encrypts `plaintext` returning ciphertext and the 16-byte tag
    /// separately. The protocol layer truncates the tag to its 8 B
    /// `MsgMAC`; GCM explicitly supports 64-bit tags (SP 800-38D §5.2.1.2).
    #[must_use]
    pub fn seal_detached(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        plaintext: &[u8],
    ) -> (Vec<u8>, [u8; 16]) {
        let mut icb = Self::j0(nonce);
        Self::inc32(&mut icb);
        let ciphertext = self.ctr_xor(icb, plaintext);
        let tag = self.tag(nonce, aad, &ciphertext);
        (ciphertext, tag)
    }

    /// Buffer-reusing form of [`AesGcm::seal_detached`]: encrypts
    /// `plaintext` into `ciphertext_out` (cleared first) and returns the
    /// 16-byte tag. Performs no heap allocation once `ciphertext_out` has
    /// capacity — the secure channel's steady-state send path.
    pub fn seal_detached_into(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        plaintext: &[u8],
        ciphertext_out: &mut Vec<u8>,
    ) -> [u8; 16] {
        let mut icb = Self::j0(nonce);
        Self::inc32(&mut icb);
        self.ctr_xor_into(icb, plaintext, ciphertext_out);
        self.tag(nonce, aad, ciphertext_out)
    }

    /// Buffer-reusing form of [`AesGcm::decrypt_and_tag`]: decrypts
    /// `ciphertext` into `plaintext_out` (cleared first) *unconditionally*
    /// and returns the computed tag. Same lazy-verification contract as
    /// [`AesGcm::decrypt_and_tag`]: callers MUST eventually compare the
    /// tag against an authentic one.
    pub fn decrypt_and_tag_into(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        ciphertext: &[u8],
        plaintext_out: &mut Vec<u8>,
    ) -> [u8; 16] {
        let tag = self.tag(nonce, aad, ciphertext);
        let mut icb = Self::j0(nonce);
        Self::inc32(&mut icb);
        self.ctr_xor_into(icb, ciphertext, plaintext_out);
        tag
    }

    /// Buffer-reusing form of [`AesGcm::open_detached`]: verifies the
    /// detached (possibly truncated) tag, then decrypts into
    /// `plaintext_out` (cleared first; untouched on verification failure).
    ///
    /// # Errors
    ///
    /// Returns [`TagMismatch`] under the same conditions as
    /// [`AesGcm::open_detached`].
    pub fn open_detached_into(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
        plaintext_out: &mut Vec<u8>,
    ) -> Result<(), TagMismatch> {
        if tag.len() < 8 || tag.len() > TAG_LEN {
            return Err(TagMismatch);
        }
        let expected = self.tag(nonce, aad, ciphertext);
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(TagMismatch);
        }
        let mut icb = Self::j0(nonce);
        Self::inc32(&mut icb);
        self.ctr_xor_into(icb, ciphertext, plaintext_out);
        Ok(())
    }

    /// Decrypts `ciphertext` *unconditionally* and returns the plaintext
    /// together with the computed tag, without verifying anything.
    ///
    /// This is the primitive behind the paper's *lazy verification*: the
    /// receiver forwards decrypted data immediately and checks the
    /// (batched) MAC when the whole batch has arrived. Callers MUST
    /// eventually compare the returned tag against an authentic one.
    #[must_use]
    pub fn decrypt_and_tag(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        ciphertext: &[u8],
    ) -> (Vec<u8>, [u8; 16]) {
        let tag = self.tag(nonce, aad, ciphertext);
        let mut icb = Self::j0(nonce);
        Self::inc32(&mut icb);
        (self.ctr_xor(icb, ciphertext), tag)
    }

    /// Verifies a detached (possibly truncated) tag and decrypts.
    ///
    /// # Errors
    ///
    /// Returns [`TagMismatch`] if `tag` is shorter than 8 bytes, longer
    /// than 16, or does not match the computed tag's prefix.
    pub fn open_detached(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
    ) -> Result<Vec<u8>, TagMismatch> {
        let mut out = Vec::with_capacity(ciphertext.len());
        self.open_detached_into(nonce, aad, ciphertext, tag, &mut out)?;
        Ok(out)
    }

    /// Verifies and decrypts a sealed message.
    ///
    /// # Errors
    ///
    /// Returns [`TagMismatch`] if the ciphertext is too short to contain a
    /// tag, or if the tag does not verify (tamper, wrong nonce, wrong AAD).
    pub fn open(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, TagMismatch> {
        if sealed.len() < TAG_LEN {
            return Err(TagMismatch);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.tag(nonce, aad, ciphertext);
        // Constant-time-ish comparison (not a production concern here, but
        // avoid the obvious early-exit pattern).
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(TagMismatch);
        }
        let mut icb = Self::j0(nonce);
        Self::inc32(&mut icb);
        Ok(self.ctr_xor(icb, ciphertext))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// NIST GCM spec test case 1: empty everything.
    #[test]
    fn nist_case_1() {
        let gcm = AesGcm::new(&[0u8; 16]);
        let sealed = gcm.seal(&[0u8; 12], b"", b"");
        assert_eq!(sealed, hex("58e2fccefa7e3061367f1d57a4e7455a"));
        // The decrypt direction verifies the same vector: the sealed message
        // is tag-only, and opening yields the empty plaintext.
        assert_eq!(gcm.open(&[0u8; 12], b"", &sealed).unwrap(), b"");
        let (ct, tag) = gcm.seal_detached(&[0u8; 12], b"", b"");
        assert!(ct.is_empty());
        assert_eq!(tag.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
        assert_eq!(gcm.open_detached(&[0u8; 12], b"", &ct, &tag).unwrap(), b"");
    }

    /// NIST GCM spec test case 2: 16 zero bytes of plaintext.
    #[test]
    fn nist_case_2() {
        let gcm = AesGcm::new(&[0u8; 16]);
        let sealed = gcm.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(
            sealed,
            hex("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf")
        );
        assert_eq!(gcm.open(&[0u8; 12], b"", &sealed).unwrap(), [0u8; 16]);
        // Detached MAC on the vector's ciphertext.
        let (ct, tag) = gcm.seal_detached(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
        assert_eq!(
            gcm.open_detached(&[0u8; 12], b"", &ct, &tag).unwrap(),
            [0u8; 16]
        );
    }

    /// NIST GCM spec test case 3: full key/IV/plaintext.
    #[test]
    fn nist_case_3() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let gcm = AesGcm::new(&key);
        let sealed = gcm.seal(&nonce, b"", &pt);
        let expected_ct = hex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
        );
        let expected_tag = hex("4d5c2af327cd64a62cf35abd2ba6fab4");
        assert_eq!(&sealed[..pt.len()], &expected_ct[..]);
        assert_eq!(&sealed[pt.len()..], &expected_tag[..]);
        // Decrypt direction from the published ciphertext, both attached and
        // with a detached tag truncated to the protocol's 8-byte MsgMAC.
        assert_eq!(gcm.open(&nonce, b"", &sealed).unwrap(), pt);
        assert_eq!(
            gcm.open_detached(&nonce, b"", &expected_ct, &expected_tag)
                .unwrap(),
            pt
        );
        assert_eq!(
            gcm.open_detached(&nonce, b"", &expected_ct, &expected_tag[..8])
                .unwrap(),
            pt
        );
    }

    /// NIST GCM spec test case 4: with AAD and truncated plaintext.
    #[test]
    fn nist_case_4() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let gcm = AesGcm::new(&key);
        let sealed = gcm.seal(&nonce, &aad, &pt);
        let expected_tag = hex("5bc94fbc3221a5db94fae95ae7121a47");
        assert_eq!(&sealed[pt.len()..], &expected_tag[..]);
        assert_eq!(gcm.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn detached_matches_attached() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let (ct, tag) = gcm.seal_detached(&[1u8; 12], b"aad", b"some payload");
        let mut sealed = ct.clone();
        sealed.extend_from_slice(&tag);
        assert_eq!(sealed, gcm.seal(&[1u8; 12], b"aad", b"some payload"));
        assert_eq!(
            gcm.open_detached(&[1u8; 12], b"aad", &ct, &tag).unwrap(),
            b"some payload"
        );
    }

    #[test]
    fn truncated_tag_verifies_and_detects_tamper() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let (ct, tag) = gcm.seal_detached(&[1u8; 12], b"", b"block");
        assert!(gcm.open_detached(&[1u8; 12], b"", &ct, &tag[..8]).is_ok());
        let mut bad = ct.clone();
        bad[0] ^= 1;
        assert_eq!(
            gcm.open_detached(&[1u8; 12], b"", &bad, &tag[..8]),
            Err(TagMismatch)
        );
        // Tags shorter than 64 bits are refused outright.
        assert_eq!(
            gcm.open_detached(&[1u8; 12], b"", &ct, &tag[..4]),
            Err(TagMismatch)
        );
        // Overlong tags are refused.
        let mut long = tag.to_vec();
        long.push(0);
        assert_eq!(
            gcm.open_detached(&[1u8; 12], b"", &ct, &long),
            Err(TagMismatch)
        );
    }

    #[test]
    fn decrypt_and_tag_is_lazy() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let (ct, tag) = gcm.seal_detached(&[1u8; 12], b"", b"lazy block");
        // Decryption succeeds even with no tag at hand...
        let (pt, computed) = gcm.decrypt_and_tag(&[1u8; 12], b"", &ct);
        assert_eq!(pt, b"lazy block");
        // ...and the computed tag equals the genuine one for untampered
        // data, but differs once the ciphertext is corrupted.
        assert_eq!(computed, tag);
        let mut bad = ct;
        bad[3] ^= 0x10;
        let (_, computed_bad) = gcm.decrypt_and_tag(&[1u8; 12], b"", &bad);
        assert_ne!(computed_bad, tag);
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let mut ct = Vec::new();
        let mut pt = Vec::new();
        // Reuse the same buffers across messages of different lengths.
        for msg in [&b"short"[..], &[0xAB; 64][..], &[0x11; 200][..]] {
            let tag = gcm.seal_detached_into(&[1u8; 12], b"aad", msg, &mut ct);
            let (expect_ct, expect_tag) = gcm.seal_detached(&[1u8; 12], b"aad", msg);
            assert_eq!(ct, expect_ct);
            assert_eq!(tag, expect_tag);
            let lazy_tag = gcm.decrypt_and_tag_into(&[1u8; 12], b"aad", &ct, &mut pt);
            assert_eq!(pt, msg);
            assert_eq!(lazy_tag, tag);
            gcm.open_detached_into(&[1u8; 12], b"aad", &ct, &tag[..8], &mut pt)
                .unwrap();
            assert_eq!(pt, msg);
        }
        // Verification failure leaves the output untouched.
        let tag = gcm.seal_detached_into(&[1u8; 12], b"", b"payload", &mut ct);
        ct[0] ^= 1;
        pt.clear();
        pt.extend_from_slice(b"sentinel");
        assert_eq!(
            gcm.open_detached_into(&[1u8; 12], b"", &ct, &tag, &mut pt),
            Err(TagMismatch)
        );
        assert_eq!(pt, b"sentinel");
    }

    #[test]
    fn tamper_detection_ciphertext() {
        let gcm = AesGcm::new(&[3u8; 16]);
        let mut sealed = gcm.seal(&[1u8; 12], b"hdr", b"payload bytes");
        sealed[0] ^= 1;
        assert_eq!(gcm.open(&[1u8; 12], b"hdr", &sealed), Err(TagMismatch));
    }

    #[test]
    fn tamper_detection_tag() {
        let gcm = AesGcm::new(&[3u8; 16]);
        let mut sealed = gcm.seal(&[1u8; 12], b"hdr", b"payload bytes");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert_eq!(gcm.open(&[1u8; 12], b"hdr", &sealed), Err(TagMismatch));
    }

    #[test]
    fn wrong_nonce_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]);
        let sealed = gcm.seal(&[1u8; 12], b"", b"data");
        assert_eq!(gcm.open(&[2u8; 12], b"", &sealed), Err(TagMismatch));
    }

    #[test]
    fn truncated_input_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]);
        assert_eq!(gcm.open(&[1u8; 12], b"", &[1, 2, 3]), Err(TagMismatch));
    }

    #[test]
    fn error_type_displays() {
        assert!(TagMismatch.to_string().contains("tag mismatch"));
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip(key in proptest::array::uniform16(any::<u8>()),
                         nonce in proptest::array::uniform12(any::<u8>()),
                         aad in proptest::collection::vec(any::<u8>(), 0..48),
                         pt in proptest::collection::vec(any::<u8>(), 0..200)) {
                let gcm = AesGcm::new(&key);
                let sealed = gcm.seal(&nonce, &aad, &pt);
                prop_assert_eq!(gcm.open(&nonce, &aad, &sealed).unwrap(), pt);
            }

            #[test]
            fn any_single_bitflip_is_caught(
                key in proptest::array::uniform16(any::<u8>()),
                nonce in proptest::array::uniform12(any::<u8>()),
                pt in proptest::collection::vec(any::<u8>(), 1..64),
                flip_byte in any::<proptest::sample::Index>(),
                flip_bit in 0u8..8) {
                let gcm = AesGcm::new(&key);
                let mut sealed = gcm.seal(&nonce, b"", &pt);
                let idx = flip_byte.index(sealed.len());
                sealed[idx] ^= 1 << flip_bit;
                prop_assert_eq!(gcm.open(&nonce, b"", &sealed), Err(TagMismatch));
            }
        }
    }
}
