//! Hardware GHASH via the `x86_64` carry-less multiply (PCLMULQDQ).
//!
//! This is the [`crate::backend::Backend::HwAesClmul`] implementation of
//! GF(2^128) multiplication for GHASH. A 128×128-bit carry-less product is
//! assembled from four `pclmulqdq` invocations (schoolbook over 64-bit
//! halves), the 256-bit result is shifted left by one to compensate for
//! GCM's bit-reflected operand order, and reduced modulo
//! `x^128 + x^7 + x^2 + x + 1` with Intel's two-phase shift/XOR sequence
//! (the classic gfmul construction from the Intel GCM white paper).
//!
//! The bulk entry point [`fold`] processes four blocks per reduction using
//! a precomputed H-power table: since shift and reduction are linear over
//! XOR, `(((y⊕x₁)H ⊕ x₂)H ⊕ x₃)H ⊕ x₄)H` is computed as
//! `reduce(clmul(y⊕x₁, H⁴) ⊕ clmul(x₂, H³) ⊕ clmul(x₃, H²) ⊕ clmul(x₄, H))`
//! — one reduction amortized over four multiplies. Outputs are bit-for-bit
//! equal to the Shoup-table and bit-loop paths in [`crate::ghash`]
//! (property-tested in `tests/backend_parity.rs`), and the data flow is
//! constant-time: no data- or key-dependent loads or branches, unlike the
//! 4 KB software table.
//!
//! # Safety contract
//!
//! Same two shapes as [`crate::aesni`], documented at each use site:
//! feature-gated calls into `#[target_feature]` functions (sound because
//! the public wrappers assert [`available`] first) and unaligned
//! `_mm_loadu_si128`/`_mm_storeu_si128` on live 16-byte buffers (the `u`
//! variants carry no alignment requirement).

use core::arch::x86_64::{
    __m128i, _mm_clmulepi64_si128, _mm_loadu_si128, _mm_or_si128, _mm_set_epi8, _mm_shuffle_epi8,
    _mm_slli_epi32, _mm_slli_si128, _mm_srli_epi32, _mm_srli_si128, _mm_storeu_si128,
    _mm_xor_si128,
};

/// Runtime check for this module's instruction set: `pclmulqdq` for the
/// multiplies, `ssse3` for the byte-order shuffle.
#[must_use]
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("pclmulqdq") && std::arch::is_x86_feature_detected!("ssse3")
}

/// Loads a GCM-order (big-endian) block and reverses it into the
/// little-endian layout the clmul math operates in.
#[target_feature(enable = "pclmulqdq,ssse3")]
fn load_be(block: &[u8; 16]) -> __m128i {
    // Reverse all 16 bytes: index i takes byte 15-i.
    let mask = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    // SAFETY: unaligned load — `block` is a live 16-byte reference.
    let raw = unsafe { _mm_loadu_si128(block.as_ptr().cast::<__m128i>()) };
    _mm_shuffle_epi8(raw, mask)
}

/// Reverses back to GCM byte order and stores.
#[target_feature(enable = "pclmulqdq,ssse3")]
fn store_be(v: __m128i) -> [u8; 16] {
    let mask = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    let swapped = _mm_shuffle_epi8(v, mask);
    let mut out = [0u8; 16];
    // SAFETY: unaligned store — `out` is a live 16-byte buffer.
    unsafe { _mm_storeu_si128(out.as_mut_ptr().cast::<__m128i>(), swapped) };
    out
}

/// 128×128 → 256-bit carry-less product, schoolbook over 64-bit halves:
/// `lo = a0·b0`, `hi = a1·b1`, with the cross terms `a0·b1 ⊕ a1·b0` split
/// across the middle. Returns `(hi, lo)`.
#[target_feature(enable = "pclmulqdq,ssse3")]
fn clmul256(a: __m128i, b: __m128i) -> (__m128i, __m128i) {
    let lo = _mm_clmulepi64_si128::<0x00>(a, b);
    let hi = _mm_clmulepi64_si128::<0x11>(a, b);
    let mid = _mm_xor_si128(
        _mm_clmulepi64_si128::<0x10>(a, b),
        _mm_clmulepi64_si128::<0x01>(a, b),
    );
    (
        _mm_xor_si128(hi, _mm_srli_si128::<8>(mid)),
        _mm_xor_si128(lo, _mm_slli_si128::<8>(mid)),
    )
}

/// Reduces a 256-bit carry-less product `(hi, lo)` to a field element.
///
/// First shifts the whole 256-bit value left by one bit — GCM's operands
/// are bit-reflected, so the plain carry-less product sits one bit low —
/// then applies Intel's two-phase reduction modulo
/// `x^128 + x^7 + x^2 + x + 1` (phase one folds via left shifts by
/// 31/30/25, phase two via right shifts by 1/2/7). Linear over XOR, so
/// several products may be accumulated into `(hi, lo)` before one call.
#[target_feature(enable = "pclmulqdq,ssse3")]
fn reduce(hi: __m128i, lo: __m128i) -> __m128i {
    // 256-bit shift left by 1: per-lane shifts plus carries across the
    // 32-bit lane and 128-bit register boundaries.
    let carry_lo = _mm_srli_epi32::<31>(lo);
    let carry_hi = _mm_srli_epi32::<31>(hi);
    let lo = _mm_or_si128(_mm_slli_epi32::<1>(lo), _mm_slli_si128::<4>(carry_lo));
    let hi = _mm_or_si128(
        _mm_or_si128(_mm_slli_epi32::<1>(hi), _mm_slli_si128::<4>(carry_hi)),
        _mm_srli_si128::<12>(carry_lo),
    );
    // Phase 1: multiply the low half by x^127 + x^126 + x^121 (left
    // shifts by 31, 30, 25) and fold the top 96 bits back in.
    let t = _mm_xor_si128(
        _mm_xor_si128(_mm_slli_epi32::<31>(lo), _mm_slli_epi32::<30>(lo)),
        _mm_slli_epi32::<25>(lo),
    );
    let fold_hi = _mm_srli_si128::<4>(t);
    let lo = _mm_xor_si128(lo, _mm_slli_si128::<12>(t));
    // Phase 2: right shifts by 1, 2, 7 complete the reduction.
    let t2 = _mm_xor_si128(
        _mm_xor_si128(_mm_srli_epi32::<1>(lo), _mm_srli_epi32::<2>(lo)),
        _mm_xor_si128(_mm_srli_epi32::<7>(lo), fold_hi),
    );
    _mm_xor_si128(hi, _mm_xor_si128(lo, t2))
}

/// Single GF(2^128) multiply `x · h` in GCM byte order.
///
/// # Panics
///
/// Panics if the CPU does not support PCLMULQDQ+SSSE3.
#[must_use]
pub fn mul(x: &[u8; 16], h: &[u8; 16]) -> [u8; 16] {
    assert!(available(), "PCLMULQDQ GHASH without CPU support");
    // SAFETY: feature gate — `available()` verified CPU support above.
    unsafe { mul_impl(x, h) }
}

#[target_feature(enable = "pclmulqdq,ssse3")]
fn mul_impl(x: &[u8; 16], h: &[u8; 16]) -> [u8; 16] {
    let (hi, lo) = clmul256(load_be(x), load_be(h));
    store_be(reduce(hi, lo))
}

/// Bulk GHASH fold: absorbs `blocks` into accumulator `y`, four blocks per
/// reduction.
///
/// `hpow` holds `[H, H², H³, H⁴]` in GCM byte order (precomputed by
/// [`crate::ghash::GhashKey`] with the portable field arithmetic). Each
/// 4-block group computes
/// `y ← reduce(clmul(y⊕b₀, H⁴) ⊕ clmul(b₁, H³) ⊕ clmul(b₂, H²) ⊕ clmul(b₃, H))`;
/// leftover blocks fall back to one multiply each. Returns the new `y`.
///
/// # Panics
///
/// Panics if the CPU does not support PCLMULQDQ+SSSE3.
#[must_use]
pub fn fold(y: &[u8; 16], hpow: &[[u8; 16]; 4], blocks: &[[u8; 16]]) -> [u8; 16] {
    assert!(available(), "PCLMULQDQ GHASH without CPU support");
    // SAFETY: feature gate — `available()` verified CPU support above.
    unsafe { fold_impl(y, hpow, blocks) }
}

#[target_feature(enable = "pclmulqdq,ssse3")]
fn fold_impl(y: &[u8; 16], hpow: &[[u8; 16]; 4], blocks: &[[u8; 16]]) -> [u8; 16] {
    let h1 = load_be(&hpow[0]);
    let h2 = load_be(&hpow[1]);
    let h3 = load_be(&hpow[2]);
    let h4 = load_be(&hpow[3]);
    let mut acc = load_be(y);
    let mut groups = blocks.chunks_exact(4);
    for group in &mut groups {
        // The shift/reduction are linear over XOR, so the four products
        // accumulate in 256-bit form and reduce once.
        let (hi0, lo0) = clmul256(_mm_xor_si128(acc, load_be(&group[0])), h4);
        let (hi1, lo1) = clmul256(load_be(&group[1]), h3);
        let (hi2, lo2) = clmul256(load_be(&group[2]), h2);
        let (hi3, lo3) = clmul256(load_be(&group[3]), h1);
        let hi = _mm_xor_si128(_mm_xor_si128(hi0, hi1), _mm_xor_si128(hi2, hi3));
        let lo = _mm_xor_si128(_mm_xor_si128(lo0, lo1), _mm_xor_si128(lo2, lo3));
        acc = reduce(hi, lo);
    }
    for block in groups.remainder() {
        let (hi, lo) = clmul256(_mm_xor_si128(acc, load_be(block)), h1);
        acc = reduce(hi, lo);
    }
    store_be(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghash::Gf128;

    fn soft_mul(x: [u8; 16], h: [u8; 16]) -> [u8; 16] {
        Gf128::from_bytes(x).mul(Gf128::from_bytes(h)).to_bytes()
    }

    fn hpowers(h: [u8; 16]) -> [[u8; 16]; 4] {
        let hf = Gf128::from_bytes(h);
        let mut pow = [[0u8; 16]; 4];
        let mut acc = hf;
        for slot in &mut pow {
            *slot = acc.to_bytes();
            acc = acc.mul(hf);
        }
        pow
    }

    #[test]
    fn single_mul_matches_bit_loop_oracle() {
        if !available() {
            return;
        }
        let cases: [([u8; 16], [u8; 16]); 4] = [
            ([0u8; 16], [0xFF; 16]),
            ([0x80; 16], [0x01; 16]),
            (
                {
                    let mut b = [0u8; 16];
                    b[0] = 0x80; // the field's 1
                    b
                },
                [0x5A; 16],
            ),
            ([0xC3; 16], [0x3C; 16]),
        ];
        for (x, h) in cases {
            assert_eq!(mul(&x, &h), soft_mul(x, h), "x={x:02x?} h={h:02x?}");
        }
        // Pseudo-random sweep via a tiny LCG (deterministic).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next_block = || {
            let mut b = [0u8; 16];
            for byte in &mut b {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *byte = (state >> 56) as u8;
            }
            b
        };
        for _ in 0..64 {
            let x = next_block();
            let h = next_block();
            assert_eq!(mul(&x, &h), soft_mul(x, h));
        }
    }

    #[test]
    fn fold_matches_sequential_horner() {
        if !available() {
            return;
        }
        let h = [0x77u8; 16];
        let pow = hpowers(h);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 12, 13] {
            let blocks: Vec<[u8; 16]> = (0..len).map(|i| [(i as u8) * 7 + 1; 16]).collect();
            let y0 = [0x11u8; 16];
            // Reference: one multiply per block with the bit-loop oracle.
            let hf = Gf128::from_bytes(h);
            let mut y = Gf128::from_bytes(y0);
            for b in &blocks {
                y = y.add(Gf128::from_bytes(*b)).mul(hf);
            }
            assert_eq!(fold(&y0, &pow, &blocks), y.to_bytes(), "len={len}");
        }
    }
}
