//! From-scratch cryptographic primitives and engine timing model for the
//! secure multi-GPU communication stack.
//!
//! The paper protects every CPU–GPU and GPU–GPU message with counter-mode
//! authenticated encryption performed by "fully pipelined AES-GCM engines"
//! with a 40-cycle latency. This crate provides both halves of that model:
//!
//! * **Functional crypto** — a complete software implementation of AES-128
//!   ([`aes`]), counter-mode keystream generation ([`ctr`] — this *is* the
//!   one-time pad of the paper), GHASH over GF(2^128) ([`ghash`]), and the
//!   AES-GCM authenticated-encryption composition ([`gcm`]). This is used by
//!   the functional secure channel in `mgpu-secure` so the protocol is
//!   exercised with real bits, not placeholders.
//! * **Timing model** — [`engine::AesEngine`], a pipelined engine that
//!   tracks *when* a requested pad becomes ready (1 issue/cycle, fixed
//!   latency), which is what the discrete-event simulation consumes.
//!
//! The functional primitives dispatch through a runtime-selected
//! [`backend::Backend`]: portable software (T-table AES, Shoup-table
//! GHASH) everywhere, and on `x86_64` CPUs with the `aes`/`pclmulqdq`
//! features, hardware AES-NI ([`aesni`]) and carry-less-multiply GHASH
//! ([`clmul`]) — bit-for-bit equivalent, several times faster, and
//! constant-time. `MGPU_CRYPTO_BACKEND=soft` forces the software path.
//!
//! # Safety
//!
//! The only `unsafe` in this crate is the `x86_64` intrinsics code in
//! [`aesni`] and [`clmul`], each use fenced behind runtime CPU-feature
//! detection and documented with a `// SAFETY:` contract at the use site
//! (`unsafe_op_in_unsafe_fn` is denied, and CI lints that every unsafe
//! block carries its comment).
//!
//! # Examples
//!
//! ```
//! use mgpu_crypto::gcm::AesGcm;
//!
//! let key = [0x42u8; 16];
//! let gcm = AesGcm::new(&key);
//! let nonce = [7u8; 12];
//! let plaintext = b"secret cacheline contents".to_vec();
//!
//! let sealed = gcm.seal(&nonce, b"header", &plaintext);
//! let opened = gcm.open(&nonce, b"header", &sealed).expect("authentic");
//! assert_eq!(opened, plaintext);
//! ```

// `unsafe` is denied crate-wide and re-allowed only inside the two
// hardware-intrinsics modules, which carry the safety contract.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod aes;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub mod aesni;
pub mod backend;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub mod clmul;
pub mod ctr;
pub mod engine;
pub mod gcm;
pub mod ghash;
pub mod pad;

pub use aes::Aes128;
pub use backend::Backend;
pub use engine::AesEngine;
pub use gcm::AesGcm;
pub use pad::{OtpPad, PadSeed};
