//! Pad seeds and pre-generated one-time pads.
//!
//! The paper (Fig. 4) derives every pad from a unique seed combining the
//! message counter, sender ID and receiver ID. A [`PadSeed`] captures that
//! triple; an [`OtpPad`] is the materialized pair of pads an OTP buffer
//! entry stores: a 512-bit encryption pad and a 128-bit authentication pad
//! (§IV-D gives the entry layout).

use crate::ctr::CtrKeystream;

/// The (sender, receiver, counter) triple that uniquely identifies a pad.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::pad::PadSeed;
///
/// let seed = PadSeed::new(1, 2, 99);
/// assert_eq!(seed.next(), PadSeed::new(1, 2, 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PadSeed {
    /// Sending node's raw ID.
    pub sender: u16,
    /// Receiving node's raw ID.
    pub receiver: u16,
    /// Per-pair message counter (`MsgCTR`).
    pub counter: u64,
}

impl PadSeed {
    /// Creates a seed from its components.
    #[must_use]
    pub const fn new(sender: u16, receiver: u16, counter: u64) -> Self {
        PadSeed {
            sender,
            receiver,
            counter,
        }
    }

    /// The seed for the next message on the same path.
    #[must_use]
    pub const fn next(self) -> Self {
        PadSeed {
            counter: self.counter + 1,
            ..self
        }
    }

    /// Encodes the seed into an AES counter block. The layout mirrors the
    /// paper's Fig. 4 seed construction: sender ID, receiver ID, MsgCTR,
    /// and a per-message block index in the low 32 bits (CTR-mode position).
    #[must_use]
    pub fn to_counter_block(self, block_idx: u32) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[0..2].copy_from_slice(&self.sender.to_be_bytes());
        block[2..4].copy_from_slice(&self.receiver.to_be_bytes());
        block[4..12].copy_from_slice(&self.counter.to_be_bytes());
        block[12..16].copy_from_slice(&block_idx.to_be_bytes());
        block
    }

    /// The GCM-style 12-byte nonce form of this seed (sender ‖ receiver ‖
    /// counter), used by the functional secure channel.
    #[must_use]
    pub fn to_nonce(self) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[0..2].copy_from_slice(&self.sender.to_be_bytes());
        nonce[2..4].copy_from_slice(&self.receiver.to_be_bytes());
        nonce[4..12].copy_from_slice(&self.counter.to_be_bytes());
        nonce
    }
}

/// A fully materialized OTP buffer entry payload: the encryption pad for a
/// 64 B cacheline plus the 128-bit authentication pad.
///
/// Paper §IV-D: "an OTP buffer entry consists of a valid bit (1 bit), an
/// encryption pad (512 bits), an authentication pad (128 bits), and a
/// counter (64 bits)". The valid bit and counter live in the scheme tables
/// (`mgpu-secure`); this type holds the cryptographic material.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtpPad {
    /// Seed this pad was generated from.
    pub seed: PadSeed,
    /// 512-bit pad XORed with the cacheline data.
    pub encryption: [u8; 64],
    /// 128-bit pad used to mask the GHASH output into the final MAC.
    pub authentication: [u8; 16],
}

impl OtpPad {
    /// Generates the pad pair for `seed` under `keystream`'s session key.
    ///
    /// The authentication pad uses a disjoint block index (`u32::MAX`) so it
    /// never overlaps the four encryption-pad blocks (indices 0..4).
    #[must_use]
    pub fn generate(keystream: &CtrKeystream, seed: PadSeed) -> Self {
        OtpPad {
            seed,
            encryption: keystream.pad_64(seed),
            authentication: keystream.block(seed, u32::MAX),
        }
    }

    /// The storage cost of one entry in bits, including the valid bit and
    /// counter held by the table (paper §IV-D: 705 bits).
    pub const ENTRY_BITS: u64 = 1 + 512 + 128 + 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_block_layout() {
        let seed = PadSeed::new(0x0102, 0x0304, 0x05060708090a0b0c);
        let block = seed.to_counter_block(0x0d0e0f10);
        assert_eq!(&block[0..2], &[0x01, 0x02]);
        assert_eq!(&block[2..4], &[0x03, 0x04]);
        assert_eq!(
            &block[4..12],
            &[0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c]
        );
        assert_eq!(&block[12..16], &[0x0d, 0x0e, 0x0f, 0x10]);
    }

    #[test]
    fn nonce_is_counter_block_prefix() {
        let seed = PadSeed::new(7, 9, 1234);
        let nonce = seed.to_nonce();
        let block = seed.to_counter_block(0);
        assert_eq!(&nonce[..], &block[..12]);
    }

    #[test]
    fn next_increments_only_counter() {
        let seed = PadSeed::new(3, 4, 10);
        let n = seed.next();
        assert_eq!(n.sender, 3);
        assert_eq!(n.receiver, 4);
        assert_eq!(n.counter, 11);
    }

    #[test]
    fn generated_pads_differ_between_enc_and_auth() {
        let ks = CtrKeystream::new(&[5; 16]);
        let pad = OtpPad::generate(&ks, PadSeed::new(1, 2, 3));
        // The auth pad must not equal any encryption-pad block.
        for chunk in pad.encryption.chunks_exact(16) {
            assert_ne!(chunk, pad.authentication);
        }
    }

    #[test]
    fn entry_bits_match_paper_table_i() {
        assert_eq!(OtpPad::ENTRY_BITS, 705);
        // 32 entries -> 2820 bytes -> "2.75 KB" in Table I.
        assert_eq!((OtpPad::ENTRY_BITS * 32).div_ceil(8), 2820);
    }

    #[test]
    fn generation_is_deterministic() {
        let ks = CtrKeystream::new(&[5; 16]);
        let seed = PadSeed::new(1, 2, 3);
        assert_eq!(OtpPad::generate(&ks, seed), OtpPad::generate(&ks, seed));
    }
}
