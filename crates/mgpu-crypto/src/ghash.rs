//! GHASH — the universal hash of AES-GCM, over GF(2^128).
//!
//! GHASH authenticates data by evaluating a polynomial over GF(2^128) at a
//! secret point `H = AES_K(0^128)`. Because the expensive part (the GF
//! multiplies) depends only on the data and `H`, while the final masking pad
//! depends only on the counter, the MAC can be completed with "only a GHASH
//! computation time" once the authentication pad is pre-generated
//! (paper Fig. 6c).
//!
//! Multiplication by `H` dispatches per key through the [`crate::backend`]
//! layer:
//!
//! * **Software** — Shoup's 8-bit table method: a 256-entry table of
//!   `byte · H` products is built once per key ([`GhashKey`]) and each
//!   block multiply becomes 16 table lookups plus 16 byte-shifts, instead
//!   of the 128-iteration bit loop of [`Gf128::mul`]. The bit loop is kept
//!   as the reference oracle and the two are checked for equivalence in
//!   tests.
//! * **Hardware** — `x86_64` PCLMULQDQ ([`crate::clmul`]): one carry-less
//!   multiply per block, and for bulk data a 4-block aggregated reduction
//!   over the precomputed `H¹..H⁴` power table ([`GhashKey::fold_blocks`],
//!   which [`Ghash::update`] feeds every full-block run through).
//!   Bit-for-bit equal to the software path and constant-time, unlike the
//!   data-indexed Shoup table.

use crate::backend::{self, Backend};
use std::sync::Arc;

/// An element of GF(2^128) in GCM's bit-reflected representation.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::ghash::Gf128;
///
/// let a = Gf128::from_bytes([3u8; 16]);
/// let b = Gf128::from_bytes([5u8; 16]);
/// // Multiplication is commutative.
/// assert_eq!(a.mul(b), b.mul(a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf128 {
    hi: u64,
    lo: u64,
}

impl Gf128 {
    /// The additive identity.
    pub const ZERO: Gf128 = Gf128 { hi: 0, lo: 0 };

    /// The multiplicative identity (GCM bit order: MSB of byte 0 set).
    pub const ONE: Gf128 = Gf128 { hi: 1 << 63, lo: 0 };

    /// Interprets 16 big-endian bytes as a field element.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Gf128 {
            hi: u64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes")),
            lo: u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Serializes back to 16 big-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.hi.to_be_bytes());
        out[8..16].copy_from_slice(&self.lo.to_be_bytes());
        out
    }

    /// Field addition = XOR.
    // Named like the mathematical operation on purpose; implementing
    // `std::ops` would invite accidental use in non-field contexts.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, rhs: Gf128) -> Gf128 {
        Gf128 {
            hi: self.hi ^ rhs.hi,
            lo: self.lo ^ rhs.lo,
        }
    }

    /// Field multiplication per NIST SP 800-38D Algorithm 1.
    ///
    /// Bit i of the operand (counting from the MSB of byte 0, GCM order)
    /// selects whether the running product accumulates `V`, which is doubled
    /// (shifted right with conditional reduction by `R = 0xE1 << 120`)
    /// each step.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, rhs: Gf128) -> Gf128 {
        let mut z = Gf128::ZERO;
        let mut v = rhs;
        for i in 0..128 {
            let xi = if i < 64 {
                (self.hi >> (63 - i)) & 1
            } else {
                (self.lo >> (127 - i)) & 1
            };
            if xi == 1 {
                z = z.add(v);
            }
            // v = v * x (right shift in GCM bit order), reduce if the bit
            // shifted out was set.
            let lsb = v.lo & 1;
            v.lo = (v.lo >> 1) | (v.hi << 63);
            v.hi >>= 1;
            if lsb == 1 {
                v.hi ^= 0xE1u64 << 56;
            }
        }
        z
    }

    /// Multiplies by `x` (one GCM right-shift with reduction) — the
    /// doubling step used to build the Shoup table.
    #[must_use]
    fn mul_x(self) -> Gf128 {
        let lsb = self.lo & 1;
        let mut v = Gf128 {
            hi: self.hi >> 1,
            lo: (self.lo >> 1) | (self.hi << 63),
        };
        if lsb == 1 {
            v.hi ^= 0xE1u64 << 56;
        }
        v
    }
}

/// Reduction constants for a right-shift by 8 (multiplication by `x^8`).
///
/// Shifting an element right by one bit reduces by XORing `0xE1 << 120`
/// when the dropped bit was set; over 8 shifts the dropped byte `b`
/// contributes, for each set bit `j`, that constant shifted right `7 - j`
/// more times. All contributions land in the top 16 bits of `hi`, so the
/// whole shift-by-8 reduction is one table lookup.
const fn build_reduce8() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut acc = 0u64;
        let mut j = 0;
        while j < 8 {
            if (b >> j) & 1 == 1 {
                acc ^= 0xE1u64 << (49 + j);
            }
            j += 1;
        }
        table[b] = acc;
        b += 1;
    }
    table
}

const REDUCE8: [u64; 256] = build_reduce8();

/// A GHASH key: `H` expanded into Shoup's 256-entry product table.
///
/// Entry `b` holds `B(b) · H`, where `B(b)` is the degree-<8 polynomial a
/// byte denotes in GCM bit order (MSB = lowest-degree coefficient). The
/// table costs 4 KB and is built once per key; cloning shares it.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::ghash::{Gf128, GhashKey};
///
/// let h = [0x25u8; 16];
/// let key = GhashKey::new(h);
/// let x = Gf128::from_bytes([7u8; 16]);
/// // The table multiply agrees with the bit-by-bit reference.
/// assert_eq!(key.mul(x), x.mul(Gf128::from_bytes(h)));
/// ```
#[derive(Debug, Clone)]
pub struct GhashKey {
    table: Arc<[Gf128; 256]>,
    /// `[H, H², H³, H⁴]` in GCM byte order, for the hardware 4-block
    /// aggregated fold. Computed with the portable bit-loop multiply so
    /// the table itself never depends on the backend.
    hpow: [[u8; 16]; 4],
    /// Implementation family, snapshotted from the process default at
    /// construction.
    backend: Backend,
}

impl GhashKey {
    /// Builds the key tables for hash subkey `h` (= `AES_K(0)` in GCM),
    /// using the process-default backend ([`backend::default_backend`]).
    #[must_use]
    pub fn new(h: [u8; 16]) -> Self {
        Self::with_backend(h, backend::default_backend())
    }

    /// Builds the key tables for an explicitly chosen backend. Both
    /// backends produce bit-identical GHASH output; only the instructions
    /// differ.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is not available on this CPU.
    #[must_use]
    pub fn with_backend(h: [u8; 16], backend: Backend) -> Self {
        assert!(
            backend.is_available(),
            "backend {} is not available on this host",
            backend.name()
        );
        let hf = Gf128::from_bytes(h);
        let mut hpow = [[0u8; 16]; 4];
        let mut acc = hf;
        for slot in &mut hpow {
            *slot = acc.to_bytes();
            acc = acc.mul(hf);
        }
        let h = hf;
        let mut table = [Gf128::ZERO; 256];
        // Single-bit bytes: 0x80 denotes x^0, 0x40 denotes x^1, ... 0x01
        // denotes x^7. Fill them by repeated doubling of H.
        let mut v = h;
        let mut bit = 0x80usize;
        while bit > 0 {
            table[bit] = v;
            v = v.mul_x();
            bit >>= 1;
        }
        // Composite bytes by linearity: b = p | q with p the highest bit.
        let mut p = 2usize;
        while p < 256 {
            for q in 1..p {
                table[p | q] = table[p].add(table[q]);
            }
            p <<= 1;
        }
        GhashKey {
            table: Arc::new(table),
            hpow,
            backend,
        }
    }

    /// The implementation family this key dispatches to.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Multiplies `x · H`, dispatching to the backend chosen at key
    /// construction.
    #[must_use]
    pub fn mul(&self, x: Gf128) -> Gf128 {
        match self.backend {
            Backend::Soft => self.mul_soft(x),
            #[cfg(target_arch = "x86_64")]
            Backend::HwAesClmul => {
                Gf128::from_bytes(crate::clmul::mul(&x.to_bytes(), &self.hpow[0]))
            }
            #[cfg(not(target_arch = "x86_64"))]
            Backend::HwAesClmul => unreachable!("hw backend unavailable off x86_64"),
        }
    }

    /// The Shoup-table multiply (software backend): Horner over the 16
    /// bytes of `x`, highest byte index first, shifting by `x^8` between
    /// steps.
    #[must_use]
    fn mul_soft(&self, x: Gf128) -> Gf128 {
        let bytes = x.to_bytes();
        let mut z = Gf128::ZERO;
        for &b in bytes.iter().rev() {
            // z = z * x^8, reducing the dropped byte in one lookup.
            let dropped = (z.lo & 0xff) as usize;
            z.lo = (z.lo >> 8) | (z.hi << 56);
            z.hi = (z.hi >> 8) ^ REDUCE8[dropped];
            z = z.add(self.table[b as usize]);
        }
        z
    }

    /// Absorbs a run of full blocks into accumulator `y`:
    /// `y ← (…((y ⊕ b₀)·H ⊕ b₁)·H … ⊕ bₙ₋₁)·H`.
    ///
    /// On the hardware backend this is the 4-block aggregated-reduction
    /// fold over the `H¹..H⁴` power table — the GHASH bulk fast path; on
    /// the software backend it is the sequential Horner loop.
    #[must_use]
    pub fn fold_blocks(&self, y: Gf128, blocks: &[[u8; 16]]) -> Gf128 {
        match self.backend {
            Backend::Soft => blocks.iter().fold(y, |acc, block| {
                self.mul_soft(acc.add(Gf128::from_bytes(*block)))
            }),
            #[cfg(target_arch = "x86_64")]
            Backend::HwAesClmul => {
                Gf128::from_bytes(crate::clmul::fold(&y.to_bytes(), &self.hpow, blocks))
            }
            #[cfg(not(target_arch = "x86_64"))]
            Backend::HwAesClmul => unreachable!("hw backend unavailable off x86_64"),
        }
    }
}

/// Streaming GHASH state keyed by `H`.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::ghash::Ghash;
///
/// let mut g = Ghash::new([0x25u8; 16]);
/// g.update(b"some data to authenticate");
/// let tag = g.finalize(25, 0);
/// assert_eq!(tag.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Ghash {
    key: GhashKey,
    y: Gf128,
    /// Pending partial block. Never exceeds 15 bytes: full blocks are
    /// absorbed straight from the input slice, so hashing allocates
    /// nothing.
    buf: [u8; 16],
    buf_len: usize,
}

impl Ghash {
    /// Creates a GHASH instance with hash subkey `h` (= `AES_K(0)` in GCM),
    /// building the key's product table. Callers hashing many messages
    /// under one key should build a [`GhashKey`] once and use
    /// [`Ghash::with_key`] instead.
    #[must_use]
    pub fn new(h: [u8; 16]) -> Self {
        Self::with_key(GhashKey::new(h))
    }

    /// Creates a GHASH instance from an already-expanded key (cheap: the
    /// table is shared, not rebuilt).
    #[must_use]
    pub fn with_key(key: GhashKey) -> Self {
        Ghash {
            key,
            y: Gf128::ZERO,
            buf: [0u8; 16],
            buf_len: 0,
        }
    }

    /// Absorbs bytes; data is processed in 16-byte blocks, zero-padded at
    /// block boundaries internally.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.absorb_block(block);
                self.buf_len = 0;
            }
        }
        // Feed the aligned full-block region to the key's bulk fold in one
        // call — on the hardware backend that is the 4-block aggregated
        // PCLMULQDQ path.
        let (blocks, rest) = data.as_chunks::<16>();
        self.y = self.key.fold_blocks(self.y, blocks);
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Pads the pending partial block with zeros and absorbs it, aligning
    /// the state to a block boundary (used between the AAD and ciphertext
    /// sections of GCM).
    pub fn pad_to_block(&mut self) {
        if self.buf_len > 0 {
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            self.absorb_block(block);
            self.buf_len = 0;
        }
    }

    /// Finishes the hash with the GCM length block:
    /// `len(AAD) || len(ciphertext)` in bits.
    #[must_use]
    pub fn finalize(mut self, aad_len_bytes: u64, ct_len_bytes: u64) -> [u8; 16] {
        self.pad_to_block();
        let mut len_block = [0u8; 16];
        len_block[0..8].copy_from_slice(&(aad_len_bytes * 8).to_be_bytes());
        len_block[8..16].copy_from_slice(&(ct_len_bytes * 8).to_be_bytes());
        self.absorb_block(len_block);
        self.y.to_bytes()
    }

    fn absorb_block(&mut self, block: [u8; 16]) {
        self.y = self.key.mul(self.y.add(Gf128::from_bytes(block)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold_on_samples() {
        let a = Gf128::from_bytes([0x12; 16]);
        let b = Gf128::from_bytes([0x34; 16]);
        let c = Gf128::from_bytes([0x56; 16]);
        // Commutativity.
        assert_eq!(a.mul(b), b.mul(a));
        // Associativity.
        assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        // Distributivity over XOR.
        assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
        // Identities.
        assert_eq!(a.mul(Gf128::ONE), a);
        assert_eq!(a.mul(Gf128::ZERO), Gf128::ZERO);
        assert_eq!(a.add(a), Gf128::ZERO);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut raw = [0u8; 16];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = i as u8 * 17;
        }
        assert_eq!(Gf128::from_bytes(raw).to_bytes(), raw);
    }

    #[test]
    fn ghash_zero_data_is_zero() {
        // GHASH of nothing (no AAD, no CT) is the length block times H,
        // with both lengths zero the length block is zero, so the result
        // stays zero regardless of H.
        let g = Ghash::new([0xAB; 16]);
        assert_eq!(g.finalize(0, 0), [0u8; 16]);
    }

    #[test]
    fn ghash_incremental_equals_oneshot() {
        let h = [0x77; 16];
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut one = Ghash::new(h);
        one.update(data);
        let mut two = Ghash::new(h);
        two.update(&data[..13]);
        two.update(&data[13..]);
        assert_eq!(
            one.finalize(0, data.len() as u64),
            two.finalize(0, data.len() as u64)
        );
    }

    #[test]
    fn ghash_is_sensitive_to_every_byte() {
        let h = [0x77; 16];
        let base = [0u8; 32];
        let mut g0 = Ghash::new(h);
        g0.update(&base);
        let t0 = g0.finalize(0, 32);
        for i in 0..32 {
            let mut tweaked = base;
            tweaked[i] ^= 1;
            let mut g = Ghash::new(h);
            g.update(&tweaked);
            assert_ne!(g.finalize(0, 32), t0, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn nist_gcm_ghash_vector() {
        // From NIST GCM test case 2 internals: H = AES_K(0) for K = 0^128 is
        // 66e94bd4ef8a2c3b884cfa59ca342b2e. GHASH(H, {}, C) with
        // C = 0388dace60b6a392f328c2b971b2fe78 equals
        // f38cbb1ad69223dcc3457ae5b6b0f885.
        fn hex16(s: &str) -> [u8; 16] {
            let mut out = [0u8; 16];
            for i in 0..16 {
                out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
            }
            out
        }
        let h = hex16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        let c = hex16("0388dace60b6a392f328c2b971b2fe78");
        let mut g = Ghash::new(h);
        g.update(&c);
        assert_eq!(g.finalize(0, 16), hex16("f38cbb1ad69223dcc3457ae5b6b0f885"));
    }

    #[test]
    fn table_mul_matches_reference_on_edge_cases() {
        for h in [[0u8; 16], [0xFF; 16], {
            let mut b = [0u8; 16];
            b[0] = 0x80; // the field's 1
            b
        }] {
            let key = GhashKey::new(h);
            let hf = Gf128::from_bytes(h);
            for x in [Gf128::ZERO, Gf128::ONE, Gf128::from_bytes([1; 16]), hf] {
                assert_eq!(key.mul(x), x.mul(hf), "h={h:02x?}");
            }
        }
    }

    #[test]
    fn with_key_shares_the_table() {
        let key = GhashKey::new([0x5A; 16]);
        let data = b"shared-table ghash input, more than one block long....";
        let mut a = Ghash::with_key(key.clone());
        a.update(data);
        let mut b = Ghash::new([0x5A; 16]);
        b.update(data);
        assert_eq!(
            a.finalize(0, data.len() as u64),
            b.finalize(0, data.len() as u64)
        );
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        fn gf() -> impl Strategy<Value = Gf128> {
            proptest::array::uniform16(any::<u8>()).prop_map(Gf128::from_bytes)
        }

        proptest! {
            #[test]
            fn mul_commutes(a in gf(), b in gf()) {
                prop_assert_eq!(a.mul(b), b.mul(a));
            }

            #[test]
            fn table_mul_matches_bitwise_mul(h in proptest::array::uniform16(any::<u8>()),
                                             x in gf()) {
                // Shoup's table method against SP 800-38D Algorithm 1.
                let key = GhashKey::new(h);
                prop_assert_eq!(key.mul(x), x.mul(Gf128::from_bytes(h)));
            }

            #[test]
            fn mul_distributes(a in gf(), b in gf(), c in gf()) {
                prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
            }

            #[test]
            fn one_is_identity(a in gf()) {
                prop_assert_eq!(a.mul(Gf128::ONE), a);
                prop_assert_eq!(Gf128::ONE.mul(a), a);
            }

            #[test]
            fn ghash_linear_in_xor(h in proptest::array::uniform16(any::<u8>()),
                                   a in proptest::collection::vec(any::<u8>(), 16),
                                   b in proptest::collection::vec(any::<u8>(), 16)) {
                // GHASH over a single block is H*(block [+] ...); over XORed
                // inputs the tags XOR (with identical length blocks the
                // length contribution cancels).
                let tag = |data: &[u8]| {
                    let mut g = Ghash::new(h);
                    g.update(data);
                    Gf128::from_bytes(g.finalize(0, data.len() as u64))
                };
                let xored: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
                let zero = vec![0u8; 16];
                let lhs = tag(&a).add(tag(&b));
                let rhs = tag(&xored).add(tag(&zero));
                prop_assert_eq!(lhs, rhs);
            }
        }
    }
}
