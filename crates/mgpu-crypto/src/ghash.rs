//! GHASH — the universal hash of AES-GCM, over GF(2^128).
//!
//! GHASH authenticates data by evaluating a polynomial over GF(2^128) at a
//! secret point `H = AES_K(0^128)`. Because the expensive part (the GF
//! multiplies) depends only on the data and `H`, while the final masking pad
//! depends only on the counter, the MAC can be completed with "only a GHASH
//! computation time" once the authentication pad is pre-generated
//! (paper Fig. 6c).

/// An element of GF(2^128) in GCM's bit-reflected representation.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::ghash::Gf128;
///
/// let a = Gf128::from_bytes([3u8; 16]);
/// let b = Gf128::from_bytes([5u8; 16]);
/// // Multiplication is commutative.
/// assert_eq!(a.mul(b), b.mul(a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf128 {
    hi: u64,
    lo: u64,
}

impl Gf128 {
    /// The additive identity.
    pub const ZERO: Gf128 = Gf128 { hi: 0, lo: 0 };

    /// The multiplicative identity (GCM bit order: MSB of byte 0 set).
    pub const ONE: Gf128 = Gf128 {
        hi: 1 << 63,
        lo: 0,
    };

    /// Interprets 16 big-endian bytes as a field element.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Gf128 {
            hi: u64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes")),
            lo: u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Serializes back to 16 big-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.hi.to_be_bytes());
        out[8..16].copy_from_slice(&self.lo.to_be_bytes());
        out
    }

    /// Field addition = XOR.
    // Named like the mathematical operation on purpose; implementing
    // `std::ops` would invite accidental use in non-field contexts.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, rhs: Gf128) -> Gf128 {
        Gf128 {
            hi: self.hi ^ rhs.hi,
            lo: self.lo ^ rhs.lo,
        }
    }

    /// Field multiplication per NIST SP 800-38D Algorithm 1.
    ///
    /// Bit i of the operand (counting from the MSB of byte 0, GCM order)
    /// selects whether the running product accumulates `V`, which is doubled
    /// (shifted right with conditional reduction by `R = 0xE1 << 120`)
    /// each step.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, rhs: Gf128) -> Gf128 {
        let mut z = Gf128::ZERO;
        let mut v = rhs;
        for i in 0..128 {
            let xi = if i < 64 {
                (self.hi >> (63 - i)) & 1
            } else {
                (self.lo >> (127 - i)) & 1
            };
            if xi == 1 {
                z = z.add(v);
            }
            // v = v * x (right shift in GCM bit order), reduce if the bit
            // shifted out was set.
            let lsb = v.lo & 1;
            v.lo = (v.lo >> 1) | (v.hi << 63);
            v.hi >>= 1;
            if lsb == 1 {
                v.hi ^= 0xE1u64 << 56;
            }
        }
        z
    }
}

/// Streaming GHASH state keyed by `H`.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::ghash::Ghash;
///
/// let mut g = Ghash::new([0x25u8; 16]);
/// g.update(b"some data to authenticate");
/// let tag = g.finalize(25, 0);
/// assert_eq!(tag.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Ghash {
    h: Gf128,
    y: Gf128,
    buffer: Vec<u8>,
}

impl Ghash {
    /// Creates a GHASH instance with hash subkey `h` (= `AES_K(0)` in GCM).
    #[must_use]
    pub fn new(h: [u8; 16]) -> Self {
        Ghash {
            h: Gf128::from_bytes(h),
            y: Gf128::ZERO,
            buffer: Vec::new(),
        }
    }

    /// Absorbs bytes; data is processed in 16-byte blocks, zero-padded at
    /// block boundaries internally.
    pub fn update(&mut self, data: &[u8]) {
        self.buffer.extend_from_slice(data);
        while self.buffer.len() >= 16 {
            let block: [u8; 16] = self.buffer[..16].try_into().expect("16 bytes");
            self.absorb_block(block);
            self.buffer.drain(..16);
        }
    }

    /// Pads the pending partial block with zeros and absorbs it, aligning
    /// the state to a block boundary (used between the AAD and ciphertext
    /// sections of GCM).
    pub fn pad_to_block(&mut self) {
        if !self.buffer.is_empty() {
            let mut block = [0u8; 16];
            block[..self.buffer.len()].copy_from_slice(&self.buffer);
            self.absorb_block(block);
            self.buffer.clear();
        }
    }

    /// Finishes the hash with the GCM length block:
    /// `len(AAD) || len(ciphertext)` in bits.
    #[must_use]
    pub fn finalize(mut self, aad_len_bytes: u64, ct_len_bytes: u64) -> [u8; 16] {
        self.pad_to_block();
        let mut len_block = [0u8; 16];
        len_block[0..8].copy_from_slice(&(aad_len_bytes * 8).to_be_bytes());
        len_block[8..16].copy_from_slice(&(ct_len_bytes * 8).to_be_bytes());
        self.absorb_block(len_block);
        self.y.to_bytes()
    }

    fn absorb_block(&mut self, block: [u8; 16]) {
        self.y = self.y.add(Gf128::from_bytes(block)).mul(self.h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold_on_samples() {
        let a = Gf128::from_bytes([0x12; 16]);
        let b = Gf128::from_bytes([0x34; 16]);
        let c = Gf128::from_bytes([0x56; 16]);
        // Commutativity.
        assert_eq!(a.mul(b), b.mul(a));
        // Associativity.
        assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        // Distributivity over XOR.
        assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
        // Identities.
        assert_eq!(a.mul(Gf128::ONE), a);
        assert_eq!(a.mul(Gf128::ZERO), Gf128::ZERO);
        assert_eq!(a.add(a), Gf128::ZERO);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut raw = [0u8; 16];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = i as u8 * 17;
        }
        assert_eq!(Gf128::from_bytes(raw).to_bytes(), raw);
    }

    #[test]
    fn ghash_zero_data_is_zero() {
        // GHASH of nothing (no AAD, no CT) is the length block times H,
        // with both lengths zero the length block is zero, so the result
        // stays zero regardless of H.
        let g = Ghash::new([0xAB; 16]);
        assert_eq!(g.finalize(0, 0), [0u8; 16]);
    }

    #[test]
    fn ghash_incremental_equals_oneshot() {
        let h = [0x77; 16];
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut one = Ghash::new(h);
        one.update(data);
        let mut two = Ghash::new(h);
        two.update(&data[..13]);
        two.update(&data[13..]);
        assert_eq!(one.finalize(0, data.len() as u64), two.finalize(0, data.len() as u64));
    }

    #[test]
    fn ghash_is_sensitive_to_every_byte() {
        let h = [0x77; 16];
        let base = [0u8; 32];
        let mut g0 = Ghash::new(h);
        g0.update(&base);
        let t0 = g0.finalize(0, 32);
        for i in 0..32 {
            let mut tweaked = base;
            tweaked[i] ^= 1;
            let mut g = Ghash::new(h);
            g.update(&tweaked);
            assert_ne!(g.finalize(0, 32), t0, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn nist_gcm_ghash_vector() {
        // From NIST GCM test case 2 internals: H = AES_K(0) for K = 0^128 is
        // 66e94bd4ef8a2c3b884cfa59ca342b2e. GHASH(H, {}, C) with
        // C = 0388dace60b6a392f328c2b971b2fe78 equals
        // f38cbb1ad69223dcc3457ae5b6b0f885.
        fn hex16(s: &str) -> [u8; 16] {
            let mut out = [0u8; 16];
            for i in 0..16 {
                out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
            }
            out
        }
        let h = hex16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        let c = hex16("0388dace60b6a392f328c2b971b2fe78");
        let mut g = Ghash::new(h);
        g.update(&c);
        assert_eq!(g.finalize(0, 16), hex16("f38cbb1ad69223dcc3457ae5b6b0f885"));
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        fn gf() -> impl Strategy<Value = Gf128> {
            proptest::array::uniform16(any::<u8>()).prop_map(Gf128::from_bytes)
        }

        proptest! {
            #[test]
            fn mul_commutes(a in gf(), b in gf()) {
                prop_assert_eq!(a.mul(b), b.mul(a));
            }

            #[test]
            fn mul_distributes(a in gf(), b in gf(), c in gf()) {
                prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
            }

            #[test]
            fn one_is_identity(a in gf()) {
                prop_assert_eq!(a.mul(Gf128::ONE), a);
                prop_assert_eq!(Gf128::ONE.mul(a), a);
            }

            #[test]
            fn ghash_linear_in_xor(h in proptest::array::uniform16(any::<u8>()),
                                   a in proptest::collection::vec(any::<u8>(), 16),
                                   b in proptest::collection::vec(any::<u8>(), 16)) {
                // GHASH over a single block is H*(block [+] ...); over XORed
                // inputs the tags XOR (with identical length blocks the
                // length contribution cancels).
                let tag = |data: &[u8]| {
                    let mut g = Ghash::new(h);
                    g.update(data);
                    Gf128::from_bytes(g.finalize(0, data.len() as u64))
                };
                let xored: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
                let zero = vec![0u8; 16];
                let lhs = tag(&a).add(tag(&b));
                let rhs = tag(&xored).add(tag(&zero));
                prop_assert_eq!(lhs, rhs);
            }
        }
    }
}
