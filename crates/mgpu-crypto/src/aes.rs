//! AES-128 block cipher with runtime backend dispatch.
//!
//! Two implementations sit behind [`Aes128`], selected per instance by the
//! [`crate::backend`] layer:
//!
//! * **Software** — the classic 32-bit T-table formulation: SubBytes,
//!   ShiftRows and MixColumns for one output column collapse into four
//!   table lookups and four XORs. The tables are built at compile time
//!   from the S-box, and the key schedule is expanded once in
//!   [`Aes128::new`] and reused for every block, so the per-block cost is
//!   40 lookups per round batch instead of hundreds of byte operations. A
//!   byte-wise reference implementation is kept in the test module and
//!   checked for equivalence. This path is not constant-time (the lookups
//!   are data-dependent) and is retained as the portable fallback and the
//!   correctness oracle.
//! * **Hardware** — `x86_64` AES-NI ([`crate::aesni`]): `aeskeygenassist`
//!   key schedule and an 8-block interleaved `aesenc` pipeline behind
//!   [`Aes128::encrypt_blocks`]. Bit-for-bit equal to the software path,
//!   constant-time by construction, and ~an order of magnitude faster on
//!   bulk keystream.
//!
//! Either way the point is that the secure-communication protocol in this
//! repository is *functionally* real (pads, MACs and tamper detection all
//! operate on genuine AES output), while the performance model uses the
//! pipelined engine abstraction in [`crate::engine`]. Decryption of single
//! blocks is a test/GCM-free convenience and always runs the byte-wise
//! software path.

use crate::backend::{self, Backend};

/// The AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// An AES block.
pub type Block = [u8; BLOCK_SIZE];

/// AES S-box (FIPS-197 Figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box (FIPS-197 Figure 14).
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x (i.e. {02}) in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// T-table for row-0 bytes: `T0[x] = [2·S(x), S(x), S(x), 3·S(x)]` as a
/// big-endian column word. The tables for rows 1–3 are byte rotations of
/// this one (the MixColumns matrix is circulant).
const fn build_t0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i] as u32;
        let s2 = xtime(SBOX[i]) as u32;
        let s3 = s2 ^ s;
        t[i] = (s2 << 24) | (s << 16) | (s << 8) | s3;
        i += 1;
    }
    t
}

const fn rotate_table(src: &[u32; 256], r: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = src[i].rotate_right(r);
        i += 1;
    }
    t
}

const T0: [u32; 256] = build_t0();
const T1: [u32; 256] = rotate_table(&T0, 8);
const T2: [u32; 256] = rotate_table(&T0, 16);
const T3: [u32; 256] = rotate_table(&T0, 24);

/// General GF(2^8) multiply (used by the inverse MixColumns).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key, ready to encrypt or decrypt blocks.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::aes::Aes128;
///
/// let aes = Aes128::new(&[0u8; 16]);
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    /// The same schedule as big-endian column words, the form the T-table
    /// rounds consume directly.
    ek: [[u32; 4]; 11],
    /// Implementation family, snapshotted from the process default at
    /// construction.
    backend: Backend,
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never leak key material through Debug output.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

/// The FIPS-197 §5.2 software key expansion.
fn expand_key_soft(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        w[i].copy_from_slice(chunk);
    }
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for t in &mut temp {
                *t = SBOX[*t as usize];
            }
            temp[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    let mut round_keys = [[0u8; 16]; 11];
    for (r, rk) in round_keys.iter_mut().enumerate() {
        for c in 0..4 {
            rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
        }
    }
    round_keys
}

impl Aes128 {
    /// Expands a 128-bit key into the 11 round keys (FIPS-197 §5.2),
    /// using the process-default backend ([`backend::default_backend`]).
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_backend(key, backend::default_backend())
    }

    /// Expands a key for an explicitly chosen backend. Both backends
    /// produce the identical FIPS-197 schedule and identical ciphertext;
    /// only the instructions differ.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is not available on this CPU.
    #[must_use]
    pub fn with_backend(key: &[u8; 16], backend: Backend) -> Self {
        assert!(
            backend.is_available(),
            "backend {} is not available on this host",
            backend.name()
        );
        let round_keys = match backend {
            Backend::Soft => expand_key_soft(key),
            #[cfg(target_arch = "x86_64")]
            Backend::HwAesClmul => crate::aesni::expand_key(key),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::HwAesClmul => unreachable!("hw backend unavailable off x86_64"),
        };
        let mut ek = [[0u32; 4]; 11];
        for (er, rk) in ek.iter_mut().zip(&round_keys) {
            for (c, word) in er.iter_mut().enumerate() {
                *word = u32::from_be_bytes(rk[c * 4..c * 4 + 4].try_into().expect("4 bytes"));
            }
        }
        Aes128 {
            round_keys,
            ek,
            backend,
        }
    }

    /// The implementation family this instance dispatches to.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Encrypts one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, state: Block) -> Block {
        match self.backend {
            Backend::Soft => self.encrypt_block_soft(state),
            #[cfg(target_arch = "x86_64")]
            Backend::HwAesClmul => crate::aesni::encrypt_block(&self.round_keys, state),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::HwAesClmul => unreachable!("hw backend unavailable off x86_64"),
        }
    }

    /// The T-table encryption path (software backend).
    fn encrypt_block_soft(&self, state: Block) -> Block {
        // Load the four columns as big-endian words (row 0 in the MSB; the
        // state is column-major, so column c is bytes 4c..4c+4).
        let mut w = [0u32; 4];
        for c in 0..4 {
            w[c] = u32::from_be_bytes(state[c * 4..c * 4 + 4].try_into().expect("4 bytes"))
                ^ self.ek[0][c];
        }
        for round in 1..10 {
            let rk = &self.ek[round];
            w = [
                round_col(&w, 0, rk[0]),
                round_col(&w, 1, rk[1]),
                round_col(&w, 2, rk[2]),
                round_col(&w, 3, rk[3]),
            ];
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let mut out = [0u8; 16];
        let rk = &self.ek[10];
        for c in 0..4 {
            let word = (u32::from(SBOX[(w[c] >> 24) as usize]) << 24)
                | (u32::from(SBOX[((w[(c + 1) & 3] >> 16) & 0xff) as usize]) << 16)
                | (u32::from(SBOX[((w[(c + 2) & 3] >> 8) & 0xff) as usize]) << 8)
                | u32::from(SBOX[(w[(c + 3) & 3] & 0xff) as usize]);
            out[c * 4..c * 4 + 4].copy_from_slice(&(word ^ rk[c]).to_be_bytes());
        }
        out
    }

    /// Encrypts every block in `blocks` in place.
    ///
    /// This is the bulk entry point behind keystream and pad generation:
    /// one call amortizes the per-call overhead across a whole refill, and
    /// on the hardware backend runs the 8-block interleaved AES-NI
    /// pipeline (CTR counters are independent, so blocks need no
    /// chaining).
    pub fn encrypt_blocks(&self, blocks: &mut [Block]) {
        match self.backend {
            Backend::Soft => {
                for block in blocks.iter_mut() {
                    *block = self.encrypt_block_soft(*block);
                }
            }
            #[cfg(target_arch = "x86_64")]
            Backend::HwAesClmul => crate::aesni::encrypt_blocks(&self.round_keys, blocks),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::HwAesClmul => unreachable!("hw backend unavailable off x86_64"),
        }
    }

    /// Decrypts one 16-byte block.
    #[must_use]
    pub fn decrypt_block(&self, mut state: Block) -> Block {
        add_round_key(&mut state, &self.round_keys[10]);
        for round in (1..10).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

/// One middle-round output column: ShiftRows selects the source column for
/// each row (`c + r mod 4`), the T-tables apply SubBytes and the MixColumns
/// column for that row, and the round key is folded in.
#[inline]
fn round_col(w: &[u32; 4], c: usize, k: u32) -> u32 {
    T0[(w[c] >> 24) as usize]
        ^ T1[((w[(c + 1) & 3] >> 16) & 0xff) as usize]
        ^ T2[((w[(c + 2) & 3] >> 8) & 0xff) as usize]
        ^ T3[(w[(c + 3) & 3] & 0xff) as usize]
        ^ k
}

#[inline]
fn add_round_key(state: &mut Block, rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[cfg(test)]
#[inline]
fn sub_bytes(state: &mut Block) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut Block) {
    for s in state.iter_mut() {
        *s = INV_SBOX[*s as usize];
    }
}

/// State layout: column-major, state[c*4 + r] is row r, column c.
#[cfg(test)]
#[inline]
fn shift_rows(state: &mut Block) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn inv_shift_rows(state: &mut Block) {
    // Row 1: shift right by 1.
    let t = state[13];
    state[13] = state[9];
    state[9] = state[5];
    state[5] = state[1];
    state[1] = t;
    // Row 2: shift right by 2 (same as left by 2).
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift right by 3 (= left by 1).
    let t = state[3];
    state[3] = state[7];
    state[7] = state[11];
    state[11] = state[15];
    state[15] = t;
}

#[cfg(test)]
#[inline]
fn mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col = [
            state[c * 4],
            state[c * 4 + 1],
            state[c * 4 + 2],
            state[c * 4 + 3],
        ];
        state[c * 4] = xtime(col[0]) ^ xtime(col[1]) ^ col[1] ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ xtime(col[1]) ^ xtime(col[2]) ^ col[2] ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ xtime(col[3]) ^ col[3];
        state[c * 4 + 3] = xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col = [
            state[c * 4],
            state[c * 4 + 1],
            state[c * 4 + 2],
            state[c * 4 + 3],
        ];
        state[c * 4] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[c * 4 + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[c * 4 + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[c * 4 + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-wise FIPS-197 encryption (the pre-T-table implementation), kept
    /// as the reference oracle for the table path.
    fn encrypt_block_reference(aes: &Aes128, mut state: Block) -> Block {
        add_round_key(&mut state, &aes.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &aes.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &aes.round_keys[10]);
        state
    }

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn block(s: &str) -> Block {
        hex(s).try_into().unwrap()
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: key 2b7e151628aed2a6abf7158809cf4f3c,
        // plaintext 3243f6a8885a308d313198a2e0370734.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let aes = Aes128::new(&key);
        let ct = aes.encrypt_block(block("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, block("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let aes = Aes128::new(&key);
        let ct = aes.encrypt_block(block("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, block("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        // SP 800-38A F.1.1 ECB-AES128.Encrypt, all four blocks.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let aes = Aes128::new(&key);
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, expected) in cases {
            assert_eq!(aes.encrypt_block(block(pt)), block(expected));
        }
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let aes = Aes128::new(&key);
        let pt = block("00112233445566778899aabbccddeeff");
        assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
        // And the appendix C ciphertext decrypts to the plaintext.
        assert_eq!(
            aes.decrypt_block(block("69c4e0d86a7b0430d8cdb78070b4c55a")),
            pt
        );
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(&[0xAA; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains("170")); // 0xAA
        assert!(dbg.contains("Aes128"));
    }

    #[test]
    fn gmul_matches_xtime() {
        for b in 0u8..=255 {
            assert_eq!(gmul(b, 2), xtime(b));
            assert_eq!(gmul(b, 1), b);
            assert_eq!(gmul(b, 3), xtime(b) ^ b);
        }
    }

    #[test]
    fn distinct_keys_give_distinct_ciphertexts() {
        let a = Aes128::new(&[0u8; 16]);
        let b = Aes128::new(&[1u8; 16]);
        assert_ne!(a.encrypt_block([0u8; 16]), b.encrypt_block([0u8; 16]));
    }

    #[test]
    fn encrypt_blocks_matches_single_block_calls() {
        let aes = Aes128::new(&[0x42; 16]);
        let mut blocks: Vec<Block> = (0..33u8).map(|i| [i; 16]).collect();
        let expected: Vec<Block> = blocks.iter().map(|&b| aes.encrypt_block(b)).collect();
        aes.encrypt_blocks(&mut blocks);
        assert_eq!(blocks, expected);
    }

    #[test]
    fn hw_key_schedule_matches_soft() {
        // `aeskeygenassist` and the FIPS-197 software expansion must
        // produce byte-identical schedules for the dispatch to be sound.
        if !Backend::HwAesClmul.is_available() {
            return;
        }
        for key in [[0u8; 16], [0xFF; 16], [0x2B; 16], {
            let mut k = [0u8; 16];
            for (i, b) in k.iter_mut().enumerate() {
                *b = i as u8;
            }
            k
        }] {
            let soft = Aes128::with_backend(&key, Backend::Soft);
            let hw = Aes128::with_backend(&key, Backend::HwAesClmul);
            assert_eq!(soft.round_keys, hw.round_keys, "key={key:02x?}");
            assert_eq!(soft.ek, hw.ek);
        }
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip(key in proptest::array::uniform16(any::<u8>()),
                         pt in proptest::array::uniform16(any::<u8>())) {
                let aes = Aes128::new(&key);
                prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
            }

            #[test]
            fn encryption_is_a_permutation(key in proptest::array::uniform16(any::<u8>()),
                                           a in proptest::array::uniform16(any::<u8>()),
                                           b in proptest::array::uniform16(any::<u8>())) {
                prop_assume!(a != b);
                let aes = Aes128::new(&key);
                prop_assert_ne!(aes.encrypt_block(a), aes.encrypt_block(b));
            }

            #[test]
            fn t_table_matches_bytewise_reference(
                key in proptest::array::uniform16(any::<u8>()),
                pt in proptest::array::uniform16(any::<u8>())) {
                let aes = Aes128::new(&key);
                prop_assert_eq!(aes.encrypt_block(pt), encrypt_block_reference(&aes, pt));
            }
        }
    }
}
