//! Timing model of a fully pipelined AES-GCM engine.
//!
//! The paper assumes each processor's security hardware is a *fully
//! pipelined* AES-GCM unit with a fixed latency (Table III: 40 cycles).
//! Pipelining means a new pad generation can be issued every cycle, but any
//! individual pad takes the full latency to emerge. This module tracks
//! issue-port contention and completion times so the simulation can decide,
//! for each message, whether its pad is ready (`Hit`), in flight
//! (`Partial`), or not yet requested (`Miss`) — the classification of the
//! paper's Figs. 10 and 22.

use mgpu_types::{Cycle, Duration};

/// How much of the AES latency was hidden for one message
/// (paper Figs. 10/22: `OTP_Hit` / `OTP_Partial` / `OTP_Miss`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PadTiming {
    /// Pad was ready before the data arrived: only the 1-cycle XOR (and
    /// GHASH) remains on the critical path.
    Hit,
    /// Pad generation had been issued but was still in the pipeline; part of
    /// the latency is exposed.
    Partial {
        /// Cycles the message had to wait for the pad to finish.
        remaining: Duration,
    },
    /// No pad had been issued; the full AES latency is exposed.
    Miss,
}

impl PadTiming {
    /// The latency this classification adds to the message's critical path.
    /// A hit still costs one cycle for the XOR.
    #[must_use]
    pub fn exposed_latency(self, full: Duration) -> Duration {
        match self {
            PadTiming::Hit => Duration::cycles(1),
            PadTiming::Partial { remaining } => remaining + Duration::cycles(1),
            PadTiming::Miss => full + Duration::cycles(1),
        }
    }

    /// Whether any of the AES latency was hidden (hit or partial).
    #[must_use]
    pub fn latency_hidden(self) -> bool {
        !matches!(self, PadTiming::Miss)
    }
}

/// A pipelined pad-generation engine.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::engine::AesEngine;
/// use mgpu_types::{Cycle, Duration};
///
/// let mut engine = AesEngine::new(Duration::cycles(40));
/// // Issue a pad at t=0; it is ready at t=40.
/// let ready = engine.issue(Cycle::ZERO);
/// assert_eq!(ready, Cycle::new(40));
/// // A second issue in the same cycle is delayed one cycle by the
/// // single issue port.
/// let ready2 = engine.issue(Cycle::ZERO);
/// assert_eq!(ready2, Cycle::new(41));
/// ```
#[derive(Debug, Clone)]
pub struct AesEngine {
    latency: Duration,
    /// Next cycle at which the issue port is free.
    next_issue: Cycle,
    /// Statistics: total pads issued.
    issued: u64,
}

impl AesEngine {
    /// Creates an engine with the given pipeline latency.
    #[must_use]
    pub fn new(latency: Duration) -> Self {
        AesEngine {
            latency,
            next_issue: Cycle::ZERO,
            issued: 0,
        }
    }

    /// The configured pipeline latency.
    #[must_use]
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Issues one pad generation at time `now` (or as soon after as the
    /// issue port allows) and returns the cycle at which the pad is ready.
    pub fn issue(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_issue);
        self.next_issue = start + Duration::cycles(1);
        self.issued += 1;
        start + self.latency
    }

    /// Issues `count` back-to-back pad generations and returns when the
    /// *last* one completes, or `now` when `count` is zero (an empty refill
    /// finishes immediately — it must not charge the pipeline latency).
    /// Used for bulk refills after re-allocation.
    pub fn issue_many(&mut self, now: Cycle, count: u64) -> Cycle {
        let mut last = now;
        for _ in 0..count {
            last = self.issue(now);
        }
        last
    }

    /// Classifies a message that needs a pad which was issued to be ready at
    /// `ready_at` (or `None` if never issued), given the data is available
    /// at `now`.
    #[must_use]
    pub fn classify(&self, now: Cycle, ready_at: Option<Cycle>) -> PadTiming {
        match ready_at {
            Some(t) if t <= now => PadTiming::Hit,
            Some(t) => PadTiming::Partial { remaining: t - now },
            None => PadTiming::Miss,
        }
    }

    /// Total pads issued so far (statistic).
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_issue_latency() {
        let mut e = AesEngine::new(Duration::cycles(40));
        assert_eq!(e.issue(Cycle::new(100)), Cycle::new(140));
        assert_eq!(e.issued(), 1);
    }

    #[test]
    fn issue_port_serializes_same_cycle_issues() {
        let mut e = AesEngine::new(Duration::cycles(40));
        let t0 = e.issue(Cycle::ZERO);
        let t1 = e.issue(Cycle::ZERO);
        let t2 = e.issue(Cycle::ZERO);
        assert_eq!(t0, Cycle::new(40));
        assert_eq!(t1, Cycle::new(41));
        assert_eq!(t2, Cycle::new(42));
    }

    #[test]
    fn pipeline_is_fully_pipelined_not_blocking() {
        // Issues spaced >= 1 cycle apart never wait.
        let mut e = AesEngine::new(Duration::cycles(40));
        assert_eq!(e.issue(Cycle::new(0)), Cycle::new(40));
        assert_eq!(e.issue(Cycle::new(1)), Cycle::new(41));
        assert_eq!(e.issue(Cycle::new(500)), Cycle::new(540));
    }

    #[test]
    fn issue_many_returns_last_completion() {
        let mut e = AesEngine::new(Duration::cycles(10));
        // 4 issues starting at t=0: ready at 10, 11, 12, 13.
        assert_eq!(e.issue_many(Cycle::ZERO, 4), Cycle::new(13));
        assert_eq!(e.issued(), 4);
        // Zero issues: nothing happens and nothing completes later than
        // `now` — an empty refill is free.
        let before = e.issued();
        assert_eq!(e.issue_many(Cycle::new(100), 0), Cycle::new(100));
        assert_eq!(e.issued(), before);
    }

    #[test]
    fn classification() {
        let e = AesEngine::new(Duration::cycles(40));
        let now = Cycle::new(100);
        assert_eq!(e.classify(now, Some(Cycle::new(90))), PadTiming::Hit);
        assert_eq!(e.classify(now, Some(Cycle::new(100))), PadTiming::Hit);
        assert_eq!(
            e.classify(now, Some(Cycle::new(115))),
            PadTiming::Partial {
                remaining: Duration::cycles(15)
            }
        );
        assert_eq!(e.classify(now, None), PadTiming::Miss);
    }

    #[test]
    fn exposed_latency_ordering() {
        let full = Duration::cycles(40);
        let hit = PadTiming::Hit.exposed_latency(full);
        let partial = PadTiming::Partial {
            remaining: Duration::cycles(10),
        }
        .exposed_latency(full);
        let miss = PadTiming::Miss.exposed_latency(full);
        assert!(hit < partial && partial < miss);
        assert_eq!(hit, Duration::cycles(1));
        assert_eq!(miss, Duration::cycles(41));
        assert!(PadTiming::Hit.latency_hidden());
        assert!(!PadTiming::Miss.latency_hidden());
    }
}
