//! Hardware AES-128 via the `x86_64` AES-NI instructions.
//!
//! This is the [`crate::backend::Backend::HwAesClmul`] implementation of
//! the block cipher: the key schedule runs through `aeskeygenassist` and
//! bulk encryption through an 8-block interleaved `aesenc` pipeline. Both
//! are bit-for-bit equivalent to the portable T-table path in
//! [`crate::aes`] (property-tested in `tests/backend_parity.rs`) — the
//! point is throughput: `aesenc` retires one round per instruction and the
//! 8-way interleave keeps the pipeline full across independent CTR
//! counter blocks, where the software path spends ~40 table lookups per
//! round batch. Unlike the T-tables, AES-NI is also constant-time by
//! construction: no key- or data-dependent memory accesses exist for a
//! co-tenant to probe.
//!
//! # Safety contract
//!
//! Every `unsafe` in this module is one of two shapes, each documented at
//! the use site:
//!
//! 1. **Feature gate** — calling a `#[target_feature(enable = "aes")]`
//!    function. Sound if and only if the CPU supports AES-NI; the public
//!    wrappers assert [`available`] before entering, and the dispatch
//!    layer only selects this module when detection succeeded.
//! 2. **Unaligned SIMD loads/stores** — `_mm_loadu_si128` /
//!    `_mm_storeu_si128` on `[u8; 16]` buffers. Sound because the `u`
//!    variants have no alignment requirement and every pointer derives
//!    from a live reference covering exactly 16 bytes.

use crate::aes::Block;
use core::arch::x86_64::{
    __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_aeskeygenassist_si128, _mm_loadu_si128,
    _mm_setzero_si128, _mm_shuffle_epi32, _mm_slli_si128, _mm_storeu_si128, _mm_xor_si128,
};

/// Number of independent blocks kept in flight by the bulk pipeline.
/// `aesenc` has a multi-cycle latency but single-cycle throughput on every
/// AES-NI core, so 8 interleaved streams cover the dependency chains of
/// all current microarchitectures without spilling registers.
const PIPELINE: usize = 8;

/// Runtime check for this module's instruction set.
#[must_use]
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

/// Expands an AES-128 key into the 11 round keys via `aeskeygenassist`.
///
/// Produces exactly the FIPS-197 §5.2 schedule (the same bytes as the
/// software expansion — pinned by tests), computed the way hardware
/// implementations do: the assist instruction supplies `SubWord(RotWord)`
/// plus the round constant, and the three `slli`/`xor` pairs fold the
/// running word prefix.
///
/// # Panics
///
/// Panics if the CPU does not support AES-NI.
#[must_use]
pub fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    assert!(available(), "AES-NI key expansion without CPU support");
    // SAFETY: feature gate — `available()` verified AES-NI support above.
    unsafe { expand_key_impl(key) }
}

/// One key-schedule round: `prev` is round key `i-1`, `assist` the
/// `aeskeygenassist` output for it (with the matching round constant).
#[target_feature(enable = "aes")]
fn expand_round(prev: __m128i, assist: __m128i) -> __m128i {
    // Broadcast the high word of the assist result (SubWord(RotWord(w3))
    // ^ rcon) to all four lanes, then xor in the prefix sums of the
    // previous round key's words.
    let t = _mm_shuffle_epi32::<0b1111_1111>(assist);
    let mut k = prev;
    k = _mm_xor_si128(k, _mm_slli_si128::<4>(k));
    k = _mm_xor_si128(k, _mm_slli_si128::<4>(k));
    k = _mm_xor_si128(k, _mm_slli_si128::<4>(k));
    _mm_xor_si128(k, t)
}

#[target_feature(enable = "aes")]
fn expand_key_impl(key: &[u8; 16]) -> [[u8; 16]; 11] {
    // SAFETY: unaligned load — `key` is a live 16-byte reference.
    let k0 = unsafe { _mm_loadu_si128(key.as_ptr().cast::<__m128i>()) };
    let mut rk = [k0; 11];
    // `aeskeygenassist` takes the round constant as an immediate, so the
    // ten rounds are spelled out rather than looped.
    rk[1] = expand_round(rk[0], _mm_aeskeygenassist_si128::<0x01>(rk[0]));
    rk[2] = expand_round(rk[1], _mm_aeskeygenassist_si128::<0x02>(rk[1]));
    rk[3] = expand_round(rk[2], _mm_aeskeygenassist_si128::<0x04>(rk[2]));
    rk[4] = expand_round(rk[3], _mm_aeskeygenassist_si128::<0x08>(rk[3]));
    rk[5] = expand_round(rk[4], _mm_aeskeygenassist_si128::<0x10>(rk[4]));
    rk[6] = expand_round(rk[5], _mm_aeskeygenassist_si128::<0x20>(rk[5]));
    rk[7] = expand_round(rk[6], _mm_aeskeygenassist_si128::<0x40>(rk[6]));
    rk[8] = expand_round(rk[7], _mm_aeskeygenassist_si128::<0x80>(rk[7]));
    rk[9] = expand_round(rk[8], _mm_aeskeygenassist_si128::<0x1b>(rk[8]));
    rk[10] = expand_round(rk[9], _mm_aeskeygenassist_si128::<0x36>(rk[9]));
    let mut out = [[0u8; 16]; 11];
    for (bytes, reg) in out.iter_mut().zip(rk) {
        // SAFETY: unaligned store — `bytes` is a live 16-byte buffer.
        unsafe { _mm_storeu_si128(bytes.as_mut_ptr().cast::<__m128i>(), reg) };
    }
    out
}

/// Encrypts one block with an expanded schedule.
///
/// # Panics
///
/// Panics if the CPU does not support AES-NI.
#[must_use]
pub fn encrypt_block(round_keys: &[[u8; 16]; 11], block: Block) -> Block {
    assert!(available(), "AES-NI encryption without CPU support");
    // SAFETY: feature gate — `available()` verified AES-NI support above.
    unsafe { encrypt_block_impl(round_keys, block) }
}

/// Encrypts every block in `blocks` in place, 8 blocks interleaved.
///
/// This is the bulk entry point behind CTR keystream and OTP pad refill:
/// the blocks are independent counter values, so the pipeline runs at
/// `aesenc` throughput instead of its latency.
///
/// # Panics
///
/// Panics if the CPU does not support AES-NI.
pub fn encrypt_blocks(round_keys: &[[u8; 16]; 11], blocks: &mut [Block]) {
    assert!(available(), "AES-NI encryption without CPU support");
    // SAFETY: feature gate — `available()` verified AES-NI support above.
    unsafe { encrypt_blocks_impl(round_keys, blocks) }
}

#[target_feature(enable = "aes")]
fn load_schedule(round_keys: &[[u8; 16]; 11]) -> [__m128i; 11] {
    let mut keys = [_mm_setzero_si128(); 11];
    for (reg, bytes) in keys.iter_mut().zip(round_keys) {
        // SAFETY: unaligned load — each round key is a live 16-byte array.
        *reg = unsafe { _mm_loadu_si128(bytes.as_ptr().cast::<__m128i>()) };
    }
    keys
}

#[target_feature(enable = "aes")]
fn encrypt_block_impl(round_keys: &[[u8; 16]; 11], block: Block) -> Block {
    let keys = load_schedule(round_keys);
    // SAFETY: unaligned load — `block` is a live 16-byte array.
    let mut s = unsafe { _mm_loadu_si128(block.as_ptr().cast::<__m128i>()) };
    s = _mm_xor_si128(s, keys[0]);
    for key in &keys[1..10] {
        s = _mm_aesenc_si128(s, *key);
    }
    s = _mm_aesenclast_si128(s, keys[10]);
    let mut out = [0u8; 16];
    // SAFETY: unaligned store — `out` is a live 16-byte buffer.
    unsafe { _mm_storeu_si128(out.as_mut_ptr().cast::<__m128i>(), s) };
    out
}

#[target_feature(enable = "aes")]
fn encrypt_blocks_impl(round_keys: &[[u8; 16]; 11], blocks: &mut [Block]) {
    let keys = load_schedule(round_keys);
    let mut chunks = blocks.chunks_exact_mut(PIPELINE);
    for chunk in &mut chunks {
        let mut s = [keys[0]; PIPELINE];
        for (reg, block) in s.iter_mut().zip(chunk.iter()) {
            // SAFETY: unaligned load — each chunk element is a live
            // 16-byte array.
            let loaded = unsafe { _mm_loadu_si128(block.as_ptr().cast::<__m128i>()) };
            *reg = _mm_xor_si128(loaded, keys[0]);
        }
        // Interleaved rounds: all 8 streams advance one round before any
        // stream advances two, so consecutive `aesenc` on one stream are
        // 8 instructions apart — beyond the instruction's latency.
        for key in &keys[1..10] {
            for reg in &mut s {
                *reg = _mm_aesenc_si128(*reg, *key);
            }
        }
        for (reg, block) in s.iter_mut().zip(chunk.iter_mut()) {
            *reg = _mm_aesenclast_si128(*reg, keys[10]);
            // SAFETY: unaligned store — each chunk element is a live
            // 16-byte buffer.
            unsafe { _mm_storeu_si128(block.as_mut_ptr().cast::<__m128i>(), *reg) };
        }
    }
    for block in chunks.into_remainder() {
        // SAFETY: unaligned load — `block` is a live 16-byte array.
        let mut s = unsafe { _mm_loadu_si128(block.as_ptr().cast::<__m128i>()) };
        s = _mm_xor_si128(s, keys[0]);
        for key in &keys[1..10] {
            s = _mm_aesenc_si128(s, *key);
        }
        s = _mm_aesenclast_si128(s, keys[10]);
        // SAFETY: unaligned store — `block` is a live 16-byte buffer.
        unsafe { _mm_storeu_si128(block.as_mut_ptr().cast::<__m128i>(), s) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b_vector() {
        if !available() {
            return;
        }
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let rk = expand_key(&key);
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(encrypt_block(&rk, pt), expected);
        // Last round key of this schedule, FIPS-197 Appendix A.1.
        assert_eq!(
            rk[10],
            [
                0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
                0x0c, 0xa6
            ]
        );
    }

    #[test]
    fn bulk_matches_single_across_remainders() {
        if !available() {
            return;
        }
        let rk = expand_key(&[0x42; 16]);
        // Lengths straddling the 8-block pipeline: empty, sub-pipeline,
        // exact multiples, and pipeline + remainder.
        for len in [0usize, 1, 7, 8, 9, 16, 23] {
            let mut blocks: Vec<Block> = (0..len).map(|i| [i as u8; 16]).collect();
            let expected: Vec<Block> = blocks.iter().map(|&b| encrypt_block(&rk, b)).collect();
            encrypt_blocks(&rk, &mut blocks);
            assert_eq!(blocks, expected, "len={len}");
        }
    }
}
