//! Runtime crypto-backend selection: hardware AES-NI/PCLMULQDQ vs the
//! portable software implementations.
//!
//! Every functional primitive in this crate — AES-128 block encryption
//! ([`crate::aes`]), CTR keystream / OTP pad generation ([`crate::ctr`]),
//! GHASH ([`crate::ghash`]) and the AES-GCM composition ([`crate::gcm`]) —
//! dispatches through a [`Backend`] chosen here. The two backends are
//! bit-for-bit equivalent (property-tested against each other and against
//! the NIST vectors), so the choice only changes throughput:
//!
//! * [`Backend::Soft`] — the original T-table AES and Shoup-table GHASH.
//!   Portable, allocation-free, and retained as the correctness oracle for
//!   the hardware path.
//! * [`Backend::HwAesClmul`] — `x86_64` AES-NI (8-block interleaved
//!   pipeline, [`crate::aesni`]) and PCLMULQDQ GHASH (4-block aggregated
//!   reduction, [`crate::clmul`]). Constant-time by construction, unlike
//!   the cache-timing-leaky T-tables.
//!
//! # Selection
//!
//! The process-wide default is resolved once, on first use:
//!
//! 1. `MGPU_CRYPTO_BACKEND=soft` forces the software backend (CI uses this
//!    to A/B the two paths on one host). `auto` — or the variable unset —
//!    picks hardware when the CPU supports it. Anything else warns once to
//!    stderr and falls back to `auto`, matching the `MGPU_SHARDS`
//!    convention.
//! 2. On `x86_64`, hardware is used when the CPU advertises `aes`,
//!    `pclmulqdq` and `ssse3` (the byte-shuffle the GHASH path needs). On
//!    every other architecture the software backend is the only option.
//!
//! Crypto objects snapshot the default at construction
//! ([`crate::Aes128::new`], [`crate::ghash::GhashKey::new`], …), so a
//! long-lived key keeps its backend even if the default is later changed
//! with [`set_default_backend`] (a test/bench hook; production code never
//! calls it).

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Which implementation family executes the functional crypto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable software: T-table AES-128 + Shoup 8-bit-table GHASH.
    Soft,
    /// Hardware `x86_64`: AES-NI block pipeline + PCLMULQDQ GHASH.
    HwAesClmul,
}

impl Backend {
    /// Stable lowercase name, as recorded in `BENCH_repro.json`
    /// (`crypto_backend` field) and printed by benches.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Backend::Soft => "soft",
            Backend::HwAesClmul => "aesni_clmul",
        }
    }

    /// Whether this backend can run on the current CPU. [`Backend::Soft`]
    /// is always available; [`Backend::HwAesClmul`] requires runtime
    /// detection of the AES-NI and carry-less-multiply features.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            Backend::Soft => true,
            Backend::HwAesClmul => hw_available(),
        }
    }
}

impl core::fmt::Display for Backend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runtime check for the full hardware-backend feature set.
#[must_use]
fn hw_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("aes")
            && std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("ssse3")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The CPU features relevant to crypto dispatch that the host actually
/// advertises, in a stable order (recorded as `cpu_features` in
/// `BENCH_repro.json`). Empty on non-`x86_64` targets.
#[must_use]
pub fn cpu_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = Vec::new();
        macro_rules! probe {
            ($($name:tt),*) => {
                $(if std::arch::is_x86_feature_detected!($name) {
                    feats.push($name);
                })*
            };
        }
        probe!(
            "aes",
            "pclmulqdq",
            "ssse3",
            "sse4.1",
            "avx2",
            "vaes",
            "vpclmulqdq",
            "avx512f"
        );
        feats
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

/// Unresolved / resolved states of the process-wide default backend.
const UNRESOLVED: u8 = 0;
const SOFT: u8 = 1;
const HW: u8 = 2;

static DEFAULT: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Parses `MGPU_CRYPTO_BACKEND`, warning once for unusable values.
///
/// Returns `Some(Backend::Soft)` for `soft`, `None` (= auto-detect) for
/// `auto`, unset, or anything unrecognized.
fn env_override() -> Option<Backend> {
    static WARNED: AtomicBool = AtomicBool::new(false);
    let raw = std::env::var("MGPU_CRYPTO_BACKEND").ok()?;
    match raw.trim() {
        "soft" => Some(Backend::Soft),
        "auto" | "" => None,
        other => {
            if !WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: ignoring MGPU_CRYPTO_BACKEND={other:?}: \
                     expected \"auto\" or \"soft\""
                );
            }
            None
        }
    }
}

/// Resolves the startup default: the env override if forced to soft,
/// otherwise hardware when available.
fn resolve() -> Backend {
    match env_override() {
        Some(b) => b,
        None if hw_available() => Backend::HwAesClmul,
        None => Backend::Soft,
    }
}

/// The process-wide default backend, resolved once on first use from
/// `MGPU_CRYPTO_BACKEND` and CPU-feature detection.
#[must_use]
pub fn default_backend() -> Backend {
    match DEFAULT.load(Ordering::Acquire) {
        SOFT => Backend::Soft,
        HW => Backend::HwAesClmul,
        _ => {
            // Racing first uses both compute the same value, so a plain
            // store is fine; the explicit-set path below also wins cleanly.
            let resolved = resolve();
            let tag = match resolved {
                Backend::Soft => SOFT,
                Backend::HwAesClmul => HW,
            };
            DEFAULT.store(tag, Ordering::Release);
            resolved
        }
    }
}

/// Overrides the process-wide default backend.
///
/// This exists for tests and benches that A/B the two implementations in
/// one process (e.g. the golden-matrix soft/auto parity assert); normal
/// code relies on [`default_backend`]'s one-time resolution. Because the
/// two backends produce bit-identical output, flipping the default
/// mid-process never changes results — only which instructions compute
/// them. Objects constructed before the call keep their snapshot.
///
/// # Panics
///
/// Panics if `backend` is not available on this CPU.
pub fn set_default_backend(backend: Backend) {
    assert!(
        backend.is_available(),
        "backend {} is not available on this host",
        backend.name()
    );
    let tag = match backend {
        Backend::Soft => SOFT,
        Backend::HwAesClmul => HW,
    };
    DEFAULT.store(tag, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_is_always_available() {
        assert!(Backend::Soft.is_available());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Backend::Soft.name(), "soft");
        assert_eq!(Backend::HwAesClmul.name(), "aesni_clmul");
        assert_eq!(Backend::Soft.to_string(), "soft");
    }

    #[test]
    fn default_is_available_and_sticky() {
        let first = default_backend();
        assert!(first.is_available());
        assert_eq!(default_backend(), first);
    }

    #[test]
    fn hw_availability_implies_feature_list() {
        if Backend::HwAesClmul.is_available() {
            let feats = cpu_features();
            assert!(feats.contains(&"aes"));
            assert!(feats.contains(&"pclmulqdq"));
            assert!(feats.contains(&"ssse3"));
        }
    }

    #[test]
    #[cfg(not(target_arch = "x86_64"))]
    fn non_x86_has_no_hw_backend() {
        assert!(!Backend::HwAesClmul.is_available());
        assert!(cpu_features().is_empty());
    }
}
