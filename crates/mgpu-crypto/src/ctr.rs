//! Counter-mode keystream generation — the "one-time pad" of the paper.
//!
//! Counter-mode protection (paper §II-C, Fig. 4) derives a keystream block
//! from a seed that combines the message counter (`MsgCTR`), the sender ID
//! and the receiver ID. XORing that keystream with the plaintext performs
//! encryption; XORing again decrypts. Because the keystream depends only on
//! the seed — never on the data — it can be generated *before* the data
//! arrives, which is exactly the pre-generation opportunity the OTP buffer
//! schemes exploit.

use crate::aes::{Aes128, Block, BLOCK_SIZE};
use crate::backend::Backend;
use crate::pad::PadSeed;

/// Counter-mode keystream generator bound to one AES key.
///
/// # Examples
///
/// ```
/// use mgpu_crypto::ctr::CtrKeystream;
/// use mgpu_crypto::pad::PadSeed;
///
/// let ks = CtrKeystream::new(&[9u8; 16]);
/// let seed = PadSeed::new(1, 2, 42);
/// let pad = ks.pad_64(seed);
///
/// let plaintext = [0xABu8; 64];
/// let mut ct = plaintext;
/// CtrKeystream::xor_in_place(&mut ct, &pad);
/// assert_ne!(ct, plaintext);
/// CtrKeystream::xor_in_place(&mut ct, &pad);
/// assert_eq!(ct, plaintext);
/// ```
#[derive(Debug, Clone)]
pub struct CtrKeystream {
    aes: Aes128,
}

impl CtrKeystream {
    /// Creates a generator for the given session key, using the
    /// process-default backend ([`crate::backend::default_backend`]).
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        CtrKeystream {
            aes: Aes128::new(key),
        }
    }

    /// Creates a generator on an explicitly chosen backend. Keystream
    /// output is bit-identical across backends.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is not available on this CPU.
    #[must_use]
    pub fn with_backend(key: &[u8; 16], backend: Backend) -> Self {
        CtrKeystream {
            aes: Aes128::with_backend(key, backend),
        }
    }

    /// The implementation family this generator dispatches to.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.aes.backend()
    }

    /// Generates one 16-byte keystream block for `seed` at block offset
    /// `block_idx` within the message.
    #[must_use]
    pub fn block(&self, seed: PadSeed, block_idx: u32) -> Block {
        self.aes.encrypt_block(seed.to_counter_block(block_idx))
    }

    /// Fills `out` with consecutive keystream blocks for `seed`, starting
    /// at block offset `start_idx`.
    ///
    /// This is the bulk refill path: the counter blocks are laid out first
    /// and encrypted in one [`Aes128::encrypt_blocks`] call, so pad
    /// generation amortizes per-call overhead across the whole window.
    ///
    /// # Panics
    ///
    /// Panics if the blocks would overflow the 32-bit per-message block
    /// index space.
    pub fn keystream_blocks(&self, seed: PadSeed, start_idx: u32, out: &mut [Block]) {
        assert!(
            (out.len() as u64) <= u64::from(u32::MAX - start_idx) + 1,
            "keystream window overflows the 32-bit block index"
        );
        for (i, block) in out.iter_mut().enumerate() {
            *block = seed.to_counter_block(start_idx + i as u32);
        }
        self.aes.encrypt_blocks(out);
    }

    /// Generates the 64-byte encryption pad for one cacheline, as used by
    /// the paper's OTP buffer entries ("encryption pad (512 bits)").
    #[must_use]
    pub fn pad_64(&self, seed: PadSeed) -> [u8; 64] {
        let mut blocks = [[0u8; BLOCK_SIZE]; 4];
        self.keystream_blocks(seed, 0, &mut blocks);
        let mut pad = [0u8; 64];
        for (chunk, block) in pad.chunks_exact_mut(BLOCK_SIZE).zip(blocks.iter()) {
            chunk.copy_from_slice(block);
        }
        pad
    }

    /// Generates an arbitrary-length keystream for `seed`.
    #[must_use]
    pub fn keystream(&self, seed: PadSeed, len: usize) -> Vec<u8> {
        let mut blocks = vec![[0u8; BLOCK_SIZE]; len.div_ceil(BLOCK_SIZE)];
        self.keystream_blocks(seed, 0, &mut blocks);
        let mut out: Vec<u8> = blocks.into_iter().flatten().collect();
        out.truncate(len);
        out
    }

    /// XORs `pad` into `data` — the 1-cycle encryption/decryption step of
    /// Fig. 6 once the pad is pre-generated.
    ///
    /// # Panics
    ///
    /// Panics if `pad` is shorter than `data`.
    pub fn xor_in_place(data: &mut [u8], pad: &[u8]) {
        assert!(pad.len() >= data.len(), "pad shorter than data");
        for (d, p) in data.iter_mut().zip(pad.iter()) {
            *d ^= p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks() -> CtrKeystream {
        CtrKeystream::new(&[0x11; 16])
    }

    #[test]
    fn pad_is_deterministic_in_seed() {
        let seed = PadSeed::new(1, 2, 100);
        assert_eq!(ks().pad_64(seed), ks().pad_64(seed));
    }

    #[test]
    fn pad_differs_across_counters() {
        let a = ks().pad_64(PadSeed::new(1, 2, 100));
        let b = ks().pad_64(PadSeed::new(1, 2, 101));
        assert_ne!(a, b);
    }

    #[test]
    fn pad_differs_across_direction() {
        // Sender/receiver IDs are part of the seed, so GPU1->GPU2 and
        // GPU2->GPU1 never share pads even at equal counters.
        let a = ks().pad_64(PadSeed::new(1, 2, 5));
        let b = ks().pad_64(PadSeed::new(2, 1, 5));
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_prefix_property() {
        let seed = PadSeed::new(3, 0, 7);
        let long = ks().keystream(seed, 100);
        let short = ks().keystream(seed, 10);
        assert_eq!(&long[..10], &short[..]);
        assert_eq!(long.len(), 100);
    }

    #[test]
    fn keystream_matches_pad64() {
        let seed = PadSeed::new(3, 0, 7);
        assert_eq!(ks().keystream(seed, 64), ks().pad_64(seed).to_vec());
    }

    #[test]
    fn keystream_blocks_matches_per_block_calls() {
        let seed = PadSeed::new(3, 1, 9);
        let mut bulk = [[0u8; BLOCK_SIZE]; 7];
        ks().keystream_blocks(seed, 5, &mut bulk);
        for (i, block) in bulk.iter().enumerate() {
            assert_eq!(*block, ks().block(seed, 5 + i as u32));
        }
    }

    #[test]
    #[should_panic(expected = "32-bit block index")]
    fn keystream_blocks_rejects_index_overflow() {
        let mut blocks = [[0u8; BLOCK_SIZE]; 2];
        ks().keystream_blocks(PadSeed::new(0, 0, 0), u32::MAX, &mut blocks);
    }

    #[test]
    fn xor_roundtrip() {
        let seed = PadSeed::new(1, 4, 9);
        let pad = ks().pad_64(seed);
        let original = *b"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";
        let mut data = original;
        CtrKeystream::xor_in_place(&mut data, &pad);
        assert_ne!(data, original);
        CtrKeystream::xor_in_place(&mut data, &pad);
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "pad shorter")]
    fn short_pad_panics() {
        let mut data = [0u8; 8];
        CtrKeystream::xor_in_place(&mut data, &[0u8; 4]);
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn distinct_seeds_distinct_pads(
                s1 in any::<u16>(), r1 in any::<u16>(), c1 in any::<u64>(),
                s2 in any::<u16>(), r2 in any::<u16>(), c2 in any::<u64>()) {
                prop_assume!((s1, r1, c1) != (s2, r2, c2));
                let ks = CtrKeystream::new(&[7; 16]);
                prop_assert_ne!(
                    ks.pad_64(PadSeed::new(s1, r1, c1)),
                    ks.pad_64(PadSeed::new(s2, r2, c2))
                );
            }

            #[test]
            fn xor_is_involutive(data in proptest::collection::vec(any::<u8>(), 0..64),
                                 ctr in any::<u64>()) {
                let ks = CtrKeystream::new(&[7; 16]);
                let pad = ks.pad_64(PadSeed::new(0, 1, ctr));
                let mut copy = data.clone();
                CtrKeystream::xor_in_place(&mut copy, &pad);
                CtrKeystream::xor_in_place(&mut copy, &pad);
                prop_assert_eq!(copy, data);
            }
        }
    }
}
