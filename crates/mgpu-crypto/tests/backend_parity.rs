//! Cross-backend bit-equality: the hardware AES-NI/PCLMULQDQ paths must
//! produce exactly the bytes of the portable software implementations, for
//! every primitive and at every size class the protocol uses.
//!
//! On hosts without the hardware features the hw side of each comparison
//! is skipped (the software path is then the only implementation and is
//! covered by the unit tests and NIST vectors in-crate).

use mgpu_crypto::aes::Aes128;
use mgpu_crypto::backend::Backend;
use mgpu_crypto::ctr::CtrKeystream;
use mgpu_crypto::gcm::AesGcm;
use mgpu_crypto::ghash::{Gf128, Ghash, GhashKey};
use mgpu_crypto::pad::PadSeed;
use proptest::prelude::*;

fn hw() -> Option<Backend> {
    Backend::HwAesClmul
        .is_available()
        .then_some(Backend::HwAesClmul)
}

/// Every backend available on this host — always includes soft.
fn all_backends() -> Vec<Backend> {
    let mut v = vec![Backend::Soft];
    v.extend(hw());
    v
}

fn hex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

#[test]
fn bulk_ctr_keystream_matches_at_every_length() {
    // Every window length 0..=64 blocks: the hw path crosses its 8-block
    // pipeline boundary eight times and ends at every remainder size.
    let Some(hw) = hw() else { return };
    let soft = CtrKeystream::with_backend(&[0x5Au8; 16], Backend::Soft);
    let fast = CtrKeystream::with_backend(&[0x5Au8; 16], hw);
    let seed = PadSeed::new(3, 7, 1234);
    for nblocks in 0..=64usize {
        let mut a = vec![[0u8; 16]; nblocks];
        let mut b = vec![[0u8; 16]; nblocks];
        soft.keystream_blocks(seed, 5, &mut a);
        fast.keystream_blocks(seed, 5, &mut b);
        assert_eq!(a, b, "keystream diverges at {nblocks} blocks");
    }
}

#[test]
fn nist_gcm_vectors_pass_on_every_backend() {
    // NIST GCM spec test cases 1–4, run against each available backend.
    struct Case {
        key: &'static str,
        nonce: &'static str,
        aad: &'static str,
        pt: &'static str,
        ct: &'static str,
        tag: &'static str,
    }
    let cases = [
        Case {
            key: "00000000000000000000000000000000",
            nonce: "000000000000000000000000",
            aad: "",
            pt: "",
            ct: "",
            tag: "58e2fccefa7e3061367f1d57a4e7455a",
        },
        Case {
            key: "00000000000000000000000000000000",
            nonce: "000000000000000000000000",
            aad: "",
            pt: "00000000000000000000000000000000",
            ct: "0388dace60b6a392f328c2b971b2fe78",
            tag: "ab6e47d42cec13bdf53a67b21257bddf",
        },
        Case {
            key: "feffe9928665731c6d6a8f9467308308",
            nonce: "cafebabefacedbaddecaf888",
            aad: "",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                  1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
            tag: "4d5c2af327cd64a62cf35abd2ba6fab4",
        },
        Case {
            key: "feffe9928665731c6d6a8f9467308308",
            nonce: "cafebabefacedbaddecaf888",
            aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
            tag: "5bc94fbc3221a5db94fae95ae7121a47",
        },
    ];
    for backend in all_backends() {
        for (i, case) in cases.iter().enumerate() {
            let key: [u8; 16] = hex(case.key).try_into().unwrap();
            let nonce: [u8; 12] = hex(case.nonce).try_into().unwrap();
            let aad = hex(case.aad);
            let pt = hex(case.pt.replace(char::is_whitespace, "").as_str());
            let gcm = AesGcm::with_backend(&key, backend);
            let (ct, tag) = gcm.seal_detached(&nonce, &aad, &pt);
            assert_eq!(
                ct,
                hex(case.ct.replace(char::is_whitespace, "").as_str()),
                "case {i} ciphertext on {backend}"
            );
            assert_eq!(tag.to_vec(), hex(case.tag), "case {i} tag on {backend}");
            assert_eq!(
                gcm.open_detached(&nonce, &aad, &ct, &tag).unwrap(),
                pt,
                "case {i} open on {backend}"
            );
        }
    }
}

proptest! {
    #[test]
    fn single_block_encrypt_matches(key in proptest::array::uniform16(any::<u8>()),
                                    pt in proptest::array::uniform16(any::<u8>())) {
        let Some(hw) = hw() else { return Ok(()) };
        let soft = Aes128::with_backend(&key, Backend::Soft);
        let fast = Aes128::with_backend(&key, hw);
        prop_assert_eq!(soft.encrypt_block(pt), fast.encrypt_block(pt));
    }

    #[test]
    fn bulk_encrypt_matches(key in proptest::array::uniform16(any::<u8>()),
                            blocks in proptest::collection::vec(
                                proptest::array::uniform16(any::<u8>()), 0..48)) {
        let Some(hw) = hw() else { return Ok(()) };
        let soft = Aes128::with_backend(&key, Backend::Soft);
        let fast = Aes128::with_backend(&key, hw);
        let mut a = blocks.clone();
        let mut b = blocks;
        soft.encrypt_blocks(&mut a);
        fast.encrypt_blocks(&mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ghash_matches(h in proptest::array::uniform16(any::<u8>()),
                     data in proptest::collection::vec(any::<u8>(), 0..256),
                     split in 0usize..256) {
        let Some(hw) = hw() else { return Ok(()) };
        // Split the update to exercise the partial-block buffer on both
        // sides, not just the aligned bulk path.
        let split = split.min(data.len());
        let run = |backend: Backend| {
            let mut g = Ghash::with_key(GhashKey::with_backend(h, backend));
            g.update(&data[..split]);
            g.update(&data[split..]);
            g.finalize(0, data.len() as u64)
        };
        prop_assert_eq!(run(Backend::Soft), run(hw));
    }

    #[test]
    fn ghash_key_mul_matches(h in proptest::array::uniform16(any::<u8>()),
                             x in proptest::array::uniform16(any::<u8>())) {
        let Some(hw) = hw() else { return Ok(()) };
        let soft = GhashKey::with_backend(h, Backend::Soft);
        let fast = GhashKey::with_backend(h, hw);
        let x = Gf128::from_bytes(x);
        prop_assert_eq!(soft.mul(x), fast.mul(x));
    }

    #[test]
    fn gcm_seal_open_matches(key in proptest::array::uniform16(any::<u8>()),
                             nonce in proptest::array::uniform12(any::<u8>()),
                             aad in proptest::collection::vec(any::<u8>(), 0..64),
                             pt in proptest::collection::vec(any::<u8>(), 0..256)) {
        let Some(hw) = hw() else { return Ok(()) };
        let soft = AesGcm::with_backend(&key, Backend::Soft);
        let fast = AesGcm::with_backend(&key, hw);
        let sealed_soft = soft.seal(&nonce, &aad, &pt);
        let sealed_fast = fast.seal(&nonce, &aad, &pt);
        prop_assert_eq!(&sealed_soft, &sealed_fast);
        // Cross-open: each backend verifies and decrypts the other's seal.
        prop_assert_eq!(soft.open(&nonce, &aad, &sealed_fast).unwrap(), pt.clone());
        prop_assert_eq!(fast.open(&nonce, &aad, &sealed_soft).unwrap(), pt);
    }
}
