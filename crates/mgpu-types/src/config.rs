//! System and security configuration (paper Table III).

use crate::error::ConfigError;
use crate::units::Duration;
use core::fmt;

/// Which OTP buffer management scheme a node runs.
///
/// `Private`, `Shared` and `Cached` are the prior CPU-oriented schemes of
/// Rogers et al. (PACT'06) revisited by the paper; `Dynamic` is the paper's
/// proposed EWMA-driven allocator. Metadata batching is orthogonal and
/// configured by [`BatchingConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OtpSchemeKind {
    /// No encryption at all: the unsecure baseline every figure normalizes to.
    Unsecure,
    /// Separate send/receive pad table entries per source–destination pair.
    Private,
    /// A single shared send counter per node; receivers can only pre-generate
    /// pads for back-to-back messages from the same sender.
    Shared,
    /// An LRU cache of pad-table entries; hits behave like `Private`,
    /// misses fall back to `Shared` semantics.
    Cached,
    /// The paper's dynamic allocator: the pad pool is re-partitioned across
    /// directions and peers every interval using EWMA-weighted traffic.
    Dynamic,
}

impl OtpSchemeKind {
    /// All secure schemes (everything except [`OtpSchemeKind::Unsecure`]).
    pub const SECURE: [OtpSchemeKind; 4] = [
        OtpSchemeKind::Private,
        OtpSchemeKind::Shared,
        OtpSchemeKind::Cached,
        OtpSchemeKind::Dynamic,
    ];
}

impl fmt::Display for OtpSchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OtpSchemeKind::Unsecure => "unsecure",
            OtpSchemeKind::Private => "private",
            OtpSchemeKind::Shared => "shared",
            OtpSchemeKind::Cached => "cached",
            OtpSchemeKind::Dynamic => "dynamic",
        };
        f.write_str(s)
    }
}

/// Shape of the GPU-to-GPU interconnect fabric.
///
/// The paper evaluates a fully-connected 4-GPU system (one direct link per
/// ordered pair). Real NVLink fabrics are rings and switch hierarchies
/// where traffic from different pairs shares physical hops — which is
/// where per-hop metadata amplification makes the paper's Dynamic and
/// Batching schemes matter more. The CPU keeps a direct PCIe link to
/// every GPU in all variants; only GPU–GPU routing changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// One direct NVLink-class link per ordered GPU pair (paper Fig. 2).
    #[default]
    FullyConnected,
    /// GPUs form a ring; GPU–GPU traffic is forwarded around the shorter
    /// arc (ties go the ascending-index way) through intermediate GPUs.
    Ring,
    /// GPUs attach in groups of `radix` to leaf switches; multiple leaves
    /// hang off one root switch. GPU–GPU traffic crosses its leaf (and
    /// the root when the destination sits under another leaf).
    Switch {
        /// GPU ports per leaf switch (≥ 2).
        radix: u16,
    },
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::FullyConnected => f.write_str("fully-connected"),
            TopologyKind::Ring => f.write_str("ring"),
            TopologyKind::Switch { radix } => write!(f, "switch-r{radix}"),
        }
    }
}

impl TopologyKind {
    /// Validates the topology for a system with `gpu_count` GPUs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the shape cannot host the GPUs: a ring
    /// needs at least 3 GPUs to differ from direct links, and a switch
    /// radix below 2 cannot aggregate anything.
    pub fn validate(&self, gpu_count: u16) -> Result<(), ConfigError> {
        match self {
            TopologyKind::FullyConnected => Ok(()),
            TopologyKind::Ring => {
                if gpu_count < 3 {
                    return Err(ConfigError::new(format!(
                        "a ring needs at least 3 GPUs, got {gpu_count}"
                    )));
                }
                Ok(())
            }
            TopologyKind::Switch { radix } => {
                if *radix < 2 {
                    return Err(ConfigError::new(format!(
                        "switch radix must be >= 2, got {radix}"
                    )));
                }
                Ok(())
            }
        }
    }
}

/// How a contended flow-control point orders waiting work when capacity
/// frees.
///
/// Applies wherever the engine parks work behind a credit gate (the NIC
/// replay-table gate today; any future finite-credit port). Port servers
/// themselves serve admissions in booking order — arbitration chooses
/// which *parked* item is admitted when a credit returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ArbitrationKind {
    /// Fair rotation: the longest-waiting item goes first (FIFO unpark).
    /// The default, reproducing the pre-flow-substrate service order
    /// bit for bit.
    #[default]
    RoundRobin,
    /// Strict priority: the parked item with the lowest priority key
    /// (oldest request index) goes first, even if it parked later.
    FixedPriority,
}

impl fmt::Display for ArbitrationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbitrationKind::RoundRobin => f.write_str("round-robin"),
            ArbitrationKind::FixedPriority => f.write_str("fixed-priority"),
        }
    }
}

/// Credit-based flow control of the timed-server substrate.
///
/// Every fabric port and control link is a timed server with per-virtual-
/// channel credits. `None` credits model an unbounded downstream buffer:
/// a server then never rejects, which reproduces the pre-substrate
/// booking behaviour exactly (the validated default). Finite data-VC
/// credits bound the blocks simultaneously in service at any egress port;
/// an over-credit request is rejected with an explicit retry cycle and
/// the engine re-presents it then. Finite ctrl-VC credits instead shift
/// the sender (control messages are small and ordered, so the server
/// models the wait in-line rather than bouncing the caller).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FlowControlConfig {
    /// How credit gates order parked work when capacity frees.
    pub arbitration: ArbitrationKind,
    /// Data-VC credits per egress port (`None` = unbounded, the default).
    pub data_vc_credits: Option<u32>,
    /// Ctrl-VC credits per control link (`None` = unbounded, the default).
    pub ctrl_vc_credits: Option<u32>,
}

impl FlowControlConfig {
    /// Validates the credit limits: a configured limit must be ≥ 1 (zero
    /// credits would deadlock the channel — use `None` for unbounded).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the zero-credit channel.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.data_vc_credits == Some(0) {
            return Err(ConfigError::new(
                "data_vc_credits of 0 would deadlock the data VC; use None for unbounded",
            ));
        }
        if self.ctrl_vc_credits == Some(0) {
            return Err(ConfigError::new(
                "ctrl_vc_credits of 0 would deadlock the ctrl VC; use None for unbounded",
            ));
        }
        Ok(())
    }
}

/// Parameters of the paper's `Dynamic` OTP allocator (§IV-B, Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// EWMA forgetting rate for the send/receive direction split (paper α).
    pub alpha: f64,
    /// EWMA forgetting rate for the per-destination split (paper β).
    pub beta: f64,
    /// Monitoring / re-allocation interval in cycles (paper T).
    pub interval: Duration,
    /// When `true`, the allocator repartitions on *arrival-rate shifts*
    /// instead of at every fixed `interval` boundary: traffic is counted in
    /// `check_interval`-wide windows and a repartition fires only when the
    /// window's event count moves by more than `shift_threshold` (relative)
    /// against the rate recorded at the last repartition. Off by default —
    /// the paper's fixed-interval policy.
    pub load_triggered: bool,
    /// Load-monitoring window width for `load_triggered` mode. Smaller
    /// windows react to bursts faster (the point of the policy) at the cost
    /// of noisier rate estimates.
    pub check_interval: Duration,
    /// Relative per-window event-count shift (`|now - then| / max(then, 1)`)
    /// that triggers a repartition in `load_triggered` mode.
    pub shift_threshold: f64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        // Paper Table III: α = 0.9, β = 0.5, T = 1000. Load-triggered
        // repartitioning is an extension and defaults off.
        DynamicConfig {
            alpha: 0.9,
            beta: 0.5,
            interval: Duration::cycles(1000),
            load_triggered: false,
            check_interval: Duration::cycles(250),
            shift_threshold: 0.5,
        }
    }
}

impl DynamicConfig {
    /// Validates that the EWMA rates lie in `(0, 1]` and the intervals are
    /// non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(ConfigError::new(format!(
                "alpha must be in (0, 1], got {}",
                self.alpha
            )));
        }
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            return Err(ConfigError::new(format!(
                "beta must be in (0, 1], got {}",
                self.beta
            )));
        }
        if self.interval == Duration::ZERO {
            return Err(ConfigError::new("interval must be non-zero"));
        }
        if self.load_triggered {
            if self.check_interval == Duration::ZERO {
                return Err(ConfigError::new(
                    "check_interval must be non-zero when load_triggered",
                ));
            }
            if !(self.shift_threshold > 0.0 && self.shift_threshold.is_finite()) {
                return Err(ConfigError::new(format!(
                    "shift_threshold must be a positive finite ratio, got {}",
                    self.shift_threshold
                )));
            }
        }
        Ok(())
    }
}

/// Parameters of the paper's security-metadata batching (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchingConfig {
    /// Whether batching is enabled at all.
    pub enabled: bool,
    /// Maximum blocks per batch (paper n = 16 for direct block access).
    pub batch_size: u32,
    /// A batch that has been open this long is flushed even if not full, so
    /// trickle traffic is not delayed indefinitely. The paper's burstiness
    /// analysis (Fig. 15) motivates a bound on the order of 160 cycles.
    pub flush_timeout: Duration,
    /// Deadline-aware close: when `true`, each open batch's flush deadline
    /// shrinks below `flush_timeout` whenever the oldest queued block's
    /// slack (against `deadline_slack`) drops below the batch's estimated
    /// remaining service time (blocks still missing × the EWMA inter-block
    /// gap on that destination). Off by default — the paper's wait-for-`n`
    /// policy.
    pub deadline_close: bool,
    /// Per-block latency budget used by deadline-aware close: a batch tries
    /// to emit its MAC trailer before its oldest block has been queued for
    /// this long.
    pub deadline_slack: Duration,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            enabled: false,
            batch_size: 16,
            flush_timeout: Duration::cycles(160),
            deadline_close: false,
            deadline_slack: Duration::cycles(96),
        }
    }
}

impl BatchingConfig {
    /// Batching enabled with the paper's defaults (n = 16).
    #[must_use]
    pub fn enabled() -> Self {
        BatchingConfig {
            enabled: true,
            ..BatchingConfig::default()
        }
    }

    /// Validates the batch size (must be ≥ 1 and fit the 1 B length header).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `batch_size` is 0 or exceeds 255.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.batch_size == 0 {
            return Err(ConfigError::new("batch_size must be >= 1"));
        }
        if self.batch_size > 255 {
            return Err(ConfigError::new(
                "batch_size must fit the 1-byte length header (<= 255)",
            ));
        }
        if self.deadline_close && self.deadline_slack == Duration::ZERO {
            return Err(ConfigError::new(
                "deadline_slack must be non-zero when deadline_close is enabled",
            ));
        }
        Ok(())
    }
}

/// Traffic-shape defenses against *passive* contention observers
/// (co-tenants sampling shared-port queue depths, grant timing and byte
/// counters — the NVBleed-style threat model, as opposed to the active
/// tampering adversary of [`AdversaryConfig`]).
///
/// Two independent, deterministic countermeasures:
///
/// * **Constant-rate shaping** (`constant_rate`): every `shape_period`
///   cycles each node pads its per-peer ctrl-VC traffic with chaff up to
///   a `shape_bytes` envelope, so the metadata channel an observer sees
///   carries the same byte profile regardless of scheme or workload
///   (whenever real ctrl traffic stays under the envelope).
/// * **Batch-close jitter** (`close_jitter`): each open metadata batch's
///   flush deadline is perturbed by a seeded, bounded pseudo-random
///   offset in `[0, jitter_bound)`, decorrelating the MAC-trailer cadence
///   an observer would use to recover the victim's batch-close phase.
///
/// Both default **off**; the defaults reproduce the undefended golden
/// matrix bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefenseConfig {
    /// Whether constant-rate ctrl-VC shaping (chaff padding) is active.
    pub constant_rate: bool,
    /// Shaping envelope: ctrl-VC bytes per directed pair per period that
    /// the channel is padded up to. Real traffic above the envelope is
    /// never delayed — the defense only guarantees indistinguishability
    /// while the envelope bounds the true ctrl rate.
    pub shape_bytes: u32,
    /// Shaping envelope on arbitration grants: ctrl-VC grants per
    /// directed pair per period the channel is padded up to. Byte counts
    /// alone are not the whole channel — a co-located observer also sees
    /// *how many* arbitration slots the control VC takes, so chaff is
    /// emitted as exactly the deficit number of messages. Must not
    /// exceed `shape_bytes` (every chaff message carries >= 1 byte).
    pub shape_grants: u32,
    /// Shaping period in cycles (chaff cadence).
    pub shape_period: Duration,
    /// Whether randomized batch-close jitter is active.
    pub close_jitter: bool,
    /// Exclusive upper bound on the per-batch deadline perturbation.
    pub jitter_bound: Duration,
    /// Seed of the deterministic jitter sequence (mixed per node/batch).
    pub jitter_seed: u64,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            constant_rate: false,
            shape_bytes: 256,
            shape_grants: 4,
            shape_period: Duration::cycles(250),
            close_jitter: false,
            jitter_bound: Duration::cycles(64),
            jitter_seed: 0x5EED_CAFE_D00D_F00D,
        }
    }
}

impl DefenseConfig {
    /// Constant-rate shaping enabled with the default envelope.
    #[must_use]
    pub fn constant_rate() -> Self {
        DefenseConfig {
            constant_rate: true,
            ..DefenseConfig::default()
        }
    }

    /// Batch-close jitter enabled with the default bound.
    #[must_use]
    pub fn jittered() -> Self {
        DefenseConfig {
            close_jitter: true,
            ..DefenseConfig::default()
        }
    }

    /// Whether any defense is active.
    #[must_use]
    pub fn any_enabled(&self) -> bool {
        self.constant_rate || self.close_jitter
    }

    /// Validates the active defenses' parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when an enabled defense has a degenerate
    /// envelope or bound.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.constant_rate {
            if self.shape_bytes == 0 {
                return Err(ConfigError::new(
                    "shape_bytes must be >= 1 when constant_rate shaping is enabled",
                ));
            }
            if self.shape_period == Duration::ZERO {
                return Err(ConfigError::new(
                    "shape_period must be non-zero when constant_rate shaping is enabled",
                ));
            }
            if self.shape_grants == 0 {
                return Err(ConfigError::new(
                    "shape_grants must be >= 1 when constant_rate shaping is enabled",
                ));
            }
            if self.shape_grants > self.shape_bytes {
                return Err(ConfigError::new(
                    "shape_grants must not exceed shape_bytes (each chaff \
                     message carries at least one byte)",
                ));
            }
        }
        if self.close_jitter && self.jitter_bound == Duration::ZERO {
            return Err(ConfigError::new(
                "jitter_bound must be non-zero when close_jitter is enabled",
            ));
        }
        Ok(())
    }
}

/// Configuration of the wire-level adversary used by the fault-injection
/// harness (threat model of paper §II-C: an attacker with physical access
/// to the interconnect who can replay, tamper with, reorder or drop
/// messages, but cannot break the cryptography).
///
/// The adversary is fully deterministic: the same `seed` and
/// `rate_permille` produce the same injection schedule, so detection
/// counts are reproducible across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversaryConfig {
    /// Whether the fault-injection harness is active. When enabled on a
    /// secure run, every simulated block also crosses a functional
    /// AES-GCM channel where the adversary may strike.
    pub enabled: bool,
    /// Seed of the adversary's deterministic injection schedule.
    pub seed: u64,
    /// Injection probability per opportunity, in permille (0..=1000).
    /// `0` means the adversary is present but never strikes — the
    /// false-positive control run.
    pub rate_permille: u32,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            enabled: false,
            seed: 0xADF0_0D5E,
            rate_permille: 20,
        }
    }
}

impl AdversaryConfig {
    /// An enabled adversary with the given injection rate (per mille).
    #[must_use]
    pub fn active(rate_permille: u32) -> Self {
        AdversaryConfig {
            enabled: true,
            rate_permille,
            ..AdversaryConfig::default()
        }
    }

    /// Validates the injection rate.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `rate_permille` exceeds 1000.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rate_permille > 1000 {
            return Err(ConfigError::new(format!(
                "rate_permille is a probability in 0..=1000, got {}",
                self.rate_permille
            )));
        }
        Ok(())
    }
}

/// Observability (time-series collection) configuration.
///
/// When enabled, the simulation samples per-node allocator state, OTP
/// hit/miss deltas, ACK-window depth and per-hop fabric counters at every
/// repartition-interval boundary, and keeps a bounded ring buffer of
/// protocol events. Collection is strictly passive: enabling it must not
/// change any simulated timing (pinned by the golden parity tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObservabilityConfig {
    /// Whether the time-series collector is active. Off by default: the
    /// hot path then carries only a dead `Option` check.
    pub enabled: bool,
    /// Capacity of the protocol-event ring buffer. When full, the oldest
    /// record is dropped (and counted) rather than growing without bound.
    pub trace_capacity: u32,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            enabled: false,
            trace_capacity: 4096,
        }
    }
}

impl ObservabilityConfig {
    /// Collection enabled with the default trace capacity.
    #[must_use]
    pub fn enabled() -> Self {
        ObservabilityConfig {
            enabled: true,
            ..ObservabilityConfig::default()
        }
    }

    /// Validates the trace capacity (must be ≥ 1 when collection is on).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if enabled with a zero-capacity trace.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.enabled && self.trace_capacity == 0 {
            return Err(ConfigError::new(
                "trace_capacity must be >= 1 when observability is enabled",
            ));
        }
        Ok(())
    }
}

/// Shard-level parallelism for one simulation run.
///
/// Deliberately **not** a [`SystemConfig`] field: sharding is an execution
/// strategy of the engine, not a property of the modeled system. The same
/// `SystemConfig` must produce bit-identical results at every shard
/// count, so keeping it out of the config preserves config identity (and
/// the experiment cache keys derived from it) across shard counts.
///
/// # Examples
///
/// ```
/// use mgpu_types::ShardConfig;
///
/// assert_eq!(ShardConfig::default().count, 1);
/// assert_eq!(ShardConfig::new(4).count, 4);
/// assert!(ShardConfig::new(0).validate().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardConfig {
    /// Worker shards the engine partitions nodes across. `1` selects the
    /// single-thread engine; `n > 1` runs `n` shard threads synchronized
    /// by conservative time windows. Shard counts above the node count
    /// are clamped by the engine (an empty shard does no work).
    pub count: u16,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { count: 1 }
    }
}

impl ShardConfig {
    /// A configuration with `count` shards.
    #[must_use]
    pub fn new(count: u16) -> Self {
        ShardConfig { count }
    }

    /// Validates the shard count (must be ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the count is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.count == 0 {
            return Err(ConfigError::new("shard count must be >= 1"));
        }
        Ok(())
    }
}

/// Security-layer configuration shared by all schemes.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityConfig {
    /// Active OTP buffer management scheme.
    pub scheme: OtpSchemeKind,
    /// OTP buffer multiplier `N` of the paper's `OTP Nx` notation: pads per
    /// source–destination pair per direction under `Private` sizing.
    pub otp_multiplier: u32,
    /// AES-GCM pad-generation latency in cycles (paper: 40).
    pub aes_latency: Duration,
    /// Dynamic-allocator parameters (used when `scheme == Dynamic`).
    pub dynamic: DynamicConfig,
    /// Metadata-batching parameters.
    pub batching: BatchingConfig,
    /// Traffic-shape defenses against passive contention observers.
    /// Off by default; the undefended defaults are bit-for-bit neutral.
    pub defense: DefenseConfig,
    /// Capacity of the replay-protection table holding each outgoing
    /// message's `(MsgCTR, MsgMAC)` until its ACK returns (paper §II-C).
    /// A full table stalls further protected sends; batching consumes one
    /// entry per *batch* instead of per block, which is where much of its
    /// benefit comes from.
    pub ack_table_entries: u32,
    /// When `false`, metadata bytes are not charged to the interconnect —
    /// the paper's `+SecureCommu` ablation (Fig. 11). Normal runs set `true`
    /// (the `+Traffic` configuration).
    pub charge_metadata_traffic: bool,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        SecurityConfig {
            scheme: OtpSchemeKind::Private,
            otp_multiplier: 4,
            aes_latency: Duration::cycles(40),
            dynamic: DynamicConfig::default(),
            batching: BatchingConfig::default(),
            defense: DefenseConfig::default(),
            ack_table_entries: 28,
            charge_metadata_traffic: true,
        }
    }
}

/// Full simulated-system configuration (paper Table III).
///
/// # Examples
///
/// ```
/// use mgpu_types::SystemConfig;
///
/// let cfg = SystemConfig::paper_4gpu();
/// assert_eq!(cfg.total_otp_buffers_per_node(), 32);
/// cfg.validate().expect("paper config is valid");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of GPUs (the CPU is always present in addition).
    pub gpu_count: u16,
    /// Shape of the GPU-to-GPU interconnect fabric.
    pub topology: TopologyKind,
    /// Compute units per GPU (paper: 64). Only shapes workload issue width.
    pub cus_per_gpu: u32,
    /// GPU–GPU link bandwidth in bytes per cycle (NVLink2-class: 50 GB/s at
    /// 1 GHz = 50 B/cy).
    pub gpu_link_bytes_per_cycle: u32,
    /// CPU–GPU link bandwidth in bytes per cycle (PCIe v4: 32 GB/s = 32 B/cy).
    pub pcie_bytes_per_cycle: u32,
    /// One-way link propagation latency in cycles.
    pub link_latency: Duration,
    /// HBM access latency model in cycles for remote-end service time.
    pub dram_latency: Duration,
    /// Maximum in-flight remote requests per GPU — the memory-level
    /// parallelism the CUs' wavefronts sustain. Bounds how much added
    /// communication latency can be hidden by overlap.
    pub max_outstanding: u32,
    /// Security-layer configuration.
    pub security: SecurityConfig,
    /// Wire-level adversary (fault-injection harness) configuration.
    /// Disabled by default; has no effect on unsecure runs.
    pub adversary: AdversaryConfig,
    /// Time-series observability configuration. Disabled by default and
    /// guaranteed timing-neutral when enabled.
    pub observability: ObservabilityConfig,
    /// Credit-based flow control of the timed-server substrate. The
    /// default (unbounded credits, round-robin arbitration) reproduces
    /// the pre-substrate service order bit for bit.
    pub flow: FlowControlConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_4gpu()
    }
}

impl SystemConfig {
    /// The paper's baseline 4-GPU system (Table III).
    #[must_use]
    pub fn paper_4gpu() -> Self {
        SystemConfig {
            gpu_count: 4,
            topology: TopologyKind::FullyConnected,
            cus_per_gpu: 64,
            gpu_link_bytes_per_cycle: 50,
            pcie_bytes_per_cycle: 32,
            link_latency: Duration::cycles(100),
            dram_latency: Duration::cycles(200),
            max_outstanding: 128,
            security: SecurityConfig::default(),
            adversary: AdversaryConfig::default(),
            observability: ObservabilityConfig::default(),
            flow: FlowControlConfig::default(),
        }
    }

    /// The paper's 8-GPU scaling configuration (§V-D: 64 OTP buffers per GPU).
    #[must_use]
    pub fn paper_8gpu() -> Self {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.gpu_count = 8;
        // 64 buffers / (8 peers * 2 directions) = 4 per pair-direction.
        cfg.security.otp_multiplier = 4;
        cfg
    }

    /// The paper's 16-GPU scaling configuration (§V-D: 128 OTP buffers per
    /// GPU).
    #[must_use]
    pub fn paper_16gpu() -> Self {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.gpu_count = 16;
        // 128 buffers / (16 peers * 2 directions) = 4 per pair-direction.
        cfg.security.otp_multiplier = 4;
        cfg
    }

    /// The same system with a different fabric shape.
    #[must_use]
    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    /// Total nodes in the system (GPUs + the CPU).
    #[must_use]
    pub fn node_count(&self) -> usize {
        usize::from(self.gpu_count) + 1
    }

    /// Peers each node communicates with (everyone but itself).
    #[must_use]
    pub fn peers_per_node(&self) -> u32 {
        u32::from(self.gpu_count) // node count - 1
    }

    /// Total OTP buffer entries per node under `Private` sizing:
    /// `peers × 2 directions × multiplier`. All schemes are given this same
    /// capacity for a fair comparison (paper §III-A).
    #[must_use]
    pub fn total_otp_buffers_per_node(&self) -> u32 {
        self.peers_per_node() * 2 * self.security.otp_multiplier
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.gpu_count < 2 {
            return Err(ConfigError::new(
                "at least 2 GPUs are required for inter-GPU communication",
            ));
        }
        self.topology.validate(self.gpu_count)?;
        if self.gpu_link_bytes_per_cycle == 0 || self.pcie_bytes_per_cycle == 0 {
            return Err(ConfigError::new("link bandwidth must be non-zero"));
        }
        if self.security.otp_multiplier == 0 {
            return Err(ConfigError::new("otp_multiplier must be >= 1"));
        }
        if self.max_outstanding == 0 {
            return Err(ConfigError::new("max_outstanding must be >= 1"));
        }
        if self.security.aes_latency == Duration::ZERO {
            return Err(ConfigError::new("aes_latency must be non-zero"));
        }
        if self.security.ack_table_entries == 0 {
            return Err(ConfigError::new("ack_table_entries must be >= 1"));
        }
        self.security.dynamic.validate()?;
        self.security.batching.validate()?;
        self.security.defense.validate()?;
        self.adversary.validate()?;
        self.observability.validate()?;
        self.flow.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_4gpu_matches_table_iii() {
        let cfg = SystemConfig::paper_4gpu();
        assert_eq!(cfg.gpu_count, 4);
        assert_eq!(cfg.cus_per_gpu, 64);
        assert_eq!(cfg.gpu_link_bytes_per_cycle, 50);
        assert_eq!(cfg.pcie_bytes_per_cycle, 32);
        assert_eq!(cfg.security.aes_latency, Duration::cycles(40));
        assert_eq!(cfg.security.dynamic.alpha, 0.9);
        assert_eq!(cfg.security.dynamic.beta, 0.5);
        assert_eq!(cfg.security.dynamic.interval, Duration::cycles(1000));
        cfg.validate().unwrap();
    }

    #[test]
    fn otp_buffer_totals_match_paper_section_iii() {
        // Paper: "In a 4-GPU system with OTP 4x, there are 4 × 2 × 4 = 32
        // OTP buffers in each GPU with the Private scheme."
        assert_eq!(SystemConfig::paper_4gpu().total_otp_buffers_per_node(), 32);
        // §V-D: 64 per GPU at 8 GPUs, 128 per GPU at 16 GPUs.
        assert_eq!(SystemConfig::paper_8gpu().total_otp_buffers_per_node(), 64);
        assert_eq!(
            SystemConfig::paper_16gpu().total_otp_buffers_per_node(),
            128
        );
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.gpu_count = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.otp_multiplier = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.dynamic.alpha = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.batching.batch_size = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.batching.batch_size = 300;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.adversary.rate_permille = 1001;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.dynamic.load_triggered = true;
        cfg.security.dynamic.check_interval = Duration::ZERO;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.dynamic.load_triggered = true;
        cfg.security.dynamic.shift_threshold = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.batching.deadline_close = true;
        cfg.security.batching.deadline_slack = Duration::ZERO;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.defense.constant_rate = true;
        cfg.security.defense.shape_bytes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.defense.constant_rate = true;
        cfg.security.defense.shape_period = Duration::ZERO;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.defense.close_jitter = true;
        cfg.security.defense.jitter_bound = Duration::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn adaptive_knobs_default_off() {
        // The adaptive policies must be opt-in: defaults reproduce the
        // paper's fixed-interval / wait-for-n behavior bit-for-bit.
        let cfg = SystemConfig::paper_4gpu();
        assert!(!cfg.security.dynamic.load_triggered);
        assert!(!cfg.security.batching.deadline_close);
        let mut on = cfg;
        on.security.dynamic.load_triggered = true;
        on.security.batching.deadline_close = true;
        on.validate().unwrap();
    }

    #[test]
    fn defenses_default_off_and_constructors_validate() {
        let cfg = SystemConfig::paper_4gpu();
        assert!(!cfg.security.defense.constant_rate);
        assert!(!cfg.security.defense.close_jitter);
        assert!(!cfg.security.defense.any_enabled());

        let shaped = DefenseConfig::constant_rate();
        assert!(shaped.constant_rate && !shaped.close_jitter);
        assert!(shaped.any_enabled());
        shaped.validate().unwrap();

        let jittered = DefenseConfig::jittered();
        assert!(jittered.close_jitter && !jittered.constant_rate);
        assert!(jittered.any_enabled());
        jittered.validate().unwrap();

        let mut both = SystemConfig::paper_4gpu();
        both.security.defense.constant_rate = true;
        both.security.defense.close_jitter = true;
        both.validate().unwrap();
    }

    #[test]
    fn topology_defaults_and_validation() {
        assert_eq!(TopologyKind::default(), TopologyKind::FullyConnected);
        assert_eq!(
            SystemConfig::paper_4gpu().topology,
            TopologyKind::FullyConnected
        );

        let ring = SystemConfig::paper_4gpu().with_topology(TopologyKind::Ring);
        ring.validate().unwrap();

        let mut tiny_ring = ring;
        tiny_ring.gpu_count = 2;
        assert!(tiny_ring.validate().is_err());

        let sw = SystemConfig::paper_8gpu().with_topology(TopologyKind::Switch { radix: 4 });
        sw.validate().unwrap();
        let bad = SystemConfig::paper_8gpu().with_topology(TopologyKind::Switch { radix: 1 });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn topology_display_names() {
        assert_eq!(TopologyKind::FullyConnected.to_string(), "fully-connected");
        assert_eq!(TopologyKind::Ring.to_string(), "ring");
        assert_eq!(TopologyKind::Switch { radix: 4 }.to_string(), "switch-r4");
    }

    #[test]
    fn adversary_defaults_and_constructor() {
        let cfg = SystemConfig::paper_4gpu();
        assert!(!cfg.adversary.enabled);
        cfg.adversary.validate().unwrap();

        let adv = AdversaryConfig::active(100);
        assert!(adv.enabled);
        assert_eq!(adv.rate_permille, 100);
        adv.validate().unwrap();
        AdversaryConfig {
            rate_permille: 1000,
            ..adv
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn observability_defaults_and_validation() {
        let cfg = SystemConfig::paper_4gpu();
        assert!(!cfg.observability.enabled);
        assert!(cfg.observability.trace_capacity > 0);

        let obs = ObservabilityConfig::enabled();
        assert!(obs.enabled);
        obs.validate().unwrap();

        let mut bad = SystemConfig::paper_4gpu();
        bad.observability = ObservabilityConfig {
            enabled: true,
            trace_capacity: 0,
        };
        assert!(bad.validate().is_err());
        // A zero capacity is fine while collection is off.
        bad.observability.enabled = false;
        bad.validate().unwrap();
    }

    #[test]
    fn flow_control_defaults_and_validation() {
        // The default must be behaviour-preserving: unbounded credits,
        // round-robin arbitration.
        let cfg = SystemConfig::paper_4gpu();
        assert_eq!(cfg.flow.arbitration, ArbitrationKind::RoundRobin);
        assert_eq!(cfg.flow.data_vc_credits, None);
        assert_eq!(cfg.flow.ctrl_vc_credits, None);
        cfg.validate().unwrap();

        let mut finite = SystemConfig::paper_4gpu();
        finite.flow.data_vc_credits = Some(4);
        finite.flow.ctrl_vc_credits = Some(8);
        finite.flow.arbitration = ArbitrationKind::FixedPriority;
        finite.validate().unwrap();

        let mut bad = SystemConfig::paper_4gpu();
        bad.flow.data_vc_credits = Some(0);
        assert!(bad.validate().is_err());
        let mut bad = SystemConfig::paper_4gpu();
        bad.flow.ctrl_vc_credits = Some(0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn arbitration_display_names() {
        assert_eq!(ArbitrationKind::RoundRobin.to_string(), "round-robin");
        assert_eq!(ArbitrationKind::FixedPriority.to_string(), "fixed-priority");
    }

    #[test]
    fn batching_enabled_constructor() {
        let b = BatchingConfig::enabled();
        assert!(b.enabled);
        assert_eq!(b.batch_size, 16);
        b.validate().unwrap();
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(OtpSchemeKind::Private.to_string(), "private");
        assert_eq!(OtpSchemeKind::Dynamic.to_string(), "dynamic");
        assert_eq!(OtpSchemeKind::SECURE.len(), 4);
    }
}
