//! Shared identifiers, units, and configuration types for the secure
//! multi-GPU simulation workspace.
//!
//! This crate is the dependency root of the workspace: every other crate
//! (crypto, simulator, workloads, secure-communication core, system
//! composition, experiments) builds on the newtypes and configuration
//! structures defined here.
//!
//! # Examples
//!
//! ```
//! use mgpu_types::{NodeId, SystemConfig};
//!
//! let cfg = SystemConfig::paper_4gpu();
//! assert_eq!(cfg.gpu_count, 4);
//! assert_eq!(cfg.node_count(), 5); // CPU + 4 GPUs
//! assert!(NodeId::CPU.is_cpu());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dense;
pub mod error;
pub mod ids;
pub mod units;

pub use config::{
    AdversaryConfig, ArbitrationKind, BatchingConfig, DefenseConfig, DynamicConfig,
    FlowControlConfig, ObservabilityConfig, OtpSchemeKind, SecurityConfig, ShardConfig,
    SystemConfig, TopologyKind,
};
pub use dense::{DenseNodeMap, PairTable};
pub use error::{ConfigError, MgpuError};
pub use ids::{Direction, NodeId, PairId};
pub use units::{ByteSize, Cycle, Duration};
