//! Dense, index-addressed per-node and per-pair tables.
//!
//! [`NodeId`]s are small and contiguous (`0..=gpu_count` via
//! [`NodeId::all`]), so per-peer state does not need an ordered tree: a
//! flat vector indexed by [`NodeId::raw`] gives O(1) lookup with no
//! pointer-chasing, while iterating slots in ascending index order
//! reproduces `BTreeMap<NodeId, _>` iteration order exactly. That order
//! equivalence is what lets the simulation engine swap its hot-path maps
//! for these tables without perturbing event schedules (the golden-parity
//! matrix replays bit-for-bit; see DESIGN.md §10).
//!
//! [`DenseNodeMap`] is the per-node table; [`PairTable`] nests two of them
//! for directed `(src, dst)` pairs. Both grow lazily on insert, because
//! several owners (e.g. batching state) are constructed before the node
//! count is known.

use crate::ids::{NodeId, PairId};
use core::fmt;

/// A map from [`NodeId`] to `T`, backed by a flat vector indexed by
/// [`NodeId::raw`].
///
/// Drop-in replacement for the hot-path `BTreeMap<NodeId, T>` tables:
/// iteration yields entries in ascending `NodeId` order, matching the
/// B-tree's order, and lookups are a single bounds-checked index. The
/// table grows lazily to the highest inserted raw id, so it is only
/// memory-dense when node ids are — which [`NodeId::all`] guarantees.
///
/// # Examples
///
/// ```
/// use mgpu_types::{DenseNodeMap, NodeId};
///
/// let mut m = DenseNodeMap::new();
/// m.insert(NodeId::gpu(2), "b");
/// m.insert(NodeId::CPU, "a");
/// assert_eq!(m.get(NodeId::gpu(2)), Some(&"b"));
/// let keys: Vec<_> = m.keys().collect();
/// assert_eq!(keys, vec![NodeId::CPU, NodeId::gpu(2)]); // ascending
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DenseNodeMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> DenseNodeMap<T> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        DenseNodeMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty map pre-sized for a system with `gpu_count` GPUs
    /// (slots for the CPU plus every GPU).
    #[must_use]
    pub fn with_gpu_count(gpu_count: u16) -> Self {
        DenseNodeMap {
            slots: Vec::with_capacity(usize::from(gpu_count) + 1),
            len: 0,
        }
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value for `node`, if present.
    #[must_use]
    pub fn get(&self, node: NodeId) -> Option<&T> {
        self.slots.get(usize::from(node.raw()))?.as_ref()
    }

    /// Mutable access to the value for `node`, if present.
    pub fn get_mut(&mut self, node: NodeId) -> Option<&mut T> {
        self.slots.get_mut(usize::from(node.raw()))?.as_mut()
    }

    /// Whether `node` has an entry.
    #[must_use]
    pub fn contains_key(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    fn slot_mut(&mut self, node: NodeId) -> &mut Option<T> {
        let idx = usize::from(node.raw());
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        &mut self.slots[idx]
    }

    /// Inserts a value for `node`, returning the previous value if any.
    pub fn insert(&mut self, node: NodeId, value: T) -> Option<T> {
        let prev = self.slot_mut(node).replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes and returns the value for `node`, if any. The slot itself
    /// is retained (the table never shrinks), keeping later reinsertion
    /// allocation-free.
    pub fn remove(&mut self, node: NodeId) -> Option<T> {
        let taken = self.slots.get_mut(usize::from(node.raw()))?.take();
        if taken.is_some() {
            self.len -= 1;
        }
        taken
    }

    /// The value for `node`, inserting `default()` first if absent —
    /// the dense equivalent of `BTreeMap::entry(..).or_insert_with(..)`.
    pub fn get_or_insert_with(&mut self, node: NodeId, default: impl FnOnce() -> T) -> &mut T {
        if self.slot_mut(node).is_none() {
            self.len += 1;
            *self.slot_mut(node) = Some(default());
        }
        self.slots[usize::from(node.raw())]
            .as_mut()
            .expect("slot just filled")
    }

    /// Entries in ascending [`NodeId`] order (the `BTreeMap` order).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (NodeId::from_raw(i as u16), v)))
    }

    /// Mutable entries in ascending [`NodeId`] order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (NodeId::from_raw(i as u16), v)))
    }

    /// Occupied keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().map(|(n, _)| n)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }

    /// Mutable values in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.iter_mut().map(|(_, v)| v)
    }
}

impl<T> Default for DenseNodeMap<T> {
    fn default() -> Self {
        DenseNodeMap::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for DenseNodeMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T> FromIterator<(NodeId, T)> for DenseNodeMap<T> {
    fn from_iter<I: IntoIterator<Item = (NodeId, T)>>(iter: I) -> Self {
        let mut m = DenseNodeMap::new();
        for (node, value) in iter {
            m.insert(node, value);
        }
        m
    }
}

impl<T> core::ops::Index<NodeId> for DenseNodeMap<T> {
    type Output = T;

    fn index(&self, node: NodeId) -> &T {
        self.get(node)
            .unwrap_or_else(|| panic!("no entry for {node}"))
    }
}

/// A map from directed [`PairId`] to `T`, backed by per-source
/// [`DenseNodeMap`] rows.
///
/// Iteration order is ascending `(src, dst)` — identical to
/// `BTreeMap<PairId, T>` (whose `Ord` compares `src` then `dst`), so the
/// same order-equivalence argument as [`DenseNodeMap`] applies.
///
/// # Examples
///
/// ```
/// use mgpu_types::{NodeId, PairId, PairTable};
///
/// let mut t = PairTable::new();
/// let p = PairId::new(NodeId::gpu(1), NodeId::gpu(2));
/// t.insert(p, 7u64);
/// assert_eq!(t.get(p), Some(&7));
/// assert_eq!(t.get(p.reversed()), None);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct PairTable<T> {
    rows: Vec<DenseNodeMap<T>>,
    len: usize,
}

impl<T> PairTable<T> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        PairTable {
            rows: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value for `pair`, if present.
    #[must_use]
    pub fn get(&self, pair: PairId) -> Option<&T> {
        self.rows.get(usize::from(pair.src.raw()))?.get(pair.dst)
    }

    /// Mutable access to the value for `pair`, if present.
    pub fn get_mut(&mut self, pair: PairId) -> Option<&mut T> {
        self.rows
            .get_mut(usize::from(pair.src.raw()))?
            .get_mut(pair.dst)
    }

    fn row_mut(&mut self, src: NodeId) -> &mut DenseNodeMap<T> {
        let idx = usize::from(src.raw());
        if idx >= self.rows.len() {
            self.rows.resize_with(idx + 1, DenseNodeMap::new);
        }
        &mut self.rows[idx]
    }

    /// Inserts a value for `pair`, returning the previous value if any.
    pub fn insert(&mut self, pair: PairId, value: T) -> Option<T> {
        let prev = self.row_mut(pair.src).insert(pair.dst, value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes and returns the value for `pair`, if any.
    pub fn remove(&mut self, pair: PairId) -> Option<T> {
        let taken = self
            .rows
            .get_mut(usize::from(pair.src.raw()))?
            .remove(pair.dst);
        if taken.is_some() {
            self.len -= 1;
        }
        taken
    }

    /// The value for `pair`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, pair: PairId, default: impl FnOnce() -> T) -> &mut T {
        {
            let row = self.row_mut(pair.src);
            if !row.contains_key(pair.dst) {
                row.insert(pair.dst, default());
                self.len += 1;
            }
        }
        self.rows[usize::from(pair.src.raw())]
            .get_mut(pair.dst)
            .expect("entry just ensured")
    }

    /// Entries in ascending `(src, dst)` order.
    pub fn iter(&self) -> impl Iterator<Item = (PairId, &T)> {
        self.rows.iter().enumerate().flat_map(|(src, row)| {
            let src = NodeId::from_raw(src as u16);
            row.iter().map(move |(dst, v)| (PairId { src, dst }, v))
        })
    }

    /// Mutable entries in ascending `(src, dst)` order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (PairId, &mut T)> {
        self.rows.iter_mut().enumerate().flat_map(|(src, row)| {
            let src = NodeId::from_raw(src as u16);
            row.iter_mut().map(move |(dst, v)| (PairId { src, dst }, v))
        })
    }

    /// Occupied pairs in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = PairId> + '_ {
        self.iter().map(|(p, _)| p)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }

    /// Mutable values in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.iter_mut().map(|(_, v)| v)
    }
}

impl<T> Default for PairTable<T> {
    fn default() -> Self {
        PairTable::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for PairTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T> FromIterator<(PairId, T)> for PairTable<T> {
    fn from_iter<I: IntoIterator<Item = (PairId, T)>>(iter: I) -> Self {
        let mut t = PairTable::new();
        for (pair, value) in iter {
            t.insert(pair, value);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = DenseNodeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId::gpu(3), 30), None);
        assert_eq!(m.insert(NodeId::gpu(3), 31), Some(30));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(NodeId::gpu(3)), Some(&31));
        assert_eq!(m.get(NodeId::gpu(2)), None);
        assert_eq!(m.remove(NodeId::gpu(3)), Some(31));
        assert_eq!(m.remove(NodeId::gpu(3)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_matches_btreemap_order() {
        // Insert in scrambled order; iteration must come out ascending,
        // exactly as a BTreeMap would yield it.
        let entries = [(5u16, 'e'), (0, 'a'), (3, 'c'), (1, 'b'), (4, 'd')];
        let mut dense = DenseNodeMap::new();
        let mut tree = BTreeMap::new();
        for &(raw, v) in &entries {
            dense.insert(NodeId::from_raw(raw), v);
            tree.insert(NodeId::from_raw(raw), v);
        }
        let dense_vec: Vec<_> = dense.iter().map(|(n, &v)| (n, v)).collect();
        let tree_vec: Vec<_> = tree.iter().map(|(&n, &v)| (n, v)).collect();
        assert_eq!(dense_vec, tree_vec);
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut m: DenseNodeMap<Vec<u32>> = DenseNodeMap::new();
        m.get_or_insert_with(NodeId::gpu(1), Vec::new).push(1);
        m.get_or_insert_with(NodeId::gpu(1), Vec::new).push(2);
        assert_eq!(m.len(), 1);
        assert_eq!(m[NodeId::gpu(1)], vec![1, 2]);
    }

    #[test]
    fn removed_slot_reinserts_without_len_drift() {
        let mut m = DenseNodeMap::new();
        m.insert(NodeId::gpu(7), ());
        m.remove(NodeId::gpu(7));
        m.insert(NodeId::gpu(7), ());
        assert_eq!(m.len(), 1);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![NodeId::gpu(7)]);
    }

    #[test]
    fn from_iterator_collects() {
        let m: DenseNodeMap<u32> = NodeId::all(3).map(|n| (n, u32::from(n.raw()))).collect();
        assert_eq!(m.len(), 4);
        assert_eq!(m[NodeId::gpu(2)], 2);
    }

    #[test]
    #[should_panic(expected = "no entry for GPU2")]
    fn index_missing_panics() {
        let m: DenseNodeMap<u32> = DenseNodeMap::new();
        let _ = m[NodeId::gpu(2)];
    }

    #[test]
    fn pair_table_round_trip() {
        let mut t = PairTable::new();
        let ab = PairId::new(NodeId::gpu(1), NodeId::gpu(2));
        let ba = ab.reversed();
        assert_eq!(t.insert(ab, 1), None);
        assert_eq!(t.insert(ba, 2), None);
        assert_eq!(t.insert(ab, 3), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(ab), Some(&3));
        assert_eq!(t.remove(ab), Some(3));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(ab), None);
    }

    #[test]
    fn pair_iteration_matches_btreemap_order() {
        let mut pairs = Vec::new();
        for src in NodeId::all(3) {
            for dst in src.peers(3) {
                pairs.push(PairId::new(src, dst));
            }
        }
        // Insert reversed to prove ordering is by key, not insertion.
        let mut table = PairTable::new();
        let mut tree = BTreeMap::new();
        for (i, &p) in pairs.iter().rev().enumerate() {
            table.insert(p, i);
            tree.insert(p, i);
        }
        let t_vec: Vec<_> = table.iter().map(|(p, &v)| (p, v)).collect();
        let b_vec: Vec<_> = tree.iter().map(|(&p, &v)| (p, v)).collect();
        assert_eq!(t_vec, b_vec);
    }

    #[test]
    fn pair_get_or_insert_with_tracks_len() {
        let mut t: PairTable<u64> = PairTable::new();
        let p = PairId::new(NodeId::CPU, NodeId::gpu(1));
        *t.get_or_insert_with(p, || 0) += 5;
        *t.get_or_insert_with(p, || 0) += 5;
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p), Some(&10));
    }
}
