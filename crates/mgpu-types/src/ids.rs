//! Node and communication-pair identifiers.

use core::fmt;

/// Identifies a processor in the multi-GPU system.
///
/// The CPU is always node `0`; GPUs are numbered `1..=gpu_count`. This
/// matches the paper's system model of one host CPU plus N GPUs sharing a
/// unified address space.
///
/// # Examples
///
/// ```
/// use mgpu_types::NodeId;
///
/// let gpu1 = NodeId::gpu(1);
/// assert!(gpu1.is_gpu());
/// assert_eq!(gpu1.gpu_index(), Some(1));
/// assert_eq!(NodeId::CPU.gpu_index(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// The host CPU (node 0).
    pub const CPU: NodeId = NodeId(0);

    /// Creates the identifier for the `index`-th GPU (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero (index 0 is reserved for the CPU).
    #[must_use]
    pub fn gpu(index: u16) -> Self {
        assert!(index > 0, "GPU indices are 1-based; 0 is the CPU");
        NodeId(index)
    }

    /// Creates a node identifier from a raw index (0 = CPU, n>0 = GPU n).
    #[must_use]
    pub const fn from_raw(raw: u16) -> Self {
        NodeId(raw)
    }

    /// Raw numeric value (0 = CPU, n = GPU n).
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Returns `true` when this node is the host CPU.
    #[must_use]
    pub const fn is_cpu(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` when this node is a GPU.
    #[must_use]
    pub const fn is_gpu(self) -> bool {
        self.0 != 0
    }

    /// The 1-based GPU index, or `None` for the CPU.
    #[must_use]
    pub const fn gpu_index(self) -> Option<u16> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0)
        }
    }

    /// Iterates over all nodes of a system with `gpu_count` GPUs
    /// (CPU first, then GPUs in index order).
    pub fn all(gpu_count: u16) -> impl Iterator<Item = NodeId> {
        (0..=gpu_count).map(NodeId)
    }

    /// Iterates over the peers of `self` in a system with `gpu_count` GPUs,
    /// i.e. every node except `self`.
    pub fn peers(self, gpu_count: u16) -> impl Iterator<Item = NodeId> {
        NodeId::all(gpu_count).filter(move |&n| n != self)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_cpu() {
            write!(f, "CPU")
        } else {
            write!(f, "GPU{}", self.0)
        }
    }
}

/// An ordered (source, destination) pair of nodes — one direction of a
/// communication path.
///
/// # Examples
///
/// ```
/// use mgpu_types::{NodeId, PairId};
///
/// let p = PairId::new(NodeId::gpu(1), NodeId::gpu(2));
/// assert_eq!(p.reversed(), PairId::new(NodeId::gpu(2), NodeId::gpu(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairId {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
}

impl PairId {
    /// Creates a directed pair.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`; a node never encrypts traffic to itself.
    #[must_use]
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        assert_ne!(src, dst, "communication pair must connect distinct nodes");
        PairId { src, dst }
    }

    /// The same physical path in the opposite direction.
    #[must_use]
    pub fn reversed(self) -> Self {
        PairId {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Whether this pair crosses the CPU–GPU (PCIe) boundary.
    #[must_use]
    pub fn involves_cpu(self) -> bool {
        self.src.is_cpu() || self.dst.is_cpu()
    }
}

impl fmt::Display for PairId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// Communication direction as seen from one endpoint.
///
/// The paper's OTP tables are split into a *send* table (pads this node uses
/// to encrypt outgoing data) and a *receive* table (pads used to decrypt and
/// authenticate incoming data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Outgoing traffic: this node encrypts and MACs.
    Send,
    /// Incoming traffic: this node decrypts and verifies.
    Recv,
}

impl Direction {
    /// Both directions, send first.
    pub const BOTH: [Direction; 2] = [Direction::Send, Direction::Recv];

    /// The opposite direction.
    #[must_use]
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::Send => Direction::Recv,
            Direction::Recv => Direction::Send,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Send => f.write_str("send"),
            Direction::Recv => f.write_str("recv"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_is_node_zero() {
        assert_eq!(NodeId::CPU.raw(), 0);
        assert!(NodeId::CPU.is_cpu());
        assert!(!NodeId::CPU.is_gpu());
    }

    #[test]
    fn gpu_indices_are_one_based() {
        let g = NodeId::gpu(3);
        assert!(g.is_gpu());
        assert_eq!(g.gpu_index(), Some(3));
        assert_eq!(g.to_string(), "GPU3");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn gpu_zero_panics() {
        let _ = NodeId::gpu(0);
    }

    #[test]
    fn all_nodes_enumerates_cpu_and_gpus() {
        let nodes: Vec<_> = NodeId::all(4).collect();
        assert_eq!(nodes.len(), 5);
        assert_eq!(nodes[0], NodeId::CPU);
        assert_eq!(nodes[4], NodeId::gpu(4));
    }

    #[test]
    fn peers_excludes_self() {
        let peers: Vec<_> = NodeId::gpu(2).peers(4).collect();
        assert_eq!(peers.len(), 4);
        assert!(!peers.contains(&NodeId::gpu(2)));
        assert!(peers.contains(&NodeId::CPU));
    }

    #[test]
    fn pair_reversal_round_trips() {
        let p = PairId::new(NodeId::CPU, NodeId::gpu(1));
        assert_eq!(p.reversed().reversed(), p);
        assert!(p.involves_cpu());
        assert!(!PairId::new(NodeId::gpu(1), NodeId::gpu(2)).involves_cpu());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_pair_panics() {
        let _ = PairId::new(NodeId::gpu(1), NodeId::gpu(1));
    }

    #[test]
    fn direction_opposite_is_involutive() {
        for d in Direction::BOTH {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::CPU.to_string(), "CPU");
        assert_eq!(
            PairId::new(NodeId::gpu(1), NodeId::CPU).to_string(),
            "GPU1->CPU"
        );
        assert_eq!(Direction::Send.to_string(), "send");
        assert_eq!(Direction::Recv.to_string(), "recv");
    }
}
