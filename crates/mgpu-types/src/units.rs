//! Simulation units: cycles, durations, and byte sizes.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

/// An absolute point in simulated time, measured in GPU core cycles
/// (the paper's shader clock runs at 1.0 GHz, so 1 cycle = 1 ns).
///
/// # Examples
///
/// ```
/// use mgpu_types::{Cycle, Duration};
///
/// let t = Cycle::ZERO + Duration::cycles(40);
/// assert_eq!(t.as_u64(), 40);
/// assert_eq!(t - Cycle::ZERO, Duration::cycles(40));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero: the start of the simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates an absolute time from a raw cycle count.
    #[must_use]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Raw cycle count since simulation start.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating difference: `self - earlier`, or zero if `earlier` is later.
    #[must_use]
    pub const fn saturating_since(self, earlier: Cycle) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl Add<Duration> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: Duration) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Cycle {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative cycle difference");
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A span of simulated time in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Duration(u64);

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration of `n` cycles.
    #[must_use]
    pub const fn cycles(n: u64) -> Self {
        Duration(n)
    }

    /// Raw cycle count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A quantity of bytes, used for wire-traffic accounting and storage sizing.
///
/// # Examples
///
/// ```
/// use mgpu_types::ByteSize;
///
/// let block = ByteSize::CACHELINE;
/// assert_eq!(block.as_u64(), 64);
/// assert_eq!((block * 64).as_u64(), 4096); // one page
/// assert_eq!(ByteSize::new(2816).to_string(), "2.75 KB");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// One 64 B cacheline — the granularity of direct block access.
    pub const CACHELINE: ByteSize = ByteSize(64);

    /// One 4 KB page — the granularity of page migration.
    pub const PAGE: ByteSize = ByteSize(4096);

    /// Creates a size from a raw byte count.
    #[must_use]
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from a bit count, rounding up to whole bytes.
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        ByteSize(bits.div_ceil(8))
    }

    /// Raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Size in KiB as a float (the paper's Table I reports KB = KiB).
    #[must_use]
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl core::ops::Mul<u64> for ByteSize {
    type Output = ByteSize;

    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2} MB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.2} KB", self.as_kib())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle::new(100);
        assert_eq!(t + Duration::cycles(60), Cycle::new(160));
        assert_eq!(Cycle::new(160) - t, Duration::cycles(60));
        assert_eq!(t.saturating_since(Cycle::new(200)), Duration::ZERO);
        assert_eq!(t.max(Cycle::new(50)), t);
    }

    #[test]
    fn cycle_add_assign() {
        let mut t = Cycle::ZERO;
        t += Duration::cycles(5);
        t += Duration::cycles(7);
        assert_eq!(t.as_u64(), 12);
    }

    #[test]
    #[should_panic(expected = "negative")]
    #[cfg(debug_assertions)]
    fn negative_cycle_difference_panics_in_debug() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [1u64, 2, 3].iter().map(|&n| Duration::cycles(n)).sum();
        assert_eq!(total, Duration::cycles(6));
        assert_eq!(
            Duration::cycles(3).saturating_sub(Duration::cycles(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn byte_size_constants_and_math() {
        assert_eq!(ByteSize::CACHELINE * 64, ByteSize::PAGE);
        assert_eq!(ByteSize::from_bits(512).as_u64(), 64);
        assert_eq!(ByteSize::from_bits(1).as_u64(), 1);
        assert_eq!(ByteSize::from_bits(9).as_u64(), 2);
        let total: ByteSize = [ByteSize::new(10), ByteSize::new(20)].into_iter().sum();
        assert_eq!(total.as_u64(), 30);
    }

    #[test]
    fn byte_size_display_scales() {
        assert_eq!(ByteSize::new(64).to_string(), "64 B");
        assert_eq!(ByteSize::new(2816).to_string(), "2.75 KB");
        assert_eq!(ByteSize::new(2 * 1024 * 1024).to_string(), "2.00 MB");
    }

    #[test]
    fn table_one_entry_size_matches_paper() {
        // Paper §IV-D: an OTP buffer entry is valid(1) + enc pad(512) +
        // auth pad(128) + counter(64) = 705 bits.
        let entry_bits = 1 + 512 + 128 + 64;
        // 32 OTPs (4-GPU, 1x) => 705 * 32 bits = 2820 bytes = 2.75 KB.
        let total = ByteSize::from_bits(entry_bits * 32);
        assert_eq!(total.as_u64(), 2820);
        assert_eq!(format!("{:.2}", total.as_kib()), "2.75");
    }
}
