//! Workspace-level error types.

use core::fmt;

/// An invalid configuration value.
///
/// # Examples
///
/// ```
/// use mgpu_types::{ConfigError, SystemConfig};
///
/// let mut cfg = SystemConfig::paper_4gpu();
/// cfg.gpu_count = 0;
/// let err: ConfigError = cfg.validate().unwrap_err();
/// assert!(err.to_string().contains("2 GPUs"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Top-level error type for fallible operations across the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MgpuError {
    /// A configuration value was invalid.
    Config(ConfigError),
    /// Message authentication failed (tamper or replay detected).
    AuthenticationFailed {
        /// Human-readable description of what failed to verify.
        context: String,
    },
    /// A replayed message (stale counter or duplicated MAC) was detected.
    ReplayDetected {
        /// The stale counter value observed.
        counter: u64,
    },
    /// A protocol-state violation, e.g. out-of-window batch index.
    Protocol(String),
}

impl fmt::Display for MgpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgpuError::Config(e) => write!(f, "{e}"),
            MgpuError::AuthenticationFailed { context } => {
                write!(f, "authentication failed: {context}")
            }
            MgpuError::ReplayDetected { counter } => {
                write!(f, "replay detected: stale counter {counter}")
            }
            MgpuError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for MgpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MgpuError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for MgpuError {
    fn from(e: ConfigError) -> Self {
        MgpuError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn config_error_display() {
        let e = ConfigError::new("bad alpha");
        assert_eq!(e.to_string(), "invalid configuration: bad alpha");
    }

    #[test]
    fn mgpu_error_wraps_config_error_as_source() {
        let e: MgpuError = ConfigError::new("x").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("x"));
    }

    #[test]
    fn auth_and_replay_messages() {
        let a = MgpuError::AuthenticationFailed {
            context: "batched MAC mismatch".into(),
        };
        assert!(a.to_string().contains("batched MAC mismatch"));
        let r = MgpuError::ReplayDetected { counter: 7 };
        assert!(r.to_string().contains("7"));
        assert!(r.source().is_none());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MgpuError>();
        assert_send_sync::<ConfigError>();
    }
}
