//! Criterion benchmark harness for the secure multi-GPU workspace.
//!
//! Two benches live here:
//!
//! * `figures` — one Criterion benchmark per paper table/figure, running
//!   the corresponding experiment at reduced (`Mode::Bench`) size. These
//!   time the *reproduction pipelines*; the full-quality numbers come
//!   from `cargo run -p mgpu-experiments --bin repro --release -- all`.
//! * `micro` — microbenchmarks of the core primitives: AES block, GCM
//!   seal, GHASH, pad-window operations, the EWMA allocator, batching,
//!   and a short end-to-end simulation.
