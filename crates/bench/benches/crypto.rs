//! Crypto backend A/B benchmarks: software T-table/Shoup vs hardware
//! AES-NI/PCLMULQDQ, for every primitive the secure channel leans on.
//!
//! Criterion tracks wall-clock for both backends side by side (single
//! block encrypt, bulk CTR keystream, GHASH, full GCM seal). Separately,
//! best-of-5 timed loops print `engine-events-per-sec` lines for the CI
//! floor gate — absolute hardware throughput in bytes/sec plus the
//! hw-over-soft speedup ratios, which is how the "≥4× on bulk keystream
//! and GHASH" acceptance bar stays pinned. The hardware lines only print
//! when the CPU has the features; the floor file assumes an AES-NI host
//! (every x86_64 CI runner qualifies).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mgpu_crypto::aes::{Aes128, Block};
use mgpu_crypto::backend::{cpu_features, Backend};
use mgpu_crypto::ctr::CtrKeystream;
use mgpu_crypto::gcm::AesGcm;
use mgpu_crypto::ghash::{Ghash, GhashKey};
use mgpu_crypto::pad::PadSeed;
use std::time::Instant;

/// Bulk payload: 4 KiB = 256 AES blocks, a realistic OTP window refill
/// and far past the 8-block pipeline / 4-block fold ramp-up.
const BULK_BYTES: usize = 4096;
const BULK_BLOCKS: usize = BULK_BYTES / 16;

const KEY: [u8; 16] = [0x42; 16];

fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Soft];
    if Backend::HwAesClmul.is_available() {
        v.push(Backend::HwAesClmul);
    }
    v
}

/// Best-of-N timed throughput in bytes/sec for `f`, which processes
/// `bytes` per call and is repeated `reps` times per sample.
fn peak_bps(bytes: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..5 {
        let started = Instant::now();
        for _ in 0..reps {
            f();
        }
        let seconds = started.elapsed().as_secs_f64();
        best = best.max((bytes * reps) as f64 / seconds.max(f64::EPSILON));
    }
    best
}

fn keystream_bps(backend: Backend) -> f64 {
    let ks = CtrKeystream::with_backend(&KEY, backend);
    let seed = PadSeed::new(1, 2, 99);
    let mut out = vec![[0u8; 16]; BULK_BLOCKS];
    peak_bps(BULK_BYTES, 2000, || {
        ks.keystream_blocks(seed, 0, black_box(&mut out));
    })
}

fn ghash_bps(backend: Backend) -> f64 {
    let key = GhashKey::with_backend([0x77; 16], backend);
    let data = vec![0xA5u8; BULK_BYTES];
    peak_bps(BULK_BYTES, 2000, || {
        let mut g = Ghash::with_key(key.clone());
        g.update(black_box(&data));
        black_box(g.finalize(0, data.len() as u64));
    })
}

fn bench_crypto_backends(c: &mut Criterion) {
    let seed = PadSeed::new(1, 2, 99);
    for backend in backends() {
        let name = backend.name();
        let aes = Aes128::with_backend(&KEY, backend);
        let ks = CtrKeystream::with_backend(&KEY, backend);
        let ghash_key = GhashKey::with_backend([0x77; 16], backend);
        let gcm = AesGcm::with_backend(&KEY, backend);

        let mut group = c.benchmark_group(format!("crypto-{name}"));
        group.bench_function("block-encrypt", |b| {
            let mut block: Block = [7u8; 16];
            b.iter(|| {
                block = aes.encrypt_block(black_box(block));
                block
            });
        });
        group.bench_function("keystream-4k", |b| {
            let mut out = vec![[0u8; 16]; BULK_BLOCKS];
            b.iter(|| {
                ks.keystream_blocks(seed, 0, black_box(&mut out));
            });
        });
        group.bench_function("ghash-4k", |b| {
            let data = vec![0xA5u8; BULK_BYTES];
            b.iter(|| {
                let mut g = Ghash::with_key(ghash_key.clone());
                g.update(black_box(&data));
                g.finalize(0, data.len() as u64)
            });
        });
        group.bench_function("seal-4k", |b| {
            let pt = vec![0x3Cu8; BULK_BYTES];
            let mut ct = Vec::with_capacity(BULK_BYTES);
            b.iter(|| gcm.seal_detached_into(&[9u8; 12], b"hdr", black_box(&pt), &mut ct));
        });
        group.finish();
    }

    // CI floor-gate lines (parsed by the bench smoke step): absolute
    // hardware throughput and the hw/soft speedup ratios.
    if Backend::HwAesClmul.is_available() {
        let soft_ks = keystream_bps(Backend::Soft);
        let hw_ks = keystream_bps(Backend::HwAesClmul);
        let soft_gh = ghash_bps(Backend::Soft);
        let hw_gh = ghash_bps(Backend::HwAesClmul);
        println!("engine-events-per-sec aesni_keystream_Bps {hw_ks:.0} (soft {soft_ks:.0} B/s)");
        println!("engine-events-per-sec clmul_ghash_Bps {hw_gh:.0} (soft {soft_gh:.0} B/s)");
        println!(
            "engine-events-per-sec aesni_keystream_speedup {:.2} (hw over soft, 4 KiB)",
            hw_ks / soft_ks
        );
        println!(
            "engine-events-per-sec clmul_ghash_speedup {:.2} (hw over soft, 4 KiB)",
            hw_gh / soft_gh
        );
        println!("crypto-backend-features {}", cpu_features().join(","));
    } else {
        println!("crypto-backend hw unavailable: skipping aesni_*/clmul_* floor lines");
    }
}

criterion_group!(benches, bench_crypto_backends);
criterion_main!(benches);
