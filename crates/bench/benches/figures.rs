//! One Criterion benchmark per paper table/figure: times the experiment
//! pipeline that regenerates the artifact (at `Mode::Bench` size — full
//! numbers come from the `repro` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use mgpu_experiments::{registry, Mode};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for exp in registry() {
        group.bench_function(exp.id, |b| {
            b.iter(|| {
                let tables = (exp.run)(Mode::Bench);
                assert!(!tables.is_empty());
                tables
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
