//! Sharded-engine throughput: the window-synchronized multi-thread
//! event loop against the single-thread engine on the same cell.
//!
//! One cell — the 64-GPU radix-4 switch under Dynamic+Batching, the
//! shape the `topology_scaling` scale-out sweep leans on — timed at
//! shards ∈ {1, 4}. Both configurations produce bit-identical
//! `RunReport`s (asserted here before timing anything), so the two
//! `engine-events-per-sec` lines measure pure engine cost: the shards=1
//! line tracks the single-thread reference, the shards=4 line tracks
//! sharding overhead (window barriers, mailbox merges, lineage-stamp
//! comparisons) plus whatever physical parallelism the runner offers.
//! CI's bench-smoke gate parses both lines against the floors in
//! `crates/bench/engine-floor.txt`; the shards=4 floor is set low
//! enough to hold even on a single-core runner, where the sharded
//! engine pays its synchronization overhead with no cores to win back.

use criterion::{criterion_group, criterion_main, Criterion};
use mgpu_system::runner::configs;
use mgpu_system::Simulation;
use mgpu_types::{SystemConfig, TopologyKind};
use mgpu_workloads::Benchmark;
use std::time::Instant;

/// The benchmark cell: 64 GPUs, two-level radix-4 switch, full
/// Dynamic+Batching scheme.
fn cell() -> SystemConfig {
    let mut base = SystemConfig::paper_4gpu();
    base.gpu_count = 64;
    let base = base.with_topology(TopologyKind::Switch { radix: 4 });
    configs::batching(&base, 4)
}

/// Remote requests per GPU — scaled like the topology scale-out sweep
/// so one run stays in the low milliseconds.
const REQUESTS: usize = 25;

fn run(shards: u16) -> mgpu_system::RunReport {
    Simulation::new(cell(), Benchmark::MatrixTranspose, 42)
        .with_shards(shards)
        .run_for_requests(REQUESTS)
}

fn bench_engine_sharded(c: &mut Criterion) {
    // The bit-for-bit contract, checked before any timing: a floor gate
    // on a diverging engine would be measuring the wrong thing.
    let reference = format!("{:?}", run(1));
    assert_eq!(
        reference,
        format!("{:?}", run(4)),
        "sharded engine diverged from the single-thread engine"
    );

    let mut group = c.benchmark_group("engine-sharded");
    group.sample_size(10);
    for shards in [1u16, 4] {
        let label = format!("64gpu-switch-shards{shards}");
        // Timed pre-runs derive events/sec for the CI floor gate, best
        // of five (peak throughput is far more stable than any single
        // sample on a noisy runner — same protocol as `engine.rs`).
        let mut best = 0.0f64;
        let mut events = 0u64;
        for _ in 0..5 {
            let started = Instant::now();
            let report = run(shards);
            let seconds = started.elapsed().as_secs_f64();
            events = report.events_processed;
            best = best.max(report.events_processed as f64 / seconds.max(f64::EPSILON));
        }
        println!("engine-events-per-sec {label} {best:.0} ({events} events per run, best of 5)");
        group.bench_function(format!("cell-mt-{REQUESTS}req-{label}"), |b| {
            b.iter(|| run(shards));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_sharded);
criterion_main!(benches);
