//! Engine-throughput benchmarks: the discrete-event core in isolation and
//! full simulation cells.
//!
//! Two layers:
//!
//! * `engine-queue` — the calendar [`EventQueue`] against the
//!   [`HeapEventQueue`] oracle under the simulator's characteristic
//!   event-gap distribution (same-cycle reissues, link latencies, DRAM
//!   access, flush timeouts) at a sustained backlog, isolating the
//!   scheduler from the rest of the engine.
//! * `engine` — representative simulation cells (a fig25-style 4-GPU
//!   batching run and a topology-scaling-style 8-GPU ring run). Each cell
//!   reports wall-clock per run through criterion and prints an
//!   `engine-events-per-sec` line derived from the run's
//!   `events_processed` count; CI's bench-smoke gate parses that line and
//!   compares it against the checked-in floor in
//!   `crates/bench/engine-floor.txt`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mgpu_sim::events::{EventQueue, HeapEventQueue};
use mgpu_system::runner::configs;
use mgpu_system::Simulation;
use mgpu_types::{Cycle, SystemConfig, TopologyKind};
use mgpu_workloads::Benchmark;
use std::time::Instant;

/// Event gaps matching the simulator's real horizons: same-cycle
/// reissues, NIC/link service, DRAM access, flush timeouts, and the
/// occasional long repartition-interval hop.
const GAPS: [u64; 8] = [0, 2, 7, 40, 100, 161, 200, 1000];

/// Pending events held in flight during the queue churn benchmarks,
/// matching the order of magnitude a busy 8-GPU cell sustains.
const BACKLOG: usize = 512;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-queue");
    group.bench_function("calendar-pop-schedule", |b| {
        let mut q = EventQueue::new();
        for i in 0..BACKLOG {
            q.schedule(Cycle::new(GAPS[i % GAPS.len()]), i as u64);
        }
        let mut i = 0usize;
        b.iter(|| {
            let (now, payload) = q.pop().expect("backlog never drains");
            let gap = GAPS[i % GAPS.len()];
            i += 1;
            q.schedule(Cycle::new(now.as_u64() + gap), black_box(payload));
            payload
        });
    });
    group.bench_function("heap-pop-schedule", |b| {
        let mut q = HeapEventQueue::new();
        for i in 0..BACKLOG {
            q.schedule(Cycle::new(GAPS[i % GAPS.len()]), i as u64);
        }
        let mut i = 0usize;
        b.iter(|| {
            let (now, payload) = q.pop().expect("backlog never drains");
            let gap = GAPS[i % GAPS.len()];
            i += 1;
            q.schedule(Cycle::new(now.as_u64() + gap), black_box(payload));
            payload
        });
    });
    group.finish();
}

/// The cells the throughput gate tracks: the same shapes fig25 and the
/// topology-scaling sweep lean on hardest.
fn cells() -> Vec<(&'static str, SystemConfig)> {
    let base4 = SystemConfig::paper_4gpu();
    let base8 = SystemConfig::paper_8gpu().with_topology(TopologyKind::Ring);
    vec![
        ("4gpu-batching", configs::batching(&base4, 4)),
        ("8gpu-ring-batching", configs::batching(&base8, 4)),
    ]
}

fn bench_engine_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for (label, cfg) in cells() {
        // Timed pre-runs derive events/sec for the CI floor gate. Best of
        // five: the floor compares against peak engine throughput, which
        // is far more stable than any single ~millisecond sample on a
        // noisy runner. The criterion loop below then tracks wall-clock.
        let mut best = 0.0f64;
        let mut events = 0u64;
        for _ in 0..5 {
            let sim = Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42);
            let started = Instant::now();
            let report = sim.run_for_requests(200);
            let seconds = started.elapsed().as_secs_f64();
            events = report.events_processed;
            best = best.max(report.events_processed as f64 / seconds.max(f64::EPSILON));
        }
        println!("engine-events-per-sec {label} {best:.0} ({events} events per run, best of 5)");
        group.bench_function(format!("cell-mt-200req-{label}"), |b| {
            b.iter(|| {
                Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42).run_for_requests(200)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_engine_cells);
criterion_main!(benches);
