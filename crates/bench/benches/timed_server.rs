//! Timed-server flow-substrate benchmarks: the credit-gated service
//! primitive in isolation and a full simulation cell running with finite
//! VC credits.
//!
//! Two layers, mirroring `engine.rs`:
//!
//! * `timed-server` — grant/reject/reclaim churn on a single
//!   [`TimedServer`] under the retry protocol (every `Busy` retried at
//!   its named cycle), isolating the credit bookkeeping the fabric,
//!   pacing, and NIC layers all sit on.
//! * the credited cell — a 4-GPU batching run with finite data and ctrl
//!   VC credits, exercising the typed-reject path end to end. Both print
//!   `engine-events-per-sec` lines that CI's bench-smoke gate compares
//!   against the floors in `crates/bench/engine-floor.txt`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mgpu_sim::link::TrafficClass;
use mgpu_sim::{TimedServer, Vc};
use mgpu_system::runner::configs;
use mgpu_system::Simulation;
use mgpu_types::{ByteSize, Cycle, Duration, SystemConfig};
use mgpu_workloads::Benchmark;
use std::time::Instant;

/// Serve attempts per timed pre-run sample of the churn loop.
const CHURN_OPS: u64 = 1_000_000;

/// One pass of the churn loop: a serve attempt that retries once at the
/// named cycle when rejected — the exact protocol every re-hosted layer
/// follows. Returns the completion cycle to keep the loop data-dependent.
fn churn_step(srv: &mut TimedServer, now: Cycle, bytes: u64) -> Cycle {
    let parts = [(ByteSize::new(bytes), TrafficClass::Data)];
    match srv.serve_parts(Vc::Data, now, &parts) {
        Ok(t) => t.done,
        Err(busy) => {
            srv.serve_parts(Vc::Data, busy.retry_at, &parts)
                .expect("retry at the named cycle finds a credit")
                .done
        }
    }
}

fn bench_timed_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("timed-server");

    // Timed pre-run for the CI floor gate: ops/sec over a mixed
    // grant/reject stream on a server that stays at its credit limit, so
    // roughly half the attempts take the reject-and-retry path. Best of
    // five, as in engine.rs.
    let mut best = 0.0f64;
    for _ in 0..5 {
        let mut srv = TimedServer::new(50, Duration::cycles(100), Some(4), None);
        let started = Instant::now();
        let mut now = Cycle::ZERO;
        for i in 0..CHURN_OPS {
            now = churn_step(&mut srv, now, 64 + (i % 7) * 8).max(now);
        }
        let seconds = started.elapsed().as_secs_f64();
        black_box(srv.grants(Vc::Data));
        best = best.max(CHURN_OPS as f64 / seconds.max(f64::EPSILON));
    }
    println!("engine-events-per-sec timed-server-churn {best:.0} ({CHURN_OPS} serve attempts per run, best of 5)");

    group.bench_function("grant-reject-churn", |b| {
        let mut srv = TimedServer::new(50, Duration::cycles(100), Some(4), None);
        let mut now = Cycle::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            now = churn_step(&mut srv, now, 64 + (i % 7) * 8).max(now);
            now
        });
    });
    group.finish();
}

/// A paper-shape cell with finite VC credits on every port, so block
/// egress takes the typed-reject retry path instead of the unbounded
/// fast path the golden matrix pins.
fn credited_cell() -> SystemConfig {
    let base = SystemConfig::paper_4gpu();
    let mut cfg = configs::batching(&base, 4);
    cfg.flow.data_vc_credits = Some(8);
    cfg.flow.ctrl_vc_credits = Some(4);
    cfg
}

fn bench_credited_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("timed-server-cell");
    group.sample_size(10);
    let cfg = credited_cell();

    let mut best = 0.0f64;
    let mut events = 0u64;
    for _ in 0..5 {
        let sim = Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42);
        let started = Instant::now();
        let report = sim.run_for_requests(200);
        let seconds = started.elapsed().as_secs_f64();
        events = report.events_processed;
        best = best.max(report.events_processed as f64 / seconds.max(f64::EPSILON));
    }
    println!(
        "engine-events-per-sec 4gpu-batching-credited {best:.0} ({events} events per run, best of 5)"
    );

    group.bench_function("cell-mt-200req-4gpu-batching-credited", |b| {
        b.iter(|| {
            Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42).run_for_requests(200)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_timed_server, bench_credited_cell);
criterion_main!(benches);
