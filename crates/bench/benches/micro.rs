//! Microbenchmarks of the core primitives behind the simulation: the
//! from-scratch crypto, pad windows, the EWMA allocator, batching
//! bookkeeping, and a short end-to-end simulation run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mgpu_crypto::ctr::CtrKeystream;
use mgpu_crypto::engine::AesEngine;
use mgpu_crypto::ghash::{Gf128, Ghash, GhashKey};
use mgpu_crypto::{Aes128, AesGcm, OtpPad, PadSeed};
use mgpu_secure::batching::SenderBatcher;
use mgpu_secure::ewma::EwmaAllocator;
use mgpu_secure::otp::PadWindow;
use mgpu_system::runner::configs;
use mgpu_system::Simulation;
use mgpu_types::{Cycle, Duration, NodeId, SystemConfig};
use mgpu_workloads::Benchmark;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let aes = Aes128::new(&[7u8; 16]);
    group.bench_function("aes128-block", |b| {
        b.iter(|| aes.encrypt_block(black_box([0x5Au8; 16])));
    });
    let gcm = AesGcm::new(&[7u8; 16]);
    let cacheline = [0xC3u8; 64];
    group.bench_function("gcm-seal-64B", |b| {
        b.iter(|| gcm.seal(black_box(&[1u8; 12]), b"hdr", black_box(&cacheline)));
    });
    let sealed = gcm.seal(&[1u8; 12], b"hdr", &cacheline);
    group.bench_function("gcm-open-64B", |b| {
        b.iter(|| {
            gcm.open(black_box(&[1u8; 12]), b"hdr", black_box(&sealed))
                .unwrap()
        });
    });
    // Pad generation is the hot path of the OTP schemes: one cacheline pad
    // (4 AES blocks) per remote write, generated ahead of the data.
    let ks = CtrKeystream::new(&[7u8; 16]);
    group.bench_function("pad-generate-64B", |b| {
        let mut ctr = 0u64;
        b.iter(|| {
            ctr += 1;
            OtpPad::generate(&ks, PadSeed::new(1, 2, black_box(ctr)))
        });
    });
    let mut blocks = [[0u8; 16]; 64];
    group.bench_function("pad-keystream-1KiB-bulk", |b| {
        b.iter(|| {
            ks.keystream_blocks(PadSeed::new(1, 2, black_box(9)), 0, &mut blocks);
            blocks[63]
        });
    });
    // GHASH throughput: table-driven multiply alone, and absorbing 1 KiB
    // through the streaming hasher (64 block multiplies).
    let key = GhashKey::new([0xB8u8; 16]);
    let h = Gf128::from_bytes([0xB8u8; 16]);
    let x = Gf128::from_bytes([0x5Au8; 16]);
    group.bench_function("ghash-table-mul", |b| {
        b.iter(|| key.mul(black_box(x)));
    });
    // The bit-by-bit reference multiply, kept as the correctness oracle —
    // benchmarked here so the table speedup stays visible.
    group.bench_function("ghash-bitwise-mul", |b| {
        b.iter(|| black_box(x).mul(h));
    });
    let kilobyte = [0xE7u8; 1024];
    group.bench_function("ghash-absorb-1KiB", |b| {
        b.iter(|| {
            let mut g = Ghash::with_key(key.clone());
            g.update(black_box(&kilobyte));
            g.finalize(0, 1024)
        });
    });
    group.finish();
}

fn bench_otp(c: &mut Criterion) {
    let mut group = c.benchmark_group("otp");
    group.bench_function("pad-window-use", |b| {
        let mut engine = AesEngine::new(Duration::cycles(40));
        let mut window = PadWindow::new(4, Cycle::ZERO, &mut engine);
        let mut now = Cycle::ZERO;
        b.iter(|| {
            now += Duration::cycles(7);
            window.use_pad(now, &mut engine)
        });
    });
    group.bench_function("ewma-end-interval", |b| {
        let peers: Vec<NodeId> = NodeId::gpu(1).peers(16).collect();
        let mut mon = EwmaAllocator::new(&peers, 0.9, 0.5).with_floor(2);
        for (i, &p) in peers.iter().enumerate() {
            for _ in 0..(i * 3) {
                mon.observe_send(p);
            }
        }
        b.iter(|| mon.end_interval(black_box(128)));
    });
    group.bench_function("batcher-add-block", |b| {
        let mut batcher = SenderBatcher::new(16, Duration::cycles(160));
        let mut now = Cycle::ZERO;
        b.iter(|| {
            now += Duration::cycles(2);
            batcher.add_block(now, NodeId::gpu(2), [0; 8])
        });
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let base = SystemConfig::paper_4gpu();
    for (label, cfg) in [
        ("unsecure", {
            let mut c = base.clone();
            c.security.scheme = mgpu_types::OtpSchemeKind::Unsecure;
            c
        }),
        ("private-4x", configs::private(&base, 4)),
        ("batching-4x", configs::batching(&base, 4)),
    ] {
        group.bench_function(format!("mt-200req-{label}"), |b| {
            b.iter(|| {
                Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42).run_for_requests(200)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crypto, bench_otp, bench_simulation);
criterion_main!(benches);
