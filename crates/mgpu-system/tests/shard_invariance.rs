//! Shard invariance: for *any* topology, scheme, scale, and seed, the
//! sharded engine must produce a [`RunReport`] identical to the
//! single-thread engine's — `events_processed` and the observability
//! timeline included. The golden-parity test pins the paper's 12-cell
//! matrix; this property test sweeps the configuration space around it.

use mgpu_system::runner::configs;
use mgpu_system::simulation::Simulation;
use mgpu_types::{ObservabilityConfig, SystemConfig, TopologyKind};
use mgpu_workloads::Benchmark;
use proptest::prelude::*;

fn base_config(gpus: u8, topo: u8) -> SystemConfig {
    let base = match gpus {
        0 => SystemConfig::paper_4gpu(),
        1 => SystemConfig::paper_8gpu(),
        _ => SystemConfig::paper_16gpu(),
    };
    base.with_topology(match topo {
        0 => TopologyKind::FullyConnected,
        1 => TopologyKind::Ring,
        _ => TopologyKind::Switch { radix: 4 },
    })
}

fn scheme_config(base: &SystemConfig, scheme: u8) -> SystemConfig {
    match scheme {
        0 => configs::private(base, 4),
        1 => configs::shared(base, 4),
        2 => configs::cached(base, 4),
        3 => configs::dynamic(base, 4),
        _ => configs::batching(base, 4),
    }
}

proptest! {
    #[test]
    fn any_cell_is_shard_invariant(
        gpus in 0u8..3,
        topo in 0u8..3,
        scheme in 0u8..5,
        observability in any::<bool>(),
        seed in 0u64..1000,
        per_gpu in 10usize..30,
        spmv in any::<bool>(),
    ) {
        let bench = if spmv { Benchmark::Spmv } else { Benchmark::MatrixTranspose };
        let mut base = base_config(gpus, topo);
        if observability {
            base.observability = ObservabilityConfig::enabled();
        }
        let cfg = scheme_config(&base, scheme);
        let reference = Simulation::new(cfg.clone(), bench, seed)
            .with_shards(1)
            .run_for_requests(per_gpu);
        let reference = format!("{reference:?}");
        for shards in [2u16, 4] {
            let sharded = Simulation::new(cfg.clone(), bench, seed)
                .with_shards(shards)
                .run_for_requests(per_gpu);
            let sharded = format!("{sharded:?}");
            prop_assert!(
                reference == sharded,
                "gpus={} topo={} scheme={} obs={} seed={} shards={}:\n-{}\n+{}",
                gpus, topo, scheme, observability, seed, shards, reference, sharded
            );
        }
    }
}
