//! Traffic-shape defense properties.
//!
//! The constant-rate defense's whole claim is *observational identity*:
//! with the envelope bounding the real control rate and the sampling
//! interval a whole multiple of the shaping period, a co-located
//! observer's per-port control-channel measurements (byte deltas and
//! arbitration-grant deltas at every boundary) must be identical
//! whichever protected scheme is running. The leakage experiment checks
//! this end to end through a classifier; this test checks the raw
//! sequences, per seed, across the scheme pairings the classifier is
//! asked to separate.

use mgpu_system::runner::configs;
use mgpu_system::Simulation;
use mgpu_types::{DefenseConfig, Duration, ObservabilityConfig, SystemConfig};
use mgpu_workloads::Benchmark;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Shaping period == sampling interval: every observation boundary lands
/// on a whole number of periods, the identity precondition.
const PERIOD: u64 = 40;

/// Generous envelope (mirrors the leakage experiment's choice): the
/// identity only holds while the true per-pair control rate stays under
/// the envelope on both arms — bytes and grants.
const ENVELOPE: (u32, u32) = (512, 32);

fn shaped_defense() -> DefenseConfig {
    DefenseConfig {
        shape_bytes: ENVELOPE.0,
        shape_grants: ENVELOPE.1,
        shape_period: Duration::cycles(PERIOD),
        ..DefenseConfig::constant_rate()
    }
}

fn scheme_config(base: &SystemConfig, scheme: u8) -> SystemConfig {
    match scheme {
        0 => configs::private(base, 4),
        1 => configs::dynamic(base, 4),
        _ => configs::batching(base, 4),
    }
}

/// Per-port control-channel observation sequence: at each sampling
/// boundary, the ctrl byte delta and cumulative grant count — exactly
/// what [`mgpu_system::PassiveObserver`] reads.
fn ctrl_observations(
    scheme: u8,
    seed: u64,
    per_gpu: usize,
) -> BTreeMap<String, Vec<(u64, u64, u64)>> {
    let mut base = SystemConfig::paper_4gpu();
    base.observability = ObservabilityConfig::enabled();
    base.security.dynamic.interval = Duration::cycles(PERIOD);
    let mut cfg = scheme_config(&base, scheme);
    cfg.security.defense = shaped_defense();
    let report = Simulation::new(cfg, Benchmark::MatrixTranspose, seed).run_for_requests(per_gpu);
    let timeline = report
        .timeline
        .expect("observability-enabled run attaches a timeline");
    let mut by_port: BTreeMap<String, Vec<(u64, u64, u64)>> = BTreeMap::new();
    for f in &timeline.fabric {
        if f.port.starts_with("gpu") {
            by_port.entry(f.port.clone()).or_default().push((
                f.cycle.as_u64(),
                f.ctrl_bytes_delta,
                f.ctrl_grants,
            ));
        }
    }
    by_port
}

proptest! {
    /// Constant-rate shaping on ⇒ per-port ctrl-VC observations are
    /// identical across Private/Dynamic/Batching for the same seed, over
    /// the window where both runs are still active. (Total run length
    /// itself is not hidden — padding stops when the simulation ends —
    /// so the comparison covers the shared prefix of boundaries.)
    #[test]
    fn constant_rate_equalizes_ctrl_observations(
        seed in 0u64..500,
        per_gpu in 30usize..60,
    ) {
        let runs: Vec<_> = (0u8..3).map(|s| ctrl_observations(s, seed, per_gpu)).collect();
        let reference = &runs[0];
        for (scheme, run) in runs.iter().enumerate().skip(1) {
            for (port, ref_seq) in reference {
                let seq = run
                    .get(port)
                    .unwrap_or_else(|| panic!("scheme {scheme} missing port {port}"));
                let shared = ref_seq.len().min(seq.len());
                prop_assert!(shared > 0, "no shared observation window on {port}");
                prop_assert!(
                    ref_seq[..shared] == seq[..shared],
                    "scheme {} diverges from scheme 0 on {} under shaping: \
                     {:?} vs {:?}",
                    scheme,
                    port,
                    &ref_seq[..shared],
                    &seq[..shared]
                );
            }
        }
    }
}

/// The shaped channel must also be identical whether the engine runs
/// single-threaded or sharded — the constant-rate rule forces the
/// effective shard count to 1 (the chaff quota needs the global pair
/// view), so explicit shard requests must change nothing.
#[test]
fn shaping_is_shard_invariant() {
    let mut base = SystemConfig::paper_4gpu();
    base.observability = ObservabilityConfig::enabled();
    base.security.dynamic.interval = Duration::cycles(PERIOD);
    let mut cfg = configs::batching(&base, 4);
    cfg.security.defense = shaped_defense();
    let reference = format!(
        "{:?}",
        Simulation::new(cfg.clone(), Benchmark::Spmv, 7)
            .with_shards(1)
            .run_for_requests(40)
    );
    for shards in [2u16, 4] {
        let sharded = format!(
            "{:?}",
            Simulation::new(cfg.clone(), Benchmark::Spmv, 7)
                .with_shards(shards)
                .run_for_requests(40)
        );
        assert_eq!(reference, sharded, "shaped run diverges at shards={shards}");
    }
}
