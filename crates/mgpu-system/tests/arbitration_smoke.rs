//! Arbitration smoke matrix: one switch cell under both arbitration
//! policies.
//!
//! * The default policy ([`ArbitrationKind::RoundRobin`]) must reproduce
//!   the pre-refactor golden digest of this cell bit for bit — the
//!   pluggable-arbitration seam is not allowed to perturb the service
//!   order the bespoke FIFO code produced. The constants below were
//!   captured from the tree immediately before arbitration became
//!   configurable; if this test fails, fix the code, do not re-capture
//!   them.
//! * [`ArbitrationKind::FixedPriority`] legitimately reorders parked
//!   block deferrals (oldest request index first), so it has no pinned
//!   digest — instead it must be deterministic (two runs, identical
//!   `Debug` rendering) and complete the same workload.

use mgpu_system::runner::configs;
use mgpu_system::Simulation;
use mgpu_types::{ArbitrationKind, SystemConfig, TopologyKind};
use mgpu_workloads::Benchmark;

/// The smoke cell: the paper-parameter 8-GPU system on a radix-4 switch
/// fabric under the batching scheme — the shape that exercises switch
/// egress arbitration and ACK-window deferral hardest.
fn switch_cell(arbitration: ArbitrationKind) -> SystemConfig {
    let mut base = SystemConfig::paper_8gpu().with_topology(TopologyKind::Switch { radix: 4 });
    base.flow.arbitration = arbitration;
    configs::batching(&base, 4)
}

#[test]
fn round_robin_default_reproduces_pre_refactor_golden_digest() {
    let cfg = switch_cell(ArbitrationKind::default());
    assert_eq!(cfg.flow.arbitration, ArbitrationKind::RoundRobin);
    let report = Simulation::new(cfg, Benchmark::MatrixTranspose, 42).run_for_requests(150);
    assert_eq!(report.total_cycles.as_u64(), 4260, "cycle drift");
    assert_eq!(report.traffic.total().as_u64(), 378_029, "wire-byte drift");
    assert_eq!(report.blocks, 1326, "block-count drift");
    assert_eq!(report.acks_sent, 103, "ACK-count drift");
}

#[test]
fn fixed_priority_cell_is_deterministic_and_completes() {
    let run = || {
        Simulation::new(
            switch_cell(ArbitrationKind::FixedPriority),
            Benchmark::MatrixTranspose,
            42,
        )
        .run_for_requests(150)
    };
    let a = run();
    let b = run();
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "fixed-priority arbitration must be deterministic"
    );
    assert_eq!(a.blocks, 1326, "same workload, same block count");
    assert!(a.total_cycles.as_u64() > 0);
}
