//! 64-GPU sharded smoke: one scale-out cell, shards=4 vs shards=1,
//! bit-for-bit.
//!
//! The golden-parity matrix and the shard-invariance property test
//! cover the paper scales (≤ 16 GPUs); this is the cheap CI check that
//! the sharded engine also holds its contract at the fabric sizes the
//! `topology_scaling` scale-out sweep and the `shard_scaling` headline
//! cell actually run — with observability enabled, so the per-shard
//! collector merge path is exercised too.

use mgpu_system::runner::configs;
use mgpu_system::Simulation;
use mgpu_types::{ObservabilityConfig, SystemConfig, TopologyKind};
use mgpu_workloads::Benchmark;

fn cell(observability: bool) -> SystemConfig {
    let mut base = SystemConfig::paper_4gpu();
    base.gpu_count = 64;
    if observability {
        base.observability = ObservabilityConfig::enabled();
    }
    let base = base.with_topology(TopologyKind::Switch { radix: 4 });
    configs::batching(&base, 4)
}

#[test]
fn switch64_shards4_matches_single_thread() {
    for observability in [false, true] {
        let cfg = cell(observability);
        let reference = Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42)
            .with_shards(1)
            .run_for_requests(20);
        let sharded = Simulation::new(cfg, Benchmark::MatrixTranspose, 42)
            .with_shards(4)
            .run_for_requests(20);
        assert!(
            reference.events_processed > 0,
            "smoke cell must do real work"
        );
        assert_eq!(
            format!("{reference:?}"),
            format!("{sharded:?}"),
            "obs={observability}: 64-GPU sharded run diverged from the single-thread engine"
        );
    }
}
