//! Golden parity: the routed-fabric refactor must reproduce the
//! pre-refactor timings bit for bit under `TopologyKind::FullyConnected`.
//!
//! The constants below were captured from the monolithic (pre-fabric)
//! timing loop: the seeded `compare_schemes` matrix over the paper's
//! 4-GPU system, 200 requests per GPU, seed 42. The event queue breaks
//! time ties by insertion order, so any change to the call sequence of
//! the fully-connected hot path shows up here as a cycle or byte drift.
//! If this test fails, the refactor changed simulated behaviour — fix
//! the code, do not re-capture the constants.

use mgpu_system::runner::{compare_schemes, configs};
use mgpu_system::Simulation;
use mgpu_types::{Duration, ObservabilityConfig, SystemConfig, TopologyKind};
use mgpu_workloads::{ArrivalProcess, Benchmark, ServingModel};

/// (scheme label, benchmark, total cycles, total wire bytes).
const GOLDEN: &[(&str, Benchmark, u64, u64)] = &[
    ("private-4x", Benchmark::MatrixTranspose, 5704, 110_030),
    ("private-16x", Benchmark::MatrixTranspose, 3412, 110_030),
    ("shared-4x", Benchmark::MatrixTranspose, 14_504, 110_030),
    ("cached-4x", Benchmark::MatrixTranspose, 5145, 110_030),
    ("dynamic-4x", Benchmark::MatrixTranspose, 5210, 110_030),
    ("batching-4x", Benchmark::MatrixTranspose, 4265, 89_531),
    ("private-4x", Benchmark::Spmv, 3844, 96_800),
    ("private-16x", Benchmark::Spmv, 2440, 96_800),
    ("shared-4x", Benchmark::Spmv, 10_299, 96_800),
    ("cached-4x", Benchmark::Spmv, 3456, 96_800),
    ("dynamic-4x", Benchmark::Spmv, 3582, 96_800),
    ("batching-4x", Benchmark::Spmv, 3676, 79_275),
];

fn scheme_matrix(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    vec![
        ("private-4x".to_string(), configs::private(base, 4)),
        ("private-16x".to_string(), configs::private(base, 16)),
        ("shared-4x".to_string(), configs::shared(base, 4)),
        ("cached-4x".to_string(), configs::cached(base, 4)),
        ("dynamic-4x".to_string(), configs::dynamic(base, 4)),
        ("batching-4x".to_string(), configs::batching(base, 4)),
    ]
}

fn assert_matches_golden(base: &SystemConfig, context: &str) {
    let cfgs = scheme_matrix(base);
    for bench in [Benchmark::MatrixTranspose, Benchmark::Spmv] {
        for r in compare_schemes(bench, &cfgs, 200, 42) {
            let (_, _, cycles, bytes) = *GOLDEN
                .iter()
                .find(|(label, b, _, _)| *label == r.label && *b == bench)
                .unwrap_or_else(|| panic!("no golden entry for {} / {bench:?}", r.label));
            assert_eq!(
                r.report.total_cycles.as_u64(),
                cycles,
                "{context}: {} / {bench:?}: cycle drift",
                r.label
            );
            assert_eq!(
                r.report.traffic.total().as_u64(),
                bytes,
                "{context}: {} / {bench:?}: wire-byte drift",
                r.label
            );
        }
    }
}

#[test]
fn fully_connected_reproduces_pre_fabric_timings_bit_for_bit() {
    let base = SystemConfig::paper_4gpu();
    assert_eq!(base.topology, TopologyKind::FullyConnected);
    assert!(!base.observability.enabled, "golden matrix runs unobserved");
    assert_matches_golden(&base, "observability off");
}

/// Observability must be a pure observer: enabling it replays the exact
/// golden matrix — same cycles, same wire bytes — while actually
/// producing timelines. (`pads_issued` is intentionally excluded: eager
/// boundary sampling may issue pads for trailing boundaries an idle
/// node's lazy path never reaches; see `mgpu_system::timeseries`.)
#[test]
fn observability_enabled_changes_no_timing() {
    let mut base = SystemConfig::paper_4gpu();
    base.observability = ObservabilityConfig::enabled();
    assert_matches_golden(&base, "observability on");

    // And the observed runs really did collect interval series.
    let cfgs = scheme_matrix(&base);
    let results = compare_schemes(Benchmark::MatrixTranspose, &cfgs, 200, 42);
    let dynamic = results
        .iter()
        .find(|r| r.label == "dynamic-4x")
        .expect("dynamic cell present");
    let timeline = dynamic
        .report
        .timeline
        .as_ref()
        .expect("observed run attaches a timeline");
    assert!(
        !timeline.samples.is_empty(),
        "dynamic run spans interval boundaries"
    );
    assert!(
        timeline.samples.iter().any(|s| s.rebalances > 0),
        "dynamic scheme repartitioned during the run"
    );
    assert!(!timeline.fabric.is_empty());
    assert!(timeline.scope_counts.contains_key("BlockDone"));

    // The flow-substrate counters ride along in the same samples: every
    // port that moved bytes accumulated arbitration grants, and the ACK
    // gates handed out credits. Occupancy is a boundary snapshot, so it
    // may legitimately be zero when a boundary lands in an idle gap —
    // only its consistency (covered by the sharded Debug parity below)
    // is asserted, not its value.
    assert!(
        timeline
            .fabric
            .iter()
            .all(|f| f.bytes_delta == 0 || f.grants > 0),
        "ports that carried bytes must have recorded grants"
    );
    assert!(
        timeline.fabric.iter().any(|f| f.grants > 0),
        "at least one port arbitrated traffic"
    );
    assert!(
        timeline.samples.iter().any(|s| s.ack_window_grants > 0),
        "ACK gates issued credits during the run"
    );
}

/// The PR 7 serving path runs open-loop (absolute arrival times) with
/// per-request deadlines — a different issue cadence from the closed-loop
/// golden matrix, so it gets its own pinned cell: a seeded Poisson
/// serving trace under dynamic+batching with observability on, bit-for-bit
/// at shards {1, 2, 4}. The constants were captured the same way as the
/// closed-loop matrix; if this test fails, fix the code, do not
/// re-capture them.
#[test]
fn open_loop_serving_cell_stays_bit_for_bit() {
    const SERVING_CYCLES: u64 = 3_087;
    const SERVING_BYTES: u64 = 82_225;

    let mut base = SystemConfig::paper_4gpu();
    base.observability = ObservabilityConfig::enabled();
    let cfg = configs::batching(&base, 4);
    let trace = ServingModel::new(4, 42, ArrivalProcess::poisson(12.0))
        .with_zipf(0.9)
        .with_deadline(Duration::cycles(1_200))
        .generate_all(200);

    let reference = Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42)
        .with_open_loop()
        .with_shards(1)
        .run_trace(trace.clone());
    assert_eq!(
        reference.total_cycles.as_u64(),
        SERVING_CYCLES,
        "open-loop serving cell: cycle drift"
    );
    assert_eq!(
        reference.traffic.total().as_u64(),
        SERVING_BYTES,
        "open-loop serving cell: wire-byte drift"
    );
    assert!(
        reference.latency.with_deadline > 0,
        "serving cell records SLO outcomes"
    );
    assert!(
        reference
            .timeline
            .as_ref()
            .is_some_and(|t| !t.samples.is_empty()),
        "observed serving run attaches interval samples"
    );

    for shards in [2u16, 4] {
        let sharded = Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42)
            .with_open_loop()
            .with_shards(shards)
            .run_trace(trace.clone());
        assert_eq!(
            format!("{reference:?}"),
            format!("{sharded:?}"),
            "open-loop serving cell diverges at shards={shards}"
        );
    }
}

/// Crypto-backend parity: the entire 12-cell golden matrix must be
/// bit-for-bit identical whether the functional crypto runs on the
/// software T-table/Shoup paths or the hardware AES-NI/PCLMULQDQ paths.
/// The backends are property-tested equal primitive-by-primitive in
/// `mgpu-crypto`; this asserts the end-to-end claim at the system level —
/// every pad, GCM seal, and batch-trailer MAC included. On hosts without
/// the hardware features both halves run soft and the test degenerates to
/// the plain golden check.
#[test]
fn crypto_backends_reproduce_identical_golden_matrix() {
    use mgpu_crypto::backend::{set_default_backend, Backend};

    let base = SystemConfig::paper_4gpu();
    let cfgs = scheme_matrix(&base);
    let auto = if Backend::HwAesClmul.is_available() {
        Backend::HwAesClmul
    } else {
        Backend::Soft
    };
    for bench in [Benchmark::MatrixTranspose, Benchmark::Spmv] {
        set_default_backend(Backend::Soft);
        let soft = compare_schemes(bench, &cfgs, 200, 42);
        set_default_backend(auto);
        let hw = compare_schemes(bench, &cfgs, 200, 42);
        for (s, h) in soft.iter().zip(hw.iter()) {
            assert_eq!(
                format!("{:?}", s.report),
                format!("{:?}", h.report),
                "{} / {bench:?}: soft vs {} backend digest drift",
                s.label,
                auto.name(),
            );
        }
    }
    // Leave the process default as detection would have chosen it.
    set_default_backend(auto);
}

/// The sharded engine is not allowed to be "close": every cell of the
/// golden matrix must produce a [`RunReport`] whose entire `Debug`
/// rendering — cycles, bytes, OTP stats, latencies, event counts, and
/// The traffic-shape defenses ship default-off, and off must mean *off*:
/// a config that spells out the default [`DefenseConfig`] (rather than
/// omitting it) replays the golden 12-cell matrix bit for bit at every
/// shard count. Guards against the chaff scheduling, the jittered
/// deadline path, or the defense-driven shard clamp leaking into
/// undefended runs.
#[test]
fn defenses_off_reproduce_golden_matrix_at_all_shard_counts() {
    use mgpu_system::runner::compare_schemes_with;
    use mgpu_types::DefenseConfig;

    let mut base = SystemConfig::paper_4gpu();
    base.security.defense = DefenseConfig::default();
    assert!(!base.security.defense.any_enabled());
    // shards=1: against the golden constants themselves.
    assert_matches_golden(&base, "defenses off");
    // shards {2, 4}: full-report parity with the single-thread engine.
    let cfgs = scheme_matrix(&base);
    for bench in [Benchmark::MatrixTranspose, Benchmark::Spmv] {
        let reference = compare_schemes_with(bench, &cfgs, 200, 42, 1);
        for shards in [2u16, 4] {
            let sharded = compare_schemes_with(bench, &cfgs, 200, 42, shards);
            for (single, multi) in reference.iter().zip(sharded.iter()) {
                assert_eq!(
                    format!("{:?}", single.report),
                    format!("{:?}", multi.report),
                    "defenses-off {} / {bench:?} diverges at shards={shards}",
                    single.label,
                );
            }
        }
    }
}

/// (when enabled) the full observability timeline — is identical to the
/// single-thread engine's, for every shard count and both observability
/// modes. See DESIGN.md §11 for why this holds by construction.
#[test]
fn sharded_engine_matches_single_thread_bit_for_bit() {
    use mgpu_system::runner::compare_schemes_with;
    for observability in [false, true] {
        let mut base = SystemConfig::paper_4gpu();
        if observability {
            base.observability = ObservabilityConfig::enabled();
        }
        let cfgs = scheme_matrix(&base);
        for bench in [Benchmark::MatrixTranspose, Benchmark::Spmv] {
            let reference = compare_schemes_with(bench, &cfgs, 200, 42, 1);
            for shards in [2u16, 4] {
                let sharded = compare_schemes_with(bench, &cfgs, 200, 42, shards);
                for (single, multi) in reference.iter().zip(sharded.iter()) {
                    assert_eq!(
                        format!("{:?}", single.report),
                        format!("{:?}", multi.report),
                        "{} / {bench:?} diverges at shards={shards}, \
                         observability={observability}",
                        single.label,
                    );
                }
            }
        }
    }
}
