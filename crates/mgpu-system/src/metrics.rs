//! Run metrics collected by the simulation.

use crate::timeseries::Timeline;
use mgpu_secure::adversary::SecurityEventLog;
use mgpu_secure::OtpStats;
use mgpu_sim::link::TrafficTotals;
use mgpu_types::{Duration, OtpSchemeKind};
use mgpu_workloads::Benchmark;

/// Everything one simulation run measures.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The modeled benchmark.
    pub benchmark: Benchmark,
    /// OTP scheme in effect.
    pub scheme: OtpSchemeKind,
    /// Whether metadata batching was enabled.
    pub batching: bool,
    /// Execution time: the cycle at which the last request's data became
    /// usable.
    pub total_cycles: Duration,
    /// Remote requests completed.
    pub requests: u64,
    /// 64 B blocks transferred (page migrations count 64 each).
    pub blocks: u64,
    /// Per-class interconnect traffic across every link.
    pub traffic: TrafficTotals,
    /// Merged OTP hit/partial/miss statistics across all nodes.
    pub otp: OtpStats,
    /// ACK messages transmitted.
    pub acks_sent: u64,
    /// Total pad generations issued to the AES engines.
    pub pads_issued: u64,
    /// Mean blocks per closed batch (0 when batching is off).
    pub mean_batch_occupancy: f64,
    /// Sum of per-request latencies (completion - issue), for diagnostics.
    pub sum_request_latency: Duration,
    /// Issue time of the last request (workload span under closed-loop
    /// pacing).
    pub last_issue: Duration,
    /// Wire crossings tampered with by the adversary harness (0 when the
    /// adversary is disabled).
    pub tampered_crossings: u64,
    /// Security-event ledger from the adversary harness: injections,
    /// detections, misses, false positives, per-pair counts and
    /// time-to-detection. Empty when the adversary is disabled.
    pub security: SecurityEventLog,
    /// Interval-resolved observability series; `None` unless
    /// `config.observability.enabled` was set for the run.
    pub timeline: Option<Timeline>,
    /// Discrete events popped from the engine's queue over the run — the
    /// denominator-free measure of engine work, used to report throughput
    /// (events per wall-clock second) in benchmarks.
    pub events_processed: u64,
}

impl RunReport {
    /// Execution time normalized to a baseline run (the paper's
    /// "normalized execution time"; > 1 means slower than baseline).
    ///
    /// Returns `None` when the baseline took zero cycles (a degenerate
    /// zero-request workload) — previously this panicked, so an empty
    /// workload could never produce a comparison report.
    #[must_use]
    pub fn normalized_time(&self, baseline: &RunReport) -> Option<f64> {
        let base = baseline.total_cycles.as_u64();
        if base == 0 {
            return None;
        }
        Some(self.total_cycles.as_u64() as f64 / base as f64)
    }

    /// Total interconnect traffic normalized to a baseline run
    /// (the paper's Figs. 12/23).
    ///
    /// Returns `None` when the baseline moved zero bytes.
    #[must_use]
    pub fn traffic_ratio(&self, baseline: &RunReport) -> Option<f64> {
        let base = baseline.traffic.total().as_u64();
        if base == 0 {
            return None;
        }
        Some(self.traffic.total().as_u64() as f64 / base as f64)
    }

    /// Mean per-request latency in cycles.
    #[must_use]
    pub fn mean_request_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.sum_request_latency.as_u64() as f64 / self.requests as f64
        }
    }

    /// Fraction of this run's bytes that were security metadata.
    #[must_use]
    pub fn metadata_fraction(&self) -> f64 {
        let total = self.traffic.total().as_u64();
        if total == 0 {
            0.0
        } else {
            self.traffic.metadata().as_u64() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_sim::link::TrafficClass;
    use mgpu_types::ByteSize;

    fn report(cycles: u64, data: u64, meta: u64) -> RunReport {
        let mut traffic = TrafficTotals::default();
        traffic.add(TrafficClass::Data, ByteSize::new(data));
        traffic.add(TrafficClass::Mac, ByteSize::new(meta));
        RunReport {
            benchmark: Benchmark::Atax,
            scheme: OtpSchemeKind::Private,
            batching: false,
            total_cycles: Duration::cycles(cycles),
            requests: 10,
            blocks: 10,
            traffic,
            otp: OtpStats::default(),
            acks_sent: 10,
            pads_issued: 40,
            mean_batch_occupancy: 0.0,
            sum_request_latency: Duration::cycles(0),
            last_issue: Duration::cycles(0),
            tampered_crossings: 0,
            security: SecurityEventLog::default(),
            timeline: None,
            events_processed: 0,
        }
    }

    #[test]
    fn normalization() {
        let base = report(1000, 640, 0);
        let secure = report(1195, 640, 230);
        assert!((secure.normalized_time(&base).unwrap() - 1.195).abs() < 1e-12);
        assert!((secure.traffic_ratio(&base).unwrap() - 870.0 / 640.0).abs() < 1e-12);
    }

    #[test]
    fn metadata_fraction() {
        let r = report(100, 720, 280);
        assert!((r.metadata_fraction() - 0.28).abs() < 1e-12);
        let empty = report(100, 0, 0);
        assert_eq!(empty.metadata_fraction(), 0.0);
    }

    #[test]
    fn zero_baseline_yields_none() {
        let base = report(0, 640, 0);
        let secure = report(100, 640, 0);
        assert_eq!(secure.normalized_time(&base), None);
        let mut no_bytes = report(100, 0, 0);
        no_bytes.traffic = TrafficTotals::default();
        assert_eq!(secure.traffic_ratio(&no_bytes), None);
    }
}
