//! Run metrics collected by the simulation.

use crate::timeseries::Timeline;
use mgpu_secure::adversary::SecurityEventLog;
use mgpu_secure::OtpStats;
use mgpu_sim::link::TrafficTotals;
use mgpu_sim::stats::percentile_sorted;
use mgpu_types::{Cycle, Duration, OtpSchemeKind};
use mgpu_workloads::Benchmark;

/// Per-request latency distributions and SLO accounting for one run.
///
/// Each completed request contributes one sample to each vector; the
/// engine sorts the vectors ascending before publishing the report, so
/// two engines producing the same multiset of samples produce the same
/// `Debug` rendering (the sharded-parity tests rely on this). Samples are
/// in cycles. Latencies are measured from the request's *arrival*
/// (`available_at`) — under open-loop pacing this includes queueing delay
/// from stalled issue slots, which is exactly the serving-tail signal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyReport {
    /// Total latency: completion − arrival.
    pub total: Vec<f64>,
    /// First-byte latency: first usable block − arrival.
    pub first_byte: Vec<f64>,
    /// Service latency: completion − issue (excludes queueing delay).
    pub service: Vec<f64>,
    /// Requests that carried an SLO deadline.
    pub with_deadline: u64,
    /// Deadline-carrying requests that completed after their deadline.
    pub violations: u64,
}

impl LatencyReport {
    /// Records one completed request. Samples are appended unsorted;
    /// call [`LatencyReport::finish`] before publishing.
    pub fn record(
        &mut self,
        arrived: Cycle,
        issued: Cycle,
        first_byte: Cycle,
        done: Cycle,
        deadline: Option<Cycle>,
    ) {
        self.total
            .push(done.saturating_since(arrived).as_u64() as f64);
        self.first_byte
            .push(first_byte.saturating_since(arrived).as_u64() as f64);
        self.service
            .push(done.saturating_since(issued).as_u64() as f64);
        if let Some(d) = deadline {
            self.with_deadline += 1;
            if done > d {
                self.violations += 1;
            }
        }
    }

    /// Sorts the sample vectors into their canonical ascending order.
    pub fn finish(&mut self) {
        self.total.sort_by(f64::total_cmp);
        self.first_byte.sort_by(f64::total_cmp);
        self.service.sort_by(f64::total_cmp);
    }

    /// Merges another report into this one (sharded-coordinator fold);
    /// the result needs a final [`LatencyReport::finish`].
    pub fn merge(&mut self, other: &LatencyReport) {
        self.total.extend_from_slice(&other.total);
        self.first_byte.extend_from_slice(&other.first_byte);
        self.service.extend_from_slice(&other.service);
        self.with_deadline += other.with_deadline;
        self.violations += other.violations;
    }

    /// The `p`-th percentile (0–100) of total latency; `None` when no
    /// requests completed. The samples are sorted by
    /// [`LatencyReport::finish`], so this is O(1) per call.
    #[must_use]
    pub fn total_percentile(&self, p: f64) -> Option<f64> {
        percentile_sorted(&self.total, p)
    }

    /// The `p`-th percentile (0–100) of first-byte latency.
    #[must_use]
    pub fn first_byte_percentile(&self, p: f64) -> Option<f64> {
        percentile_sorted(&self.first_byte, p)
    }

    /// Mean total latency in cycles; zero when empty.
    #[must_use]
    pub fn mean_total(&self) -> f64 {
        if self.total.is_empty() {
            0.0
        } else {
            self.total.iter().sum::<f64>() / self.total.len() as f64
        }
    }

    /// Fraction of deadline-carrying requests that missed their deadline;
    /// zero when no request carried one.
    #[must_use]
    pub fn violation_rate(&self) -> f64 {
        if self.with_deadline == 0 {
            0.0
        } else {
            self.violations as f64 / self.with_deadline as f64
        }
    }
}

/// Everything one simulation run measures.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The modeled benchmark.
    pub benchmark: Benchmark,
    /// OTP scheme in effect.
    pub scheme: OtpSchemeKind,
    /// Whether metadata batching was enabled.
    pub batching: bool,
    /// Execution time: the cycle at which the last request's data became
    /// usable.
    pub total_cycles: Duration,
    /// Remote requests completed.
    pub requests: u64,
    /// 64 B blocks transferred (page migrations count 64 each).
    pub blocks: u64,
    /// Per-class interconnect traffic across every link.
    pub traffic: TrafficTotals,
    /// Merged OTP hit/partial/miss statistics across all nodes.
    pub otp: OtpStats,
    /// ACK messages transmitted.
    pub acks_sent: u64,
    /// Total pad generations issued to the AES engines.
    pub pads_issued: u64,
    /// Mean blocks per closed batch (0 when batching is off).
    pub mean_batch_occupancy: f64,
    /// Sum of per-request latencies (completion - issue), for diagnostics.
    pub sum_request_latency: Duration,
    /// Per-request latency distributions (sorted) and SLO accounting.
    pub latency: LatencyReport,
    /// Issue time of the last request (workload span under closed-loop
    /// pacing).
    pub last_issue: Duration,
    /// Wire crossings tampered with by the adversary harness (0 when the
    /// adversary is disabled).
    pub tampered_crossings: u64,
    /// Security-event ledger from the adversary harness: injections,
    /// detections, misses, false positives, per-pair counts and
    /// time-to-detection. Empty when the adversary is disabled.
    pub security: SecurityEventLog,
    /// Interval-resolved observability series; `None` unless
    /// `config.observability.enabled` was set for the run.
    pub timeline: Option<Timeline>,
    /// Discrete events popped from the engine's queue over the run — the
    /// denominator-free measure of engine work, used to report throughput
    /// (events per wall-clock second) in benchmarks.
    pub events_processed: u64,
}

impl RunReport {
    /// Execution time normalized to a baseline run (the paper's
    /// "normalized execution time"; > 1 means slower than baseline).
    ///
    /// Returns `None` when the baseline took zero cycles (a degenerate
    /// zero-request workload) — previously this panicked, so an empty
    /// workload could never produce a comparison report.
    #[must_use]
    pub fn normalized_time(&self, baseline: &RunReport) -> Option<f64> {
        let base = baseline.total_cycles.as_u64();
        if base == 0 {
            return None;
        }
        Some(self.total_cycles.as_u64() as f64 / base as f64)
    }

    /// Total interconnect traffic normalized to a baseline run
    /// (the paper's Figs. 12/23).
    ///
    /// Returns `None` when the baseline moved zero bytes.
    #[must_use]
    pub fn traffic_ratio(&self, baseline: &RunReport) -> Option<f64> {
        let base = baseline.traffic.total().as_u64();
        if base == 0 {
            return None;
        }
        Some(self.traffic.total().as_u64() as f64 / base as f64)
    }

    /// Mean per-request latency in cycles.
    #[must_use]
    pub fn mean_request_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.sum_request_latency.as_u64() as f64 / self.requests as f64
        }
    }

    /// Fraction of this run's bytes that were security metadata.
    #[must_use]
    pub fn metadata_fraction(&self) -> f64 {
        let total = self.traffic.total().as_u64();
        if total == 0 {
            0.0
        } else {
            self.traffic.metadata().as_u64() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_sim::link::TrafficClass;
    use mgpu_types::ByteSize;

    fn report(cycles: u64, data: u64, meta: u64) -> RunReport {
        let mut traffic = TrafficTotals::default();
        traffic.add(TrafficClass::Data, ByteSize::new(data));
        traffic.add(TrafficClass::Mac, ByteSize::new(meta));
        RunReport {
            benchmark: Benchmark::Atax,
            scheme: OtpSchemeKind::Private,
            batching: false,
            total_cycles: Duration::cycles(cycles),
            requests: 10,
            blocks: 10,
            traffic,
            otp: OtpStats::default(),
            acks_sent: 10,
            pads_issued: 40,
            mean_batch_occupancy: 0.0,
            sum_request_latency: Duration::cycles(0),
            latency: LatencyReport::default(),
            last_issue: Duration::cycles(0),
            tampered_crossings: 0,
            security: SecurityEventLog::default(),
            timeline: None,
            events_processed: 0,
        }
    }

    #[test]
    fn normalization() {
        let base = report(1000, 640, 0);
        let secure = report(1195, 640, 230);
        assert!((secure.normalized_time(&base).unwrap() - 1.195).abs() < 1e-12);
        assert!((secure.traffic_ratio(&base).unwrap() - 870.0 / 640.0).abs() < 1e-12);
    }

    #[test]
    fn metadata_fraction() {
        let r = report(100, 720, 280);
        assert!((r.metadata_fraction() - 0.28).abs() < 1e-12);
        let empty = report(100, 0, 0);
        assert_eq!(empty.metadata_fraction(), 0.0);
    }

    #[test]
    fn latency_report_records_and_sorts() {
        let mut l = LatencyReport::default();
        // Arrived 0, issued 10, first byte 50, done 100, deadline 80: miss.
        l.record(
            Cycle::new(0),
            Cycle::new(10),
            Cycle::new(50),
            Cycle::new(100),
            Some(Cycle::new(80)),
        );
        // Arrived 5, issued 5, first byte 20, done 30, deadline 60: met.
        l.record(
            Cycle::new(5),
            Cycle::new(5),
            Cycle::new(20),
            Cycle::new(30),
            Some(Cycle::new(60)),
        );
        l.finish();
        assert_eq!(l.total, vec![25.0, 100.0]);
        assert_eq!(l.first_byte, vec![15.0, 50.0]);
        assert_eq!(l.service, vec![25.0, 90.0]);
        assert_eq!(l.with_deadline, 2);
        assert_eq!(l.violations, 1);
        assert!((l.violation_rate() - 0.5).abs() < 1e-12);
        assert!((l.mean_total() - 62.5).abs() < 1e-12);
        assert_eq!(l.total_percentile(100.0), Some(100.0));
        assert_eq!(l.first_byte_percentile(0.0), Some(15.0));
    }

    #[test]
    fn latency_merge_matches_single_stream() {
        let mut a = LatencyReport::default();
        let mut b = LatencyReport::default();
        a.record(
            Cycle::new(0),
            Cycle::new(0),
            Cycle::new(9),
            Cycle::new(9),
            None,
        );
        b.record(
            Cycle::new(0),
            Cycle::new(0),
            Cycle::new(3),
            Cycle::new(3),
            None,
        );
        a.merge(&b);
        a.finish();
        assert_eq!(a.total, vec![3.0, 9.0]);
        assert_eq!(a.violation_rate(), 0.0);
    }

    #[test]
    fn empty_latency_report_is_benign() {
        let l = LatencyReport::default();
        assert_eq!(l.total_percentile(99.0), None);
        assert_eq!(l.mean_total(), 0.0);
        assert_eq!(l.violation_rate(), 0.0);
    }

    #[test]
    fn zero_baseline_yields_none() {
        let base = report(0, 640, 0);
        let secure = report(100, 640, 0);
        assert_eq!(secure.normalized_time(&base), None);
        let mut no_bytes = report(100, 0, 0);
        no_bytes.traffic = TrafficTotals::default();
        assert_eq!(secure.traffic_ratio(&no_bytes), None);
    }
}
