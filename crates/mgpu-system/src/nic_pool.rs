//! The fleet of secure NICs plus the replay-protection (ACK) tables.
//!
//! [`NicPool`] groups everything the event loop needs from the security
//! layer: one [`SecureNic`] per node (crypto pipeline, OTP buffers,
//! metadata batcher) plus the per-sender replay-protection ACK windows,
//! held as a [`CreditGate`]: an outgoing MAC-carrying block (or batch
//! closer) takes one window credit until its ACK returns; an exhausted
//! window answers [`Reject::AwaitCredit`] and the block parks at the
//! gate until a release unparks it under the configured arbitration.

use crate::flow::{CreditGate, Reject};
use crate::node::{PreparedBlock, SecureNic};
use mgpu_sim::link::WireParts;
use mgpu_types::{ByteSize, Cycle, DenseNodeMap, NodeId, SystemConfig};

/// A prepared, MAC-carrying block parked until a replay-table entry
/// frees: `(pending index, wire parts, message counter)`.
pub type DeferredBlock = (usize, WireParts, u64);

/// Per-node security state for one simulation run.
///
/// Generic over the parked-block payload `D`: the single-thread engine
/// parks `(pending index, wire parts, counter)` tuples ([`DeferredBlock`],
/// the default), while the sharded engine parks its self-describing
/// request tokens. Everything except [`NicPool::defer`] /
/// [`NicPool::release_ack`] is payload-agnostic.
#[derive(Debug)]
pub struct NicPool<D = DeferredBlock> {
    nics: DenseNodeMap<SecureNic>,
    /// Replay-table (ACK window) credits per sender. Signed: trailer
    /// flushes take a credit unconditionally and may transiently
    /// overdraw. Blocked senders park their prepared blocks here.
    gate: CreditGate<D>,
}

impl<D> NicPool<D> {
    /// Builds the pool. With `secure` false no NICs are instantiated
    /// (unsecure baseline), but the ACK-table counters still exist so the
    /// ablation paths can exercise them.
    #[must_use]
    pub fn new(config: &SystemConfig, secure: bool) -> Self {
        let nics = if secure {
            NodeId::all(config.gpu_count)
                .map(|n| (n, SecureNic::new(n, config)))
                .collect()
        } else {
            DenseNodeMap::new()
        };
        let capacity = i64::from(config.security.ack_table_entries);
        let gate = CreditGate::new(
            NodeId::all(config.gpu_count),
            capacity,
            config.flow.arbitration,
        );
        NicPool { nics, gate }
    }

    /// Builds a pool whose NICs and ACK windows cover only `owned` (a
    /// shard's node partition). Scoping the credit gate to owned nodes
    /// makes the ownership explicit: every ACK-window decision is local
    /// to the shard that owns the sender, and the balances are handed
    /// back over the shard boundary by [`NicPool::absorb`] at end of
    /// run — no shard ever peeks at another's credits.
    #[must_use]
    pub fn for_nodes(config: &SystemConfig, secure: bool, owned: &[NodeId]) -> Self {
        let nics = if secure {
            owned
                .iter()
                .map(|&n| (n, SecureNic::new(n, config)))
                .collect()
        } else {
            DenseNodeMap::new()
        };
        let capacity = i64::from(config.security.ack_table_entries);
        let gate = CreditGate::new(owned.iter().copied(), capacity, config.flow.arbitration);
        NicPool { nics, gate }
    }

    /// Takes ownership of `owned`'s per-node state from `other` (a shard
    /// pool being folded back into the coordinator's merged pool at end of
    /// run): the NICs move over and the ACK-window credit balances are
    /// exchanged across the shard boundary. Park queues are not carried
    /// over: a drained run has no parked blocks left.
    pub fn absorb<D2>(&mut self, other: &mut NicPool<D2>, owned: &[NodeId]) {
        for &n in owned {
            if let Some(nic) = other.nics.remove(n) {
                self.nics.insert(n, nic);
            }
            self.gate.adopt_credit(&other.gate, n);
        }
    }

    /// Nodes with a NIC, in ascending order.
    #[must_use]
    pub fn owners(&self) -> Vec<NodeId> {
        self.nics.keys().collect()
    }

    /// Prepares the next protected block from `owner` to `dst`.
    pub fn prepare_send(&mut self, owner: NodeId, now: Cycle, dst: NodeId) -> PreparedBlock {
        self.nics
            .get_mut(owner)
            .expect("owner nic")
            .prepare_send(now, dst)
    }

    /// Runs receive-side crypto at `requester` for a block from `owner`;
    /// returns when the plaintext becomes usable.
    pub fn receive(&mut self, requester: NodeId, now: Cycle, owner: NodeId, ctr: u64) -> Cycle {
        self.nics
            .get_mut(requester)
            .expect("requester nic")
            .receive(now, owner, ctr)
    }

    /// The ACK message size `node` sends (zero under metadata-free
    /// ablation).
    #[must_use]
    pub fn ack_bytes(&self, node: NodeId) -> ByteSize {
        self.nics[node].ack_bytes()
    }

    /// When `owner`'s batcher next needs a timeout check (`None` when
    /// `owner` has no NIC or no open batch).
    #[must_use]
    pub fn next_flush_deadline(&self, owner: NodeId) -> Option<Cycle> {
        self.nics.get(owner)?.next_flush_deadline()
    }

    /// Flushes `owner`'s timed-out batches; empty when `owner` has no NIC.
    pub fn flush_due(&mut self, owner: NodeId, now: Cycle) -> Vec<(NodeId, ByteSize)> {
        match self.nics.get_mut(owner) {
            Some(nic) => nic.flush_due(now),
            None => Vec::new(),
        }
    }

    /// Force-closes all of `owner`'s open batches (end of run).
    pub fn flush_all(&mut self, owner: NodeId) -> Vec<(NodeId, ByteSize)> {
        self.nics.get_mut(owner).expect("nic").flush_all()
    }

    /// Requests a replay-table (ACK window) credit at `owner` for an
    /// outgoing MAC-carrying block. [`Reject::AwaitCredit`] means the
    /// window is exhausted and nothing was taken — park the block with
    /// [`NicPool::defer`]; the returning ACK unparks it.
    pub fn admit_ack(&mut self, owner: NodeId) -> Result<(), Reject> {
        self.gate.admit(owner)
    }

    /// Takes a replay-table credit at `owner` unconditionally, possibly
    /// overdrawing the window (batch trailer flushes are never parked).
    pub fn overdraw_ack(&mut self, owner: NodeId) {
        self.gate.overdraw(owner);
    }

    /// Parks a prepared block at `owner` until a window credit frees.
    /// `priority` is the fixed-priority arbitration key (the originating
    /// request index: lower unparks first); round-robin ignores it.
    pub fn defer(&mut self, owner: NodeId, priority: u64, block: D) {
        self.gate.park(owner, priority, block);
    }

    /// Releases one replay-table credit at `owner` (its ACK returned)
    /// and unparks the next parked block under the configured
    /// arbitration, if any.
    pub fn release_ack(&mut self, owner: NodeId) -> Option<D> {
        self.gate.release(owner)
    }

    /// Advances every NIC's scheme to `now`, processing any pending
    /// interval boundaries. Used by the observability sampler so interval
    /// samples reflect the boundary allocation instead of lagging until
    /// each node's next send/receive (timing-equivalent — see
    /// [`crate::timeseries`]).
    pub fn advance_all(&mut self, now: Cycle) {
        for nic in self.nics.values_mut() {
            nic.advance(now);
        }
    }

    /// The NICs in ascending node order (observability sampling).
    pub fn iter_nics(&self) -> impl Iterator<Item = (NodeId, &SecureNic)> {
        self.nics.iter()
    }

    /// Free replay-table credits at `node` (negative while trailer
    /// flushes transiently overdraw).
    #[must_use]
    pub fn ack_free(&self, node: NodeId) -> i64 {
        self.gate.free(node)
    }

    /// ACK-window credits granted at `node` so far (admissions plus
    /// trailer overdraws).
    #[must_use]
    pub fn ack_grants(&self, node: NodeId) -> u64 {
        self.gate.grants(node)
    }

    /// Aggregated OTP statistics, pads issued, and mean batch occupancy
    /// across the fleet.
    #[must_use]
    pub fn otp_summary(&self) -> (mgpu_secure::OtpStats, u64, f64) {
        let mut otp = mgpu_secure::OtpStats::default();
        let mut pads_issued = 0;
        let mut occupancy_sum = 0.0;
        let mut occupancy_n = 0u32;
        for nic in self.nics.values() {
            otp.merge(nic.otp_stats());
            pads_issued += nic.pads_issued();
            let occ = nic.mean_batch_occupancy();
            if occ > 0.0 {
                occupancy_sum += occ;
                occupancy_n += 1;
            }
        }
        let mean_occupancy = if occupancy_n > 0 {
            occupancy_sum / f64::from(occupancy_n)
        } else {
            0.0
        };
        (otp, pads_issued, mean_occupancy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_types::OtpSchemeKind;

    fn pool() -> NicPool {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.scheme = OtpSchemeKind::Private;
        cfg.security.ack_table_entries = 2;
        NicPool::new(&cfg, true)
    }

    #[test]
    fn ack_window_backpressures_and_releases_fifo() {
        let mut p = pool();
        let owner = NodeId::gpu(1);
        assert!(p.admit_ack(owner).is_ok());
        assert!(p.admit_ack(owner).is_ok());
        assert_eq!(
            p.admit_ack(owner),
            Err(Reject::AwaitCredit),
            "window of 2 is full"
        );
        p.defer(owner, 7, (7, WireParts::new(), 1));
        p.defer(owner, 8, (8, WireParts::new(), 2));
        let first = p.release_ack(owner).expect("oldest parked unparks");
        assert_eq!(first.0, 7);
        let second = p.release_ack(owner).expect("next parked unparks");
        assert_eq!(second.0, 8);
        assert!(p.release_ack(owner).is_none());
        assert_eq!(p.ack_grants(owner), 2);
    }

    #[test]
    fn fixed_priority_arbitration_unparks_oldest_request_first() {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.scheme = OtpSchemeKind::Private;
        cfg.security.ack_table_entries = 1;
        cfg.flow.arbitration = mgpu_types::ArbitrationKind::FixedPriority;
        let mut p: NicPool = NicPool::new(&cfg, true);
        let owner = NodeId::gpu(1);
        assert!(p.admit_ack(owner).is_ok());
        // Parked out of request order: fixed priority unparks index 3 first.
        p.defer(owner, 9, (9, WireParts::new(), 1));
        p.defer(owner, 3, (3, WireParts::new(), 2));
        assert_eq!(p.release_ack(owner).expect("unparks").0, 3);
        assert_eq!(p.release_ack(owner).expect("unparks").0, 9);
    }

    #[test]
    fn trailer_reservation_can_overdraw() {
        let mut p = pool();
        let owner = NodeId::gpu(2);
        assert!(p.admit_ack(owner).is_ok());
        assert!(p.admit_ack(owner).is_ok());
        // A batch-closing trailer takes a credit even when the window is
        // full...
        p.overdraw_ack(owner);
        // ...so three releases are needed before a new block fits.
        assert!(p.release_ack(owner).is_none());
        assert_eq!(p.admit_ack(owner), Err(Reject::AwaitCredit));
        p.release_ack(owner);
        p.release_ack(owner);
        assert!(p.admit_ack(owner).is_ok());
    }

    #[test]
    fn unsecure_pool_has_no_nics_but_keeps_windows() {
        let cfg = SystemConfig::paper_4gpu();
        let mut p: NicPool = NicPool::new(&cfg, false);
        assert!(p.owners().is_empty());
        assert!(p.flush_due(NodeId::gpu(1), Cycle::ZERO).is_empty());
        assert!(p.admit_ack(NodeId::gpu(1)).is_ok());
    }
}
