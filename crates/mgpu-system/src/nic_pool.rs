//! The fleet of secure NICs plus the replay-protection (ACK) tables.
//!
//! [`NicPool`] groups everything the event loop needs from the security
//! layer: one [`SecureNic`] per node (crypto pipeline, OTP buffers,
//! metadata batcher), the per-sender ACK-table occupancy counters, and
//! the queue of prepared blocks deferred because their sender's table was
//! full. An outgoing MAC-carrying block (or batch closer) holds one table
//! entry until its ACK returns; a full table back-pressures further
//! protected sends.

use crate::node::{PreparedBlock, SecureNic};
use mgpu_sim::link::WireParts;
use mgpu_types::{ByteSize, Cycle, DenseNodeMap, NodeId, SystemConfig};
use std::collections::VecDeque;

/// A prepared, MAC-carrying block parked until a replay-table entry
/// frees: `(pending index, wire parts, message counter)`.
pub type DeferredBlock = (usize, WireParts, u64);

/// Per-node security state for one simulation run.
///
/// Generic over the deferred-block payload `D`: the single-thread engine
/// parks `(pending index, wire parts, counter)` tuples ([`DeferredBlock`],
/// the default), while the sharded engine parks its self-describing
/// request tokens. Everything except [`NicPool::defer`] /
/// [`NicPool::release_ack`] is payload-agnostic.
#[derive(Debug)]
pub struct NicPool<D = DeferredBlock> {
    nics: DenseNodeMap<SecureNic>,
    /// Free replay-table entries per sender. Signed: trailer flushes
    /// reserve unconditionally and may transiently overdraw.
    ack_free: DenseNodeMap<i64>,
    deferred: DenseNodeMap<VecDeque<D>>,
}

impl<D> NicPool<D> {
    /// Builds the pool. With `secure` false no NICs are instantiated
    /// (unsecure baseline), but the ACK-table counters still exist so the
    /// ablation paths can exercise them.
    #[must_use]
    pub fn new(config: &SystemConfig, secure: bool) -> Self {
        let nics = if secure {
            NodeId::all(config.gpu_count)
                .map(|n| (n, SecureNic::new(n, config)))
                .collect()
        } else {
            DenseNodeMap::new()
        };
        let capacity = i64::from(config.security.ack_table_entries);
        let ack_free = NodeId::all(config.gpu_count)
            .map(|n| (n, capacity))
            .collect();
        NicPool {
            nics,
            ack_free,
            deferred: DenseNodeMap::new(),
        }
    }

    /// Builds a pool whose NICs cover only `owned` (a shard's node
    /// partition). ACK-table counters still exist for every node — they
    /// are cheap, and only the owning shard ever touches an entry.
    #[must_use]
    pub fn for_nodes(config: &SystemConfig, secure: bool, owned: &[NodeId]) -> Self {
        let nics = if secure {
            owned
                .iter()
                .map(|&n| (n, SecureNic::new(n, config)))
                .collect()
        } else {
            DenseNodeMap::new()
        };
        let capacity = i64::from(config.security.ack_table_entries);
        let ack_free = NodeId::all(config.gpu_count)
            .map(|n| (n, capacity))
            .collect();
        NicPool {
            nics,
            ack_free,
            deferred: DenseNodeMap::new(),
        }
    }

    /// Takes ownership of `owned`'s per-node state from `other` (a shard
    /// pool being folded back into the coordinator's merged pool at end of
    /// run). Deferred queues are not carried over: a drained run has no
    /// parked blocks left.
    pub fn absorb<D2>(&mut self, other: &mut NicPool<D2>, owned: &[NodeId]) {
        for &n in owned {
            if let Some(nic) = other.nics.remove(n) {
                self.nics.insert(n, nic);
            }
            if let Some(&free) = other.ack_free.get(n) {
                self.ack_free.insert(n, free);
            }
        }
    }

    /// Nodes with a NIC, in ascending order.
    #[must_use]
    pub fn owners(&self) -> Vec<NodeId> {
        self.nics.keys().collect()
    }

    /// Prepares the next protected block from `owner` to `dst`.
    pub fn prepare_send(&mut self, owner: NodeId, now: Cycle, dst: NodeId) -> PreparedBlock {
        self.nics
            .get_mut(owner)
            .expect("owner nic")
            .prepare_send(now, dst)
    }

    /// Runs receive-side crypto at `requester` for a block from `owner`;
    /// returns when the plaintext becomes usable.
    pub fn receive(&mut self, requester: NodeId, now: Cycle, owner: NodeId, ctr: u64) -> Cycle {
        self.nics
            .get_mut(requester)
            .expect("requester nic")
            .receive(now, owner, ctr)
    }

    /// The ACK message size `node` sends (zero under metadata-free
    /// ablation).
    #[must_use]
    pub fn ack_bytes(&self, node: NodeId) -> ByteSize {
        self.nics[node].ack_bytes()
    }

    /// When `owner`'s batcher next needs a timeout check (`None` when
    /// `owner` has no NIC or no open batch).
    #[must_use]
    pub fn next_flush_deadline(&self, owner: NodeId) -> Option<Cycle> {
        self.nics.get(owner)?.next_flush_deadline()
    }

    /// Flushes `owner`'s timed-out batches; empty when `owner` has no NIC.
    pub fn flush_due(&mut self, owner: NodeId, now: Cycle) -> Vec<(NodeId, ByteSize)> {
        match self.nics.get_mut(owner) {
            Some(nic) => nic.flush_due(now),
            None => Vec::new(),
        }
    }

    /// Force-closes all of `owner`'s open batches (end of run).
    pub fn flush_all(&mut self, owner: NodeId) -> Vec<(NodeId, ByteSize)> {
        self.nics.get_mut(owner).expect("nic").flush_all()
    }

    /// Tries to reserve a replay-table entry at `owner` for an outgoing
    /// MAC-carrying block. Returns `false` (and reserves nothing) when the
    /// table is full — the caller should park the block with
    /// [`NicPool::defer`].
    pub fn try_reserve_ack(&mut self, owner: NodeId) -> bool {
        let free = self.ack_free.get_mut(owner).expect("node exists");
        if *free <= 0 {
            return false;
        }
        *free -= 1;
        true
    }

    /// Unconditionally reserves a replay-table entry at `owner` (batch
    /// trailer flushes are never deferred).
    pub fn reserve_ack(&mut self, owner: NodeId) {
        *self.ack_free.get_mut(owner).expect("node exists") -= 1;
    }

    /// Parks a prepared block at `owner` until a table entry frees.
    pub fn defer(&mut self, owner: NodeId, block: D) {
        self.deferred
            .get_or_insert_with(owner, VecDeque::new)
            .push_back(block);
    }

    /// Releases one replay-table entry at `owner` (its ACK returned) and
    /// unparks the oldest deferred block, if any.
    pub fn release_ack(&mut self, owner: NodeId) -> Option<D> {
        *self.ack_free.get_mut(owner).expect("node exists") += 1;
        self.deferred.get_mut(owner)?.pop_front()
    }

    /// Advances every NIC's scheme to `now`, processing any pending
    /// interval boundaries. Used by the observability sampler so interval
    /// samples reflect the boundary allocation instead of lagging until
    /// each node's next send/receive (timing-equivalent — see
    /// [`crate::timeseries`]).
    pub fn advance_all(&mut self, now: Cycle) {
        for nic in self.nics.values_mut() {
            nic.advance(now);
        }
    }

    /// The NICs in ascending node order (observability sampling).
    pub fn iter_nics(&self) -> impl Iterator<Item = (NodeId, &SecureNic)> {
        self.nics.iter()
    }

    /// Free replay-table entries at `node` (negative while trailer
    /// flushes transiently overdraw).
    #[must_use]
    pub fn ack_free(&self, node: NodeId) -> i64 {
        self.ack_free.get(node).copied().unwrap_or(0)
    }

    /// Aggregated OTP statistics, pads issued, and mean batch occupancy
    /// across the fleet.
    #[must_use]
    pub fn otp_summary(&self) -> (mgpu_secure::OtpStats, u64, f64) {
        let mut otp = mgpu_secure::OtpStats::default();
        let mut pads_issued = 0;
        let mut occupancy_sum = 0.0;
        let mut occupancy_n = 0u32;
        for nic in self.nics.values() {
            otp.merge(nic.otp_stats());
            pads_issued += nic.pads_issued();
            let occ = nic.mean_batch_occupancy();
            if occ > 0.0 {
                occupancy_sum += occ;
                occupancy_n += 1;
            }
        }
        let mean_occupancy = if occupancy_n > 0 {
            occupancy_sum / f64::from(occupancy_n)
        } else {
            0.0
        };
        (otp, pads_issued, mean_occupancy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_types::OtpSchemeKind;

    fn pool() -> NicPool {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.scheme = OtpSchemeKind::Private;
        cfg.security.ack_table_entries = 2;
        NicPool::new(&cfg, true)
    }

    #[test]
    fn ack_table_backpressures_and_releases_fifo() {
        let mut p = pool();
        let owner = NodeId::gpu(1);
        assert!(p.try_reserve_ack(owner));
        assert!(p.try_reserve_ack(owner));
        assert!(!p.try_reserve_ack(owner), "table of 2 is full");
        p.defer(owner, (7, WireParts::new(), 1));
        p.defer(owner, (8, WireParts::new(), 2));
        let first = p.release_ack(owner).expect("oldest deferred unparks");
        assert_eq!(first.0, 7);
        let second = p.release_ack(owner).expect("next deferred unparks");
        assert_eq!(second.0, 8);
        assert!(p.release_ack(owner).is_none());
    }

    #[test]
    fn trailer_reservation_can_overdraw() {
        let mut p = pool();
        let owner = NodeId::gpu(2);
        assert!(p.try_reserve_ack(owner));
        assert!(p.try_reserve_ack(owner));
        // A batch-closing trailer reserves even when the table is full...
        p.reserve_ack(owner);
        // ...so three releases are needed before a new block fits.
        assert!(p.release_ack(owner).is_none());
        assert!(!p.try_reserve_ack(owner));
        p.release_ack(owner);
        p.release_ack(owner);
        assert!(p.try_reserve_ack(owner));
    }

    #[test]
    fn unsecure_pool_has_no_nics_but_keeps_tables() {
        let cfg = SystemConfig::paper_4gpu();
        let mut p: NicPool = NicPool::new(&cfg, false);
        assert!(p.owners().is_empty());
        assert!(p.flush_due(NodeId::gpu(1), Cycle::ZERO).is_empty());
        assert!(p.try_reserve_ack(NodeId::gpu(1)));
    }
}
