//! Request issue pacing: closed-loop compute gaps or open-loop arrivals.
//!
//! In the default **closed-loop** mode, each GPU's generated request
//! timestamps define *compute gaps* between consecutive requests, and the
//! GPU sustains at most `slots` in-flight requests (its memory-level
//! parallelism). [`IssuePacer`] owns that state: the per-node request
//! queues, the gap queues, the virtual time marking when the previous
//! request issued, and the free-slot counters. A stalled GPU pushes all
//! of its later work back — like a real kernel whose wavefronts cannot
//! run ahead of their data.
//!
//! In **open-loop** mode ([`IssuePacer::open_loop`]) requests become
//! eligible at their *absolute* `available_at` cycles regardless of how
//! the previous request fared — the arrival process is external, as in
//! inference serving. The slot limit still bounds concurrency, so a
//! saturated node accumulates queueing delay that surfaces as request
//! latency instead of silently shifting the arrival process.
//!
//! Issue slots are [`CreditPool`] credits and every non-issue answer is
//! a typed [`Reject`]: `NotBefore` names the compute-ready cycle (arm
//! one wakeup), `AwaitCredit` says a completion will re-offer, and
//! `Drained` ends the node's stream — the flow-substrate contract, with
//! no decision enum of its own.

use crate::flow::{CreditPool, Reject};
use mgpu_types::{Cycle, DenseNodeMap, Duration, NodeId};
use mgpu_workloads::Request;
use std::collections::{BTreeMap, VecDeque};

/// How a node's next request becomes eligible to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacingMode {
    /// Compute gaps replay relative to the previous *actual* issue time;
    /// stalls push later work back (default, models kernel execution).
    #[default]
    ClosedLoop,
    /// Requests become eligible at their absolute `available_at` cycles;
    /// stalls accumulate queueing delay (models external arrivals).
    OpenLoop,
}

/// Per-node issue state for one simulation run.
#[derive(Debug)]
pub struct IssuePacer {
    mode: PacingMode,
    gaps: DenseNodeMap<VecDeque<Duration>>,
    reqs: DenseNodeMap<VecDeque<Request>>,
    /// Virtual time: when the node's previous request issued.
    vt: DenseNodeMap<Cycle>,
    /// Issue-slot credits (the node's memory-level parallelism).
    slots: CreditPool,
}

impl IssuePacer {
    /// Builds a closed-loop pacer from per-requester queues (each sorted
    /// by `available_at`). Consecutive timestamp deltas become the compute
    /// gaps; every node starts with `slots` free issue slots.
    #[must_use]
    pub fn new(queues: BTreeMap<NodeId, VecDeque<Request>>, slots: u32) -> Self {
        Self::build(queues, slots, PacingMode::ClosedLoop)
    }

    /// Builds an open-loop pacer: requests issue at their absolute
    /// `available_at` (subject to the slot limit), never pushed back by
    /// earlier stalls.
    #[must_use]
    pub fn open_loop(queues: BTreeMap<NodeId, VecDeque<Request>>, slots: u32) -> Self {
        Self::build(queues, slots, PacingMode::OpenLoop)
    }

    fn build(queues: BTreeMap<NodeId, VecDeque<Request>>, slots: u32, mode: PacingMode) -> Self {
        let mut gaps: DenseNodeMap<VecDeque<Duration>> = DenseNodeMap::new();
        let mut reqs: DenseNodeMap<VecDeque<Request>> = DenseNodeMap::new();
        for (node, queue) in queues {
            let mut prev = Cycle::ZERO;
            let g = gaps.get_or_insert_with(node, VecDeque::new);
            for r in &queue {
                g.push_back(r.available_at.saturating_since(prev));
                prev = r.available_at;
            }
            reqs.insert(node, queue);
        }
        let vt = reqs.keys().map(|n| (n, Cycle::ZERO)).collect();
        let slots = CreditPool::new(reqs.keys(), slots);
        IssuePacer {
            mode,
            gaps,
            reqs,
            vt,
            slots,
        }
    }

    /// The nodes with request queues, in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.reqs.keys()
    }

    /// Polls `node` for an issue at `now`. Idempotent: every condition is
    /// re-checked at call time, so stale polls are harmless. `Ok` carries
    /// the issued request (a slot credit was consumed); `Err` is the
    /// typed reject telling the caller exactly what re-offers service.
    pub fn poll(&mut self, node: NodeId, now: Cycle) -> Result<Request, Reject> {
        let Some(front_gap) = self.gaps[node].front().copied() else {
            return Err(Reject::Drained);
        };
        let avail = match self.mode {
            PacingMode::ClosedLoop => self.vt[node] + front_gap,
            PacingMode::OpenLoop => {
                self.reqs[node]
                    .front()
                    .expect("gap implies request")
                    .available_at
            }
        };
        if avail > now {
            return Err(Reject::NotBefore(avail));
        }
        self.slots.take(node)?;
        let request = self
            .reqs
            .get_mut(node)
            .expect("queue exists")
            .pop_front()
            .expect("gap implies request");
        self.gaps.get_mut(node).expect("gaps exist").pop_front();
        self.vt.insert(node, now);
        Ok(request)
    }

    /// Returns `node`'s issue-slot credit after one of its requests
    /// completes.
    pub fn complete(&mut self, node: NodeId) {
        self.slots.put(node);
    }

    /// Issue-slot credits granted to `node` so far.
    #[must_use]
    pub fn slot_grants(&self, node: NodeId) -> u64 {
        self.slots.grants(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(reqs: Vec<Request>) -> BTreeMap<NodeId, VecDeque<Request>> {
        let mut q: BTreeMap<NodeId, VecDeque<Request>> = BTreeMap::new();
        for r in reqs {
            q.entry(r.requester).or_default().push_back(r);
        }
        q
    }

    #[test]
    fn issues_in_order_and_respects_gaps() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::new(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(10), g1, NodeId::gpu(3)),
            ]),
            4,
        );
        assert!(p.poll(g1, Cycle::ZERO).is_ok());
        // Second request needs its 10-cycle compute gap after the first.
        assert_eq!(
            p.poll(g1, Cycle::new(3)).unwrap_err(),
            Reject::NotBefore(Cycle::new(10))
        );
        assert!(p.poll(g1, Cycle::new(10)).is_ok());
        assert_eq!(p.poll(g1, Cycle::new(10)).unwrap_err(), Reject::Drained);
    }

    #[test]
    fn stalls_at_slot_limit_until_completion() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::new(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
            ]),
            1,
        );
        assert!(p.poll(g1, Cycle::ZERO).is_ok());
        assert_eq!(p.poll(g1, Cycle::ZERO).unwrap_err(), Reject::AwaitCredit);
        p.complete(g1);
        assert!(p.poll(g1, Cycle::ZERO).is_ok());
    }

    #[test]
    fn open_loop_issue_times_are_absolute() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::open_loop(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(5), g1, NodeId::gpu(2)),
            ]),
            4,
        );
        // First issues late (at 100): the second is *already* eligible —
        // its arrival at cycle 5 was not pushed back.
        assert!(p.poll(g1, Cycle::new(100)).is_ok());
        assert!(p.poll(g1, Cycle::new(100)).is_ok());
        assert_eq!(p.poll(g1, Cycle::new(100)).unwrap_err(), Reject::Drained);
    }

    #[test]
    fn open_loop_still_waits_for_future_arrivals() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::open_loop(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(50), g1, NodeId::gpu(2)),
            ]),
            4,
        );
        assert!(p.poll(g1, Cycle::ZERO).is_ok());
        assert_eq!(
            p.poll(g1, Cycle::new(10)).unwrap_err(),
            Reject::NotBefore(Cycle::new(50))
        );
    }

    #[test]
    fn open_loop_respects_slot_limit() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::open_loop(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
            ]),
            1,
        );
        assert!(p.poll(g1, Cycle::ZERO).is_ok());
        assert_eq!(p.poll(g1, Cycle::ZERO).unwrap_err(), Reject::AwaitCredit);
        p.complete(g1);
        assert!(p.poll(g1, Cycle::ZERO).is_ok());
        assert_eq!(p.slot_grants(g1), 2);
    }

    #[test]
    fn stall_delays_later_work() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::new(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(5), g1, NodeId::gpu(2)),
            ]),
            4,
        );
        // First issues late (at 100): the 5-cycle gap now counts from 100.
        assert!(p.poll(g1, Cycle::new(100)).is_ok());
        assert_eq!(
            p.poll(g1, Cycle::new(100)).unwrap_err(),
            Reject::NotBefore(Cycle::new(105))
        );
    }
}
