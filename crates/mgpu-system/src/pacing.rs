//! Request issue pacing: closed-loop compute gaps or open-loop arrivals.
//!
//! In the default **closed-loop** mode, each GPU's generated request
//! timestamps define *compute gaps* between consecutive requests, and the
//! GPU sustains at most `slots` in-flight requests (its memory-level
//! parallelism). [`IssuePacer`] owns that state: the per-node request
//! queues, the gap queues, the virtual time marking when the previous
//! request issued, and the free-slot counters. A stalled GPU pushes all
//! of its later work back — like a real kernel whose wavefronts cannot
//! run ahead of their data.
//!
//! In **open-loop** mode ([`IssuePacer::open_loop`]) requests become
//! eligible at their *absolute* `available_at` cycles regardless of how
//! the previous request fared — the arrival process is external, as in
//! inference serving. The slot limit still bounds concurrency, so a
//! saturated node accumulates queueing delay that surfaces as request
//! latency instead of silently shifting the arrival process.

use mgpu_types::{Cycle, DenseNodeMap, Duration, NodeId};
use mgpu_workloads::Request;
use std::collections::{BTreeMap, VecDeque};

/// The outcome of asking a node to issue at `now`.
#[derive(Debug)]
pub enum IssueDecision {
    /// The node issues this request now (a slot was consumed).
    Issue(Request),
    /// The node's next request becomes compute-ready at this later cycle;
    /// re-poll then.
    NotBefore(Cycle),
    /// All slots are in flight; a completion will re-poll.
    Stalled,
    /// The node's queue is empty.
    Drained,
}

/// How a node's next request becomes eligible to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacingMode {
    /// Compute gaps replay relative to the previous *actual* issue time;
    /// stalls push later work back (default, models kernel execution).
    #[default]
    ClosedLoop,
    /// Requests become eligible at their absolute `available_at` cycles;
    /// stalls accumulate queueing delay (models external arrivals).
    OpenLoop,
}

/// Per-node issue state for one simulation run.
#[derive(Debug)]
pub struct IssuePacer {
    mode: PacingMode,
    gaps: DenseNodeMap<VecDeque<Duration>>,
    reqs: DenseNodeMap<VecDeque<Request>>,
    /// Virtual time: when the node's previous request issued.
    vt: DenseNodeMap<Cycle>,
    free_slots: DenseNodeMap<u32>,
}

impl IssuePacer {
    /// Builds a closed-loop pacer from per-requester queues (each sorted
    /// by `available_at`). Consecutive timestamp deltas become the compute
    /// gaps; every node starts with `slots` free issue slots.
    #[must_use]
    pub fn new(queues: BTreeMap<NodeId, VecDeque<Request>>, slots: u32) -> Self {
        Self::build(queues, slots, PacingMode::ClosedLoop)
    }

    /// Builds an open-loop pacer: requests issue at their absolute
    /// `available_at` (subject to the slot limit), never pushed back by
    /// earlier stalls.
    #[must_use]
    pub fn open_loop(queues: BTreeMap<NodeId, VecDeque<Request>>, slots: u32) -> Self {
        Self::build(queues, slots, PacingMode::OpenLoop)
    }

    fn build(queues: BTreeMap<NodeId, VecDeque<Request>>, slots: u32, mode: PacingMode) -> Self {
        let mut gaps: DenseNodeMap<VecDeque<Duration>> = DenseNodeMap::new();
        let mut reqs: DenseNodeMap<VecDeque<Request>> = DenseNodeMap::new();
        for (node, queue) in queues {
            let mut prev = Cycle::ZERO;
            let g = gaps.get_or_insert_with(node, VecDeque::new);
            for r in &queue {
                g.push_back(r.available_at.saturating_since(prev));
                prev = r.available_at;
            }
            reqs.insert(node, queue);
        }
        let vt = reqs.keys().map(|n| (n, Cycle::ZERO)).collect();
        let free_slots = reqs.keys().map(|n| (n, slots)).collect();
        IssuePacer {
            mode,
            gaps,
            reqs,
            vt,
            free_slots,
        }
    }

    /// The nodes with request queues, in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.reqs.keys()
    }

    /// Polls `node` for an issue at `now`. Idempotent: every condition is
    /// re-checked at call time, so stale polls are harmless.
    pub fn poll(&mut self, node: NodeId, now: Cycle) -> IssueDecision {
        let Some(front_gap) = self.gaps[node].front().copied() else {
            return IssueDecision::Drained;
        };
        let avail = match self.mode {
            PacingMode::ClosedLoop => self.vt[node] + front_gap,
            PacingMode::OpenLoop => {
                self.reqs[node]
                    .front()
                    .expect("gap implies request")
                    .available_at
            }
        };
        if avail > now {
            return IssueDecision::NotBefore(avail);
        }
        if self.free_slots[node] == 0 {
            return IssueDecision::Stalled;
        }
        let request = self
            .reqs
            .get_mut(node)
            .expect("queue exists")
            .pop_front()
            .expect("gap implies request");
        self.gaps.get_mut(node).expect("gaps exist").pop_front();
        self.vt.insert(node, now);
        *self.free_slots.get_mut(node).expect("slots exist") -= 1;
        IssueDecision::Issue(request)
    }

    /// Returns `node`'s issue slot after one of its requests completes.
    pub fn complete(&mut self, node: NodeId) {
        *self.free_slots.get_mut(node).expect("slots exist") += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(reqs: Vec<Request>) -> BTreeMap<NodeId, VecDeque<Request>> {
        let mut q: BTreeMap<NodeId, VecDeque<Request>> = BTreeMap::new();
        for r in reqs {
            q.entry(r.requester).or_default().push_back(r);
        }
        q
    }

    #[test]
    fn issues_in_order_and_respects_gaps() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::new(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(10), g1, NodeId::gpu(3)),
            ]),
            4,
        );
        assert!(matches!(p.poll(g1, Cycle::ZERO), IssueDecision::Issue(_)));
        // Second request needs its 10-cycle compute gap after the first.
        match p.poll(g1, Cycle::new(3)) {
            IssueDecision::NotBefore(c) => assert_eq!(c, Cycle::new(10)),
            other => panic!("expected NotBefore, got {other:?}"),
        }
        assert!(matches!(
            p.poll(g1, Cycle::new(10)),
            IssueDecision::Issue(_)
        ));
        assert!(matches!(p.poll(g1, Cycle::new(10)), IssueDecision::Drained));
    }

    #[test]
    fn stalls_at_slot_limit_until_completion() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::new(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
            ]),
            1,
        );
        assert!(matches!(p.poll(g1, Cycle::ZERO), IssueDecision::Issue(_)));
        assert!(matches!(p.poll(g1, Cycle::ZERO), IssueDecision::Stalled));
        p.complete(g1);
        assert!(matches!(p.poll(g1, Cycle::ZERO), IssueDecision::Issue(_)));
    }

    #[test]
    fn open_loop_issue_times_are_absolute() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::open_loop(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(5), g1, NodeId::gpu(2)),
            ]),
            4,
        );
        // First issues late (at 100): the second is *already* eligible —
        // its arrival at cycle 5 was not pushed back.
        assert!(matches!(
            p.poll(g1, Cycle::new(100)),
            IssueDecision::Issue(_)
        ));
        assert!(matches!(
            p.poll(g1, Cycle::new(100)),
            IssueDecision::Issue(_)
        ));
        assert!(matches!(
            p.poll(g1, Cycle::new(100)),
            IssueDecision::Drained
        ));
    }

    #[test]
    fn open_loop_still_waits_for_future_arrivals() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::open_loop(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(50), g1, NodeId::gpu(2)),
            ]),
            4,
        );
        assert!(matches!(p.poll(g1, Cycle::ZERO), IssueDecision::Issue(_)));
        match p.poll(g1, Cycle::new(10)) {
            IssueDecision::NotBefore(c) => assert_eq!(c, Cycle::new(50)),
            other => panic!("expected NotBefore, got {other:?}"),
        }
    }

    #[test]
    fn open_loop_respects_slot_limit() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::open_loop(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
            ]),
            1,
        );
        assert!(matches!(p.poll(g1, Cycle::ZERO), IssueDecision::Issue(_)));
        assert!(matches!(p.poll(g1, Cycle::ZERO), IssueDecision::Stalled));
        p.complete(g1);
        assert!(matches!(p.poll(g1, Cycle::ZERO), IssueDecision::Issue(_)));
    }

    #[test]
    fn stall_delays_later_work() {
        let g1 = NodeId::gpu(1);
        let mut p = IssuePacer::new(
            queues(vec![
                Request::direct(Cycle::new(0), g1, NodeId::gpu(2)),
                Request::direct(Cycle::new(5), g1, NodeId::gpu(2)),
            ]),
            4,
        );
        // First issues late (at 100): the 5-cycle gap now counts from 100.
        assert!(matches!(
            p.poll(g1, Cycle::new(100)),
            IssueDecision::Issue(_)
        ));
        match p.poll(g1, Cycle::new(100)) {
            IssueDecision::NotBefore(c) => assert_eq!(c, Cycle::new(105)),
            other => panic!("expected NotBefore, got {other:?}"),
        }
    }
}
