//! System-level flow control: typed backpressure, credit gates, and
//! wakeup dedup shared by the pacing, NIC, and engine layers.
//!
//! Together with the fabric's [`mgpu_sim::timeq::TimedServer`] this is
//! the PR 8 flow substrate: every "is this resource ready?" question in
//! the system answers with either a grant or a **typed reject**
//! ([`Reject`]) that says exactly when or on what signal to come back —
//! never a bare `false` the caller must re-poll.
//!
//! * [`CreditPool`] — unsigned per-node slot credits (issue slots: a
//!   GPU's memory-level parallelism).
//! * [`CreditGate`] — signed per-node credits with a park queue and
//!   config-selected arbitration (replay-protection ACK windows, where
//!   batch trailers may transiently overdraw and blocked senders park
//!   prepared blocks until a credit returns).
//! * [`WakeupLadder`] — the PR 5 gap-wakeup dedup, extracted: at most
//!   one timer wakeup armed per node, none lost.

use mgpu_types::{ArbitrationKind, Cycle, DenseNodeMap, NodeId};
use std::collections::VecDeque;

/// Typed backpressure: why a request was not granted, and what wakes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The resource frees (or the request becomes eligible) at this
    /// cycle: schedule exactly one retry then.
    NotBefore(Cycle),
    /// Out of credits with no self-known free time: a credit release
    /// (completion/ACK) re-offers service — park, do not poll.
    AwaitCredit,
    /// Nothing left to serve: no retry will ever succeed.
    Drained,
}

/// Unsigned per-node slot credits (e.g. issue slots). Taking a credit
/// either succeeds or answers [`Reject::AwaitCredit`]; returning one is
/// infallible.
#[derive(Debug)]
pub struct CreditPool {
    free: DenseNodeMap<u32>,
    grants: DenseNodeMap<u64>,
}

impl CreditPool {
    /// A pool giving each node in `nodes` `capacity` credits.
    #[must_use]
    pub fn new(nodes: impl Iterator<Item = NodeId>, capacity: u32) -> Self {
        let free: DenseNodeMap<u32> = nodes.map(|n| (n, capacity)).collect();
        let grants = free.keys().map(|n| (n, 0)).collect();
        CreditPool { free, grants }
    }

    /// Takes one credit from `node`; [`Reject::AwaitCredit`] when none
    /// are free (a [`CreditPool::put`] will re-offer).
    pub fn take(&mut self, node: NodeId) -> Result<(), Reject> {
        let free = self.free.get_mut(node).expect("node in pool");
        if *free == 0 {
            return Err(Reject::AwaitCredit);
        }
        *free -= 1;
        *self.grants.get_mut(node).expect("node in pool") += 1;
        Ok(())
    }

    /// Returns one credit to `node`.
    pub fn put(&mut self, node: NodeId) {
        *self.free.get_mut(node).expect("node in pool") += 1;
    }

    /// Free credits at `node`.
    #[must_use]
    pub fn free(&self, node: NodeId) -> u32 {
        self.free.get(node).copied().unwrap_or(0)
    }

    /// Credits granted to `node` so far.
    #[must_use]
    pub fn grants(&self, node: NodeId) -> u64 {
        self.grants.get(node).copied().unwrap_or(0)
    }
}

/// Signed per-node credits with a park queue and pluggable arbitration.
///
/// Models windows where privileged callers may transiently overdraw
/// (replay-table trailer reservations) and where a denied caller parks
/// its work item `D` until a credit returns. When a credit is released,
/// the next parked item is chosen by the configured [`ArbitrationKind`]:
///
/// * [`ArbitrationKind::RoundRobin`] — FIFO park order (today's service
///   order; the bit-for-bit default).
/// * [`ArbitrationKind::FixedPriority`] — lowest priority key first
///   (callers pass e.g. the originating request index, so older requests
///   preempt the park queue).
#[derive(Debug)]
pub struct CreditGate<D> {
    free: DenseNodeMap<i64>,
    parked: DenseNodeMap<VecDeque<(u64, D)>>,
    grants: DenseNodeMap<u64>,
    arbitration: ArbitrationKind,
}

impl<D> CreditGate<D> {
    /// A gate giving each node in `nodes` `capacity` credits, unparking
    /// under `arbitration`.
    #[must_use]
    pub fn new(
        nodes: impl Iterator<Item = NodeId>,
        capacity: i64,
        arbitration: ArbitrationKind,
    ) -> Self {
        let free: DenseNodeMap<i64> = nodes.map(|n| (n, capacity)).collect();
        let grants = free.keys().map(|n| (n, 0)).collect();
        CreditGate {
            free,
            parked: DenseNodeMap::new(),
            grants,
            arbitration,
        }
    }

    /// Takes one credit at `node`; [`Reject::AwaitCredit`] when the
    /// window is exhausted (a [`CreditGate::release`] re-offers — park
    /// the work item, do not poll).
    pub fn admit(&mut self, node: NodeId) -> Result<(), Reject> {
        let free = self.free.get_mut(node).expect("node in gate");
        if *free <= 0 {
            return Err(Reject::AwaitCredit);
        }
        *free -= 1;
        *self.grants.get_mut(node).expect("node in gate") += 1;
        Ok(())
    }

    /// Takes one credit at `node` unconditionally, allowing the balance
    /// to go negative (privileged callers only — batch trailer flushes
    /// are never parked).
    pub fn overdraw(&mut self, node: NodeId) {
        *self.free.get_mut(node).expect("node in gate") -= 1;
        *self.grants.get_mut(node).expect("node in gate") += 1;
    }

    /// Parks `item` at `node` until a credit returns. `priority` is the
    /// [`ArbitrationKind::FixedPriority`] key (lower unparks first);
    /// round-robin ignores it.
    pub fn park(&mut self, node: NodeId, priority: u64, item: D) {
        self.parked
            .get_or_insert_with(node, VecDeque::new)
            .push_back((priority, item));
    }

    /// Returns one credit to `node` and unparks the next work item under
    /// the configured arbitration, if any is waiting.
    pub fn release(&mut self, node: NodeId) -> Option<D> {
        *self.free.get_mut(node).expect("node in gate") += 1;
        let queue = self.parked.get_mut(node)?;
        let at = match self.arbitration {
            ArbitrationKind::RoundRobin => {
                if queue.is_empty() {
                    return None;
                }
                0
            }
            ArbitrationKind::FixedPriority => {
                queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (priority, _))| *priority)?
                    .0
            }
        };
        queue.remove(at).map(|(_, item)| item)
    }

    /// Free credits at `node` (negative while overdrawn); zero for nodes
    /// outside the gate.
    #[must_use]
    pub fn free(&self, node: NodeId) -> i64 {
        self.free.get(node).copied().unwrap_or(0)
    }

    /// Credits granted at `node` so far (admissions plus overdraws).
    #[must_use]
    pub fn grants(&self, node: NodeId) -> u64 {
        self.grants.get(node).copied().unwrap_or(0)
    }

    /// Work items parked at `node`.
    #[must_use]
    pub fn parked_len(&self, node: NodeId) -> usize {
        self.parked.get(node).map_or(0, VecDeque::len)
    }

    /// Copies `node`'s credit balance and grant count from `other` (the
    /// shard-boundary credit exchange: a shard folding back into the
    /// coordinator hands over the windows of the nodes it owned).
    pub fn adopt_credit<D2>(&mut self, other: &CreditGate<D2>, node: NodeId) {
        if let Some(&free) = other.free.get(node) {
            self.free.insert(node, free);
        }
        if let Some(&grants) = other.grants.get(node) {
            self.grants.insert(node, grants);
        }
    }
}

/// The PR 5 gap-wakeup dedup, extracted from the engines: per node, at
/// most one timer wakeup is armed at any moment, and the armed time
/// never exceeds the node's live ready cycle — so no wakeup is lost and
/// the duplicate-poll population cannot grow (see DESIGN.md §10).
#[derive(Debug)]
pub struct WakeupLadder {
    armed: DenseNodeMap<Option<Cycle>>,
}

impl WakeupLadder {
    /// A ladder with every node in `nodes` unarmed.
    #[must_use]
    pub fn new(nodes: impl Iterator<Item = NodeId>) -> Self {
        WakeupLadder {
            armed: nodes.map(|n| (n, None)).collect(),
        }
    }

    /// Notes that a wakeup for `node` fired at `now`: if it was the
    /// armed one, the node becomes re-armable. (A wakeup scheduled
    /// before arming — e.g. the initial kick or a completion poll — does
    /// not match and leaves the armed timer in place.)
    pub fn fired(&mut self, node: NodeId, now: Cycle) {
        if self.armed[node] == Some(now) {
            self.armed.insert(node, None);
        }
    }

    /// Requests a wakeup for `node` at `at`. `true` means the caller
    /// must schedule it (the ladder armed it); `false` means an earlier-
    /// or-equal wakeup is already armed and scheduling another would
    /// recreate the duplicate-poll storm.
    pub fn arm(&mut self, node: NodeId, at: Cycle) -> bool {
        if self.armed[node].is_none() {
            self.armed.insert(node, Some(at));
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> impl Iterator<Item = NodeId> {
        [NodeId::gpu(1), NodeId::gpu(2)].into_iter()
    }

    #[test]
    fn pool_rejects_await_credit_at_zero_and_recovers() {
        let g1 = NodeId::gpu(1);
        let mut pool = CreditPool::new(nodes(), 1);
        assert_eq!(pool.take(g1), Ok(()));
        assert_eq!(pool.take(g1), Err(Reject::AwaitCredit));
        assert_eq!(pool.free(g1), 0);
        pool.put(g1);
        assert_eq!(pool.take(g1), Ok(()));
        assert_eq!(pool.grants(g1), 2);
        // The other node's credits are untouched.
        assert_eq!(pool.free(NodeId::gpu(2)), 1);
    }

    #[test]
    fn gate_round_robin_unparks_in_fifo_order() {
        let g1 = NodeId::gpu(1);
        let mut gate: CreditGate<&str> = CreditGate::new(nodes(), 1, ArbitrationKind::RoundRobin);
        assert!(gate.admit(g1).is_ok());
        assert_eq!(gate.admit(g1), Err(Reject::AwaitCredit));
        gate.park(g1, 9, "first-parked");
        gate.park(g1, 3, "second-parked");
        // FIFO ignores the priority keys: park order wins.
        assert_eq!(gate.release(g1), Some("first-parked"));
        assert_eq!(gate.release(g1), Some("second-parked"));
        assert_eq!(gate.release(g1), None);
    }

    #[test]
    fn gate_fixed_priority_unparks_lowest_key() {
        let g1 = NodeId::gpu(1);
        let mut gate: CreditGate<&str> =
            CreditGate::new(nodes(), 1, ArbitrationKind::FixedPriority);
        gate.admit(g1).unwrap();
        gate.park(g1, 9, "late-request");
        gate.park(g1, 3, "early-request");
        gate.park(g1, 5, "middle-request");
        assert_eq!(gate.release(g1), Some("early-request"));
        assert_eq!(gate.release(g1), Some("middle-request"));
        assert_eq!(gate.release(g1), Some("late-request"));
    }

    #[test]
    fn gate_overdraw_goes_negative_and_must_repay() {
        let g1 = NodeId::gpu(1);
        let mut gate: CreditGate<u32> = CreditGate::new(nodes(), 2, ArbitrationKind::RoundRobin);
        gate.admit(g1).unwrap();
        gate.admit(g1).unwrap();
        gate.overdraw(g1);
        assert_eq!(gate.free(g1), -1);
        assert_eq!(gate.admit(g1), Err(Reject::AwaitCredit));
        gate.release(g1);
        assert_eq!(gate.admit(g1), Err(Reject::AwaitCredit), "still at zero");
        gate.release(g1);
        assert!(gate.admit(g1).is_ok());
        assert_eq!(gate.grants(g1), 4);
    }

    #[test]
    fn ladder_arms_once_until_fired() {
        let g1 = NodeId::gpu(1);
        let mut ladder = WakeupLadder::new(nodes());
        assert!(ladder.arm(g1, Cycle::new(10)), "first arm schedules");
        assert!(!ladder.arm(g1, Cycle::new(10)), "duplicate suppressed");
        assert!(!ladder.arm(g1, Cycle::new(25)), "later wakeup suppressed");
        // A stray poll at a non-armed time does not disarm.
        ladder.fired(g1, Cycle::new(5));
        assert!(!ladder.arm(g1, Cycle::new(10)));
        // The armed wakeup firing re-arms the node.
        ladder.fired(g1, Cycle::new(10));
        assert!(ladder.arm(g1, Cycle::new(25)));
    }

    #[test]
    fn gate_adopts_credits_across_a_boundary() {
        let g1 = NodeId::gpu(1);
        let mut a: CreditGate<u32> = CreditGate::new(nodes(), 4, ArbitrationKind::RoundRobin);
        let mut b: CreditGate<&str> = CreditGate::new(nodes(), 4, ArbitrationKind::RoundRobin);
        b.admit(g1).unwrap();
        b.overdraw(g1);
        a.adopt_credit(&b, g1);
        assert_eq!(a.free(g1), 2);
        assert_eq!(a.grants(g1), 2);
    }
}
