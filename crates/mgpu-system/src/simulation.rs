//! The system-level timing simulation: a discrete-event model of the full
//! secure multi-GPU request path.
//!
//! ```text
//! requester ──request(ctrl VC)──▶ owner ──HBM──▶ secure NIC (pad wait)
//!    ──data+metadata (per-hop transit across the fabric)──▶ requester NIC
//!    (decrypt pad wait) ──ACK(ctrl VC)──▶ owner
//! ```
//!
//! Every resource — HBM banks, per-waypoint egress/ingress data ports,
//! per-pair control VCs, the AES engines behind each OTP scheme — is
//! booked *at the simulated time the bytes reach it*, driven by a global
//! time-ordered event queue, so contention between requests, responses,
//! ACKs and batch trailers is captured without ordering artifacts.
//!
//! This module owns only the event loop; the pipeline components live in
//! their own modules and the loop composes them:
//!
//! * [`crate::pacing`] — closed-loop issue pacing (compute gaps +
//!   per-GPU memory-level-parallelism slots),
//! * [`crate::nic_pool`] — the secure-NIC fleet, replay (ACK) tables and
//!   the deferred-send queue,
//! * [`crate::fabric`] — the routed interconnect, moving each block hop
//!   by hop ([`Ev::BlockIngress`] re-fires per waypoint on multi-hop
//!   topologies; encryption, MACs and replay protection stay end-to-end).

use crate::fabric::{Fabric, HopOutcome, Transit};
use crate::flow::{Reject, WakeupLadder};
use crate::harness::WireHarness;
use crate::metrics::RunReport;
use crate::nic_pool::NicPool;
use crate::pacing::IssuePacer;
use crate::timeseries::TimeSeriesCollector;
use mgpu_sim::dram::Hbm;
use mgpu_sim::events::EventQueue;
use mgpu_sim::link::{TrafficClass, WireParts};
use mgpu_types::{
    ByteSize, Cycle, DenseNodeMap, Duration, NodeId, OtpSchemeKind, PairId, SystemConfig,
};
use mgpu_workloads::{Benchmark, Request, TrafficModel};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU16, Ordering};

/// Process-wide default shard count, set once from `MGPU_SHARDS` by the
/// experiment runners. Individual simulations override it with
/// [`Simulation::with_shards`].
static DEFAULT_SHARDS: AtomicU16 = AtomicU16::new(1);

/// Sets the process-wide default shard (worker-thread) count used by
/// simulations that do not call [`Simulation::with_shards`]. Values
/// below 1 are clamped to 1.
pub fn set_default_shards(shards: u16) {
    DEFAULT_SHARDS.store(shards.max(1), Ordering::Relaxed);
}

/// The current process-wide default shard count.
#[must_use]
pub fn default_shards() -> u16 {
    DEFAULT_SHARDS.load(Ordering::Relaxed)
}

/// A configured, seeded simulation run.
///
/// # Examples
///
/// ```
/// use mgpu_system::Simulation;
/// use mgpu_types::SystemConfig;
/// use mgpu_workloads::Benchmark;
///
/// let report = Simulation::new(SystemConfig::paper_4gpu(), Benchmark::Mvt, 7)
///     .run_for_requests(300);
/// assert_eq!(report.requests, 4 * 300);
/// assert!(report.blocks >= report.requests);
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SystemConfig,
    benchmark: Benchmark,
    params: mgpu_workloads::WorkloadParams,
    seed: u64,
    shards: Option<u16>,
    open_loop: bool,
}

/// In-flight request bookkeeping.
struct Pending {
    requester: NodeId,
    owner: NodeId,
    blocks_left: u32,
    /// When the request arrived (its `available_at`).
    arrived_at: Cycle,
    /// Optional SLO deadline carried by the request.
    deadline: Option<Cycle>,
    /// When the request's first block became usable.
    first_byte: Option<Cycle>,
}

/// Discrete events of the request path.
enum Ev {
    /// Attempt to issue the requester's next queued request.
    TryIssue(NodeId),
    /// Request packet arrived at the owner.
    ReqArrive(usize),
    /// HBM produced the data at the owner.
    DataReady(usize),
    /// An encrypted block is ready for the owner's egress port.
    BlockEgress {
        idx: usize,
        parts: WireParts,
        counter: u64,
        acks: bool,
    },
    /// The block's bytes reached the ingress of the next waypoint on
    /// their route (on the fully-connected fabric, the destination).
    BlockIngress {
        idx: usize,
        transit: Transit,
        counter: u64,
        acks: bool,
    },
    /// The block cleared the destination ingress; run receive-side crypto.
    BlockRecv {
        idx: usize,
        counter: u64,
        acks: bool,
    },
    /// The block's data became usable at the requester.
    BlockDone { idx: usize, acks: bool },
    /// An ACK reached the original sender: free a replay-table entry.
    AckArrive(NodeId),
    /// Check a node's batcher for timeout flushes.
    FlushCheck(NodeId),
    /// A flushed batch's trailer arrived: the receiver ACKs it.
    TrailerAck { receiver: NodeId, owner: NodeId },
    /// Constant-rate shaping tick: top every control VC up to the shaped
    /// byte quota with chaff so a port observer sees the same control
    /// traffic regardless of the protected workload. Scheduled only when
    /// `config.security.defense.constant_rate`.
    ChaffTick,
    /// Observability boundary: sample the system state. Books no
    /// resources and never affects timing; scheduled only when
    /// `config.observability.enabled`.
    Sample,
}

impl Ev {
    /// Event-type label for the observability scope counters.
    fn name(&self) -> &'static str {
        match self {
            Ev::TryIssue(_) => "TryIssue",
            Ev::ReqArrive(_) => "ReqArrive",
            Ev::DataReady(_) => "DataReady",
            Ev::BlockEgress { .. } => "BlockEgress",
            Ev::BlockIngress { .. } => "BlockIngress",
            Ev::BlockRecv { .. } => "BlockRecv",
            Ev::BlockDone { .. } => "BlockDone",
            Ev::AckArrive(_) => "AckArrive",
            Ev::FlushCheck(_) => "FlushCheck",
            Ev::TrailerAck { .. } => "TrailerAck",
            Ev::ChaffTick => "ChaffTick",
            Ev::Sample => "Sample",
        }
    }
}

impl Simulation {
    /// Creates a simulation of `benchmark` under `config` with a fixed
    /// RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    #[must_use]
    pub fn new(config: SystemConfig, benchmark: Benchmark, seed: u64) -> Self {
        config.validate().expect("valid system configuration");
        Simulation {
            config,
            benchmark,
            params: benchmark.params(),
            seed,
            shards: None,
            open_loop: false,
        }
    }

    /// Switches issue pacing to open-loop: requests become eligible at
    /// their absolute `available_at` cycles (external arrivals, as in
    /// inference serving) instead of replaying compute gaps relative to
    /// the previous issue. Queueing delay from saturated issue slots then
    /// shows up in [`RunReport::latency`] rather than shifting arrivals.
    #[must_use]
    pub fn with_open_loop(mut self) -> Self {
        self.open_loop = true;
        self
    }

    /// Overrides the shard (worker-thread) count for this simulation,
    /// taking precedence over the process-wide default set by
    /// [`set_default_shards`]. The run is bit-for-bit identical for any
    /// shard count (see DESIGN.md §11); sharding only changes wall-clock
    /// time. Values below 1 are clamped to 1.
    #[must_use]
    pub fn with_shards(mut self, shards: u16) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Overrides the workload parameters (calibration sweeps).
    #[must_use]
    pub fn with_workload_params(mut self, params: mgpu_workloads::WorkloadParams) -> Self {
        self.params = params;
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the workload with `per_gpu` remote requests per GPU and
    /// returns the collected metrics.
    #[must_use]
    pub fn run_for_requests(&self, per_gpu: usize) -> RunReport {
        let model = TrafficModel::with_params(
            self.benchmark,
            self.params,
            self.config.gpu_count,
            self.seed,
        );
        let mut queues: BTreeMap<NodeId, VecDeque<Request>> = BTreeMap::new();
        for gpu in 1..=self.config.gpu_count {
            let node = NodeId::gpu(gpu);
            queues.insert(node, model.generate_for(node, per_gpu).into());
        }
        self.run_requests(queues)
    }

    /// Runs an explicit request stream (grouped per requester). Used by
    /// tests and the address-trace mode.
    #[must_use]
    pub fn run_trace(&self, requests: Vec<Request>) -> RunReport {
        let mut queues: BTreeMap<NodeId, VecDeque<Request>> = BTreeMap::new();
        for r in requests {
            queues.entry(r.requester).or_default().push_back(r);
        }
        for q in queues.values_mut() {
            q.make_contiguous().sort_by_key(|r| r.available_at);
        }
        self.run_requests(queues)
    }

    pub(crate) fn secure(&self) -> bool {
        self.config.security.scheme != OtpSchemeKind::Unsecure
    }

    pub(crate) fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    pub(crate) fn is_open_loop(&self) -> bool {
        self.open_loop
    }

    /// Per-GPU in-flight limit: the lower of the hardware MLP cap and the
    /// kernel's achievable memory-level parallelism.
    pub(crate) fn slots_per_gpu(&self) -> u32 {
        self.config
            .max_outstanding
            .min(self.params.outstanding)
            .max(1)
    }

    /// Resolves the shard count this run will actually use. The request
    /// (`with_shards` override, else the process default) is clamped to
    /// the node count and forced to 1 where the sharded engine does not
    /// apply:
    ///
    /// * adversarial runs — the wire harness is a single functional
    ///   pipeline that must observe crossings in global order;
    /// * constant-rate traffic shaping — each tick tops up every pair's
    ///   control VC from a global byte-counter view;
    /// * observability intervals shorter than the lookahead — a sample
    ///   replica is re-armed one window late, so boundaries must be at
    ///   least one lookahead apart;
    /// * zero link latency — the conservative window would be empty.
    fn effective_shards(&self) -> u16 {
        let requested = self.shards.unwrap_or_else(default_shards).max(1);
        let nodes = u16::try_from(self.config.node_count()).unwrap_or(u16::MAX);
        let mut shards = requested.min(nodes);
        if self.secure() && self.config.adversary.enabled {
            shards = 1;
        }
        // Constant-rate shaping reads every pair's control-VC counter at
        // each tick — a global view the per-shard fabric replicas do not
        // have (jitter needs no such view and shards freely).
        if self.secure() && self.config.security.defense.constant_rate {
            shards = 1;
        }
        if self.secure()
            && self.config.observability.enabled
            && self.config.security.dynamic.interval < self.config.link_latency
        {
            shards = 1;
        }
        if self.config.link_latency == Duration::ZERO {
            shards = 1;
        }
        shards
    }

    #[allow(clippy::too_many_lines)]
    fn run_requests(&self, queues: BTreeMap<NodeId, VecDeque<Request>>) -> RunReport {
        let shards = self.effective_shards();
        if shards > 1 {
            return crate::sharded::run(self, queues, shards);
        }
        let cfg = &self.config;
        let wire = mgpu_secure::protocol::WireFormat::default();
        let mut fabric = Fabric::new(cfg);
        let mut hbm: DenseNodeMap<Hbm> = NodeId::all(cfg.gpu_count)
            .map(|n| (n, Hbm::new(512, cfg.dram_latency)))
            .collect();
        let mut pool = NicPool::new(cfg, self.secure());
        // Adversarial runs thread every protected crossing through the
        // functional wire harness, which injects seeded faults and checks
        // that a defense catches each one.
        let mut harness = (self.secure() && cfg.adversary.enabled).then(|| WireHarness::new(cfg));

        // Per-GPU in-flight limit: the lower of the hardware MLP cap and
        // the kernel's achievable memory-level parallelism.
        let slots_per_gpu = cfg.max_outstanding.min(self.params.outstanding).max(1);
        let mut pacer = if self.open_loop {
            IssuePacer::open_loop(queues, slots_per_gpu)
        } else {
            IssuePacer::new(queues, slots_per_gpu)
        };

        let mut events: EventQueue<Ev> = EventQueue::new();
        for node in pacer.nodes().collect::<Vec<_>>() {
            events.schedule(Cycle::ZERO, Ev::TryIssue(node));
        }
        // Gap-wakeup dedup (see `flow::WakeupLadder` and DESIGN.md §10):
        // a `NotBefore` reject arms at most one wakeup per node, so the
        // duplicate-poll population cannot grow and no wakeup is lost.
        let mut ladder = WakeupLadder::new(pacer.nodes());

        // Observability is opt-in and zero-cost when off: every hook below
        // is behind this Option. Sampling aligns with the repartition
        // interval so each sample captures the just-applied allocation.
        let sample_every = cfg.security.dynamic.interval;
        let mut collector = (self.secure() && cfg.observability.enabled)
            .then(|| TimeSeriesCollector::new(&cfg.observability, sample_every));
        let mut sample_pending = false;
        if collector.is_some() && !events.is_empty() {
            events.schedule(Cycle::ZERO + sample_every, Ev::Sample);
            sample_pending = true;
        }

        // Constant-rate traffic shaping: a periodic tick pads every
        // control VC up to the per-period byte envelope with chaff, so
        // the control traffic a port observer sees is workload- and
        // scheme-independent (as long as the envelope bounds the real
        // metadata rate).
        let shaping = self.secure() && cfg.security.defense.constant_rate;
        let shape_period = cfg.security.defense.shape_period;
        if shaping && !events.is_empty() {
            events.schedule(Cycle::ZERO + shape_period, Ev::ChaffTick);
        }

        let mut pending: Vec<Pending> = Vec::new();
        let mut completion = Cycle::ZERO;
        let mut sum_latency = Duration::ZERO;
        let mut latency = crate::metrics::LatencyReport::default();
        let mut issue_times: Vec<Cycle> = Vec::new();
        let mut last_issue = Cycle::ZERO;
        let mut requests_done = 0u64;
        let mut blocks_done = 0u64;
        let mut acks_sent = 0u64;
        let mut events_processed = 0u64;

        while let Some((now, ev)) = events.pop() {
            events_processed += 1;
            if let Some(col) = collector.as_mut() {
                col.note_event(ev.name());
            }
            match ev {
                Ev::TryIssue(node) => {
                    ladder.fired(node, now);
                    match pacer.poll(node, now) {
                        Err(Reject::Drained | Reject::AwaitCredit) => {
                            // Drained: nothing left. AwaitCredit: a
                            // completion returns the slot and re-polls.
                        }
                        Err(Reject::NotBefore(avail)) => {
                            if ladder.arm(node, avail) {
                                events.schedule(avail, Ev::TryIssue(node));
                            }
                        }
                        Ok(request) => {
                            last_issue = last_issue.max(now);
                            let idx = pending.len();
                            pending.push(Pending {
                                requester: request.requester,
                                owner: request.target,
                                blocks_left: request.kind.blocks(),
                                arrived_at: request.available_at,
                                deadline: request.deadline,
                                first_byte: None,
                            });
                            issue_times.push(now);
                            let to_owner = PairId::new(request.requester, request.target);
                            let arrive = fabric.transmit_ctrl(
                                to_owner,
                                now,
                                &[(wire.request, TrafficClass::Data)],
                            );
                            events.schedule(arrive, Ev::ReqArrive(idx));
                            // Another request may issue this same cycle.
                            events.schedule(now, Ev::TryIssue(node));
                        }
                    }
                }
                Ev::ReqArrive(idx) => {
                    let owner = pending[idx].owner;
                    let payload = if pending[idx].blocks_left > 1 {
                        ByteSize::PAGE
                    } else {
                        ByteSize::CACHELINE
                    };
                    let data_ready = hbm
                        .get_mut(owner)
                        .expect("owner within system")
                        .access(now, payload);
                    events.schedule(data_ready, Ev::DataReady(idx));
                }
                Ev::DataReady(idx) => {
                    let owner = pending[idx].owner;
                    let requester = pending[idx].requester;
                    let blocks = pending[idx].blocks_left;
                    if self.secure() {
                        for _ in 0..blocks {
                            let prep = pool.prepare_send(owner, now, requester);
                            if prep.acks && cfg.security.batching.enabled {
                                if let Some(col) = collector.as_mut() {
                                    col.record_batch_close(now, owner, true);
                                }
                            }
                            events.schedule(
                                prep.ready,
                                Ev::BlockEgress {
                                    idx,
                                    parts: prep.parts,
                                    counter: prep.counter,
                                    acks: prep.acks,
                                },
                            );
                        }
                        if let Some(deadline) = pool.next_flush_deadline(owner) {
                            events.schedule(deadline.max(now), Ev::FlushCheck(owner));
                        }
                    } else {
                        for _ in 0..blocks {
                            events.schedule(
                                now,
                                Ev::BlockEgress {
                                    idx,
                                    parts: WireParts::of(
                                        wire.header + wire.block,
                                        TrafficClass::Data,
                                    ),
                                    counter: 0,
                                    acks: false,
                                },
                            );
                        }
                    }
                }
                Ev::BlockEgress {
                    idx,
                    parts,
                    counter,
                    acks,
                } => {
                    let owner = pending[idx].owner;
                    let pair = PairId::new(owner, pending[idx].requester);
                    // Egress admission first: a credit reject reschedules
                    // the whole egress at the credit-free cycle before any
                    // irreversible side effect (the ACK window reservation
                    // below), so a retry never double-reserves.
                    if let Err(busy) = fabric.egress_ready(pair, now) {
                        events.schedule(
                            busy.retry_at,
                            Ev::BlockEgress {
                                idx,
                                parts,
                                counter,
                                acks,
                            },
                        );
                        continue;
                    }
                    if acks {
                        // This block carries a MsgMAC (unbatched block or
                        // batch closer): it must hold a replay-table entry
                        // until its ACK returns. A full table defers the
                        // release.
                        if pool.admit_ack(owner).is_err() {
                            pool.defer(owner, idx as u64, (idx, parts, counter));
                            continue;
                        }
                    }
                    let (at, transit) = fabric.begin(pair, now, parts);
                    events.schedule(
                        at,
                        Ev::BlockIngress {
                            idx,
                            transit,
                            counter,
                            acks,
                        },
                    );
                }
                Ev::BlockIngress {
                    idx,
                    transit,
                    counter,
                    acks,
                } => match fabric.advance(transit, now) {
                    HopOutcome::Forwarded { at, transit } => {
                        events.schedule(
                            at,
                            Ev::BlockIngress {
                                idx,
                                transit,
                                counter,
                                acks,
                            },
                        );
                    }
                    HopOutcome::Delivered { at } => {
                        events.schedule(at, Ev::BlockRecv { idx, counter, acks });
                    }
                    HopOutcome::Blocked { retry_at, transit } => {
                        // Typed credit backpressure from the onward hop:
                        // one retry at the exact credit-free cycle, no
                        // re-polling. The token holds its ingress booking.
                        events.schedule(
                            retry_at,
                            Ev::BlockIngress {
                                idx,
                                transit,
                                counter,
                                acks,
                            },
                        );
                    }
                },
                Ev::BlockRecv { idx, counter, acks } => {
                    let usable = if self.secure() {
                        let requester = pending[idx].requester;
                        let owner = pending[idx].owner;
                        if let Some(h) = harness.as_mut() {
                            let tampered = h.on_block(now, owner, requester);
                            if tampered > 0 {
                                fabric.note_tampered_egress(owner, tampered);
                            }
                        }
                        pool.receive(requester, now, owner, counter)
                    } else {
                        now
                    };
                    events.schedule(usable, Ev::BlockDone { idx, acks });
                }
                Ev::BlockDone { idx, acks } => {
                    blocks_done += 1;
                    if pending[idx].first_byte.is_none() {
                        pending[idx].first_byte = Some(now);
                    }
                    if acks {
                        let requester = pending[idx].requester;
                        let owner = pending[idx].owner;
                        let ack = pool.ack_bytes(requester);
                        if ack > ByteSize::ZERO {
                            let back = fabric.transmit_ctrl(
                                PairId::new(requester, owner),
                                now,
                                &[(ack, TrafficClass::Ack)],
                            );
                            acks_sent += 1;
                            events.schedule(back, Ev::AckArrive(owner));
                        } else {
                            // Metadata-free ablation: the table entry still
                            // frees after the ACK flight time.
                            events.schedule(now + cfg.link_latency, Ev::AckArrive(owner));
                        }
                    }
                    pending[idx].blocks_left -= 1;
                    if pending[idx].blocks_left == 0 {
                        let requester = pending[idx].requester;
                        completion = completion.max(now);
                        sum_latency += now.saturating_since(issue_times[idx]);
                        latency.record(
                            pending[idx].arrived_at,
                            issue_times[idx],
                            pending[idx]
                                .first_byte
                                .expect("block done implies first byte"),
                            now,
                            pending[idx].deadline,
                        );
                        requests_done += 1;
                        pacer.complete(requester);
                        events.schedule(now, Ev::TryIssue(requester));
                    }
                }
                Ev::AckArrive(owner) => {
                    if let Some((idx, parts, counter)) = pool.release_ack(owner) {
                        events.schedule(
                            now,
                            Ev::BlockEgress {
                                idx,
                                parts,
                                counter,
                                acks: true,
                            },
                        );
                    }
                }
                Ev::FlushCheck(owner) => {
                    let flushed = pool.flush_due(owner, now);
                    for (dst, mac_bytes) in flushed {
                        if let Some(col) = collector.as_mut() {
                            col.record_batch_close(now, owner, false);
                        }
                        if let Some(h) = harness.as_mut() {
                            let tampered = h.on_flush(now, owner, dst);
                            if tampered > 0 {
                                fabric.note_tampered_egress(owner, tampered);
                            }
                        }
                        // A flushed batch closes: its trailer occupies a
                        // replay-table entry until the batch ACK returns.
                        pool.overdraw_ack(owner);
                        let arrive = fabric.transmit_ctrl(
                            PairId::new(owner, dst),
                            now,
                            &[(mac_bytes, TrafficClass::Mac)],
                        );
                        events.schedule(
                            arrive,
                            Ev::TrailerAck {
                                receiver: dst,
                                owner,
                            },
                        );
                    }
                    if let Some(deadline) = pool.next_flush_deadline(owner) {
                        events.schedule(deadline.max(now), Ev::FlushCheck(owner));
                    }
                }
                Ev::TrailerAck { receiver, owner } => {
                    let ack = pool.ack_bytes(receiver);
                    if ack > ByteSize::ZERO {
                        let back = fabric.transmit_ctrl(
                            PairId::new(receiver, owner),
                            now,
                            &[(ack, TrafficClass::Ack)],
                        );
                        acks_sent += 1;
                        events.schedule(back, Ev::AckArrive(owner));
                    } else {
                        events.schedule(now + cfg.link_latency, Ev::AckArrive(owner));
                    }
                }
                Ev::ChaffTick => {
                    shape_topup(&mut fabric, cfg, now);
                    // Keep shaping while real work remains. A queue
                    // holding only the Sample chain means the run is
                    // over — rescheduling then would keep the two
                    // housekeeping chains alive forever.
                    if events.len() > usize::from(sample_pending) {
                        events.schedule(now + shape_period, Ev::ChaffTick);
                    }
                }
                Ev::Sample => {
                    sample_pending = false;
                    let col = collector
                        .as_mut()
                        .expect("Sample only scheduled with collector");
                    // Force interval processing at the boundary so the
                    // sample reflects the boundary allocation (timing-
                    // equivalent to the lazy path — see `timeseries`).
                    pool.advance_all(now);
                    if shaping {
                        // Top up at the boundary too: the quota-based
                        // top-up is idempotent, so whichever of the tick
                        // and the sample pops first at a shared cycle,
                        // the sample sees fully shaped counters.
                        shape_topup(&mut fabric, cfg, now);
                    }
                    if let Some(h) = harness.as_mut() {
                        for ev in h.take_trace() {
                            col.record_security_event(&ev);
                        }
                    }
                    col.sample(now, &pool, &fabric);
                    // Keep pace with the run, but never outlive it: a
                    // Sample is never the only event left in the queue.
                    if !events.is_empty() {
                        events.schedule(now + sample_every, Ev::Sample);
                        sample_pending = true;
                    }
                }
            }
        }

        // Drain any still-open batches at end of run.
        if self.secure() {
            drain_open_batches(
                &mut pool,
                &mut fabric,
                &mut harness,
                &mut collector,
                completion,
                &mut acks_sent,
            );
        }

        // Any batches still open in the harness (its functional batcher
        // may lag the NIC's timing batcher by a partial batch) flush now.
        if let Some(h) = harness.as_mut() {
            for (src, tampered) in h.finish(completion) {
                fabric.note_tampered_egress(src, tampered);
            }
        }

        // Detections after the last boundary sample still reach the trace.
        if let Some(col) = collector.as_mut() {
            if let Some(h) = harness.as_mut() {
                for ev in h.take_trace() {
                    col.record_security_event(&ev);
                }
            }
        }

        let (otp, pads_issued, mean_batch_occupancy) = pool.otp_summary();
        latency.finish();

        RunReport {
            benchmark: self.benchmark,
            scheme: cfg.security.scheme,
            batching: cfg.security.batching.enabled,
            total_cycles: completion.saturating_since(Cycle::ZERO),
            requests: requests_done,
            blocks: blocks_done,
            traffic: fabric.traffic_totals(),
            otp,
            acks_sent,
            pads_issued,
            mean_batch_occupancy,
            sum_request_latency: sum_latency,
            latency,
            last_issue: last_issue.saturating_since(Cycle::ZERO),
            tampered_crossings: fabric.tampered_total(),
            security: harness.map(WireHarness::into_log).unwrap_or_default(),
            timeline: collector.map(TimeSeriesCollector::finish),
            events_processed,
        }
    }
}

/// Tops every control VC up to the constant-rate quota with chaff: by
/// cycle `k * shape_period`, each directed pair must have carried at
/// least `k * shape_bytes` *and taken at least `k * shape_grants`
/// arbitration grants* on its control VC. Byte counts alone do not
/// close the channel — a co-located observer also sees how many
/// arbitration slots the VC takes, so the deficit is padded as exactly
/// `grant_deficit` chaff messages (each >= 1 byte, the last carrying
/// the byte remainder). Real metadata counts toward both quotas; per
/// period the on-wire channel then shows `max(shape_bytes, real)` bytes
/// in `max(shape_grants, real)` grants — constant, hence
/// workload-independent, whenever the envelope bounds both real rates.
/// Quota-based and read from the VC's own counters, the top-up is
/// idempotent: re-running it at the same cycle books nothing.
///
/// When real traffic exceeds one arm of the envelope (grants at quota
/// but bytes below, or a byte deficit smaller than the grant deficit),
/// the top-up pads as much as it can without overshooting the other
/// arm; identity degrades gracefully and the run is no longer
/// workload-independent — pick a generous envelope.
fn shape_topup(fabric: &mut Fabric, cfg: &SystemConfig, now: Cycle) {
    let d = &cfg.security.defense;
    let periods = now.as_u64() / d.shape_period.as_u64();
    let byte_quota = u64::from(d.shape_bytes) * periods;
    let grant_quota = u64::from(d.shape_grants) * periods;
    if periods == 0 {
        return;
    }
    for src in NodeId::all(cfg.gpu_count) {
        for dst in src.peers(cfg.gpu_count) {
            let pair = PairId::new(src, dst);
            let vc = fabric.topology().ctrl(pair);
            let byte_deficit = byte_quota.saturating_sub(vc.vc_bytes(mgpu_sim::Vc::Ctrl));
            let grant_deficit = grant_quota.saturating_sub(vc.grants(mgpu_sim::Vc::Ctrl));
            // Each chaff message needs >= 1 byte; never exceed either
            // quota, so the message count is bounded by both deficits.
            let messages = grant_deficit.min(byte_deficit);
            if messages == 0 {
                continue;
            }
            for i in 0..messages {
                let bytes = if i + 1 == messages {
                    byte_deficit - (messages - 1)
                } else {
                    1
                };
                fabric.transmit_ctrl(pair, now, &[(ByteSize::new(bytes), TrafficClass::Chaff)]);
            }
        }
    }
}

/// Drains every still-open batch at end of run: flushes each owner's
/// batchers, accounts the trailer and ACK control messages at
/// `completion`, and records the batch-close trace events. Shared by the
/// single-thread loop and the sharded coordinator (which runs it on the
/// merged pool against a fresh fabric — control-VC byte accounting is
/// state-independent, and post-run arrival times are discarded).
pub(crate) fn drain_open_batches(
    pool: &mut NicPool,
    fabric: &mut Fabric,
    harness: &mut Option<WireHarness>,
    collector: &mut Option<TimeSeriesCollector>,
    completion: Cycle,
    acks_sent: &mut u64,
) {
    for owner in pool.owners() {
        let drained = pool.flush_all(owner);
        for (dst, mac_bytes) in drained {
            if let Some(col) = collector.as_mut() {
                col.record_batch_close(completion, owner, false);
            }
            if let Some(h) = harness.as_mut() {
                let tampered = h.on_flush(completion, owner, dst);
                if tampered > 0 {
                    fabric.note_tampered_egress(owner, tampered);
                }
            }
            fabric.transmit_ctrl(
                PairId::new(owner, dst),
                completion,
                &[(mac_bytes, TrafficClass::Mac)],
            );
            let ack = pool.ack_bytes(dst);
            if ack > ByteSize::ZERO {
                fabric.transmit_ctrl(
                    PairId::new(dst, owner),
                    completion,
                    &[(ack, TrafficClass::Ack)],
                );
                *acks_sent += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_types::{Direction, TopologyKind};

    fn config(scheme: OtpSchemeKind) -> SystemConfig {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.scheme = scheme;
        cfg
    }

    fn run(scheme: OtpSchemeKind, benchmark: Benchmark) -> RunReport {
        Simulation::new(config(scheme), benchmark, 42).run_for_requests(400)
    }

    #[test]
    fn unsecure_run_has_no_metadata_traffic() {
        let r = run(OtpSchemeKind::Unsecure, Benchmark::Atax);
        assert_eq!(r.traffic.metadata().as_u64(), 0);
        assert_eq!(r.acks_sent, 0);
        assert_eq!(r.otp.total(Direction::Send), 0);
        assert!(r.total_cycles.as_u64() > 0);
        assert_eq!(r.requests, 4 * 400);
    }

    #[test]
    fn secure_run_is_slower_and_heavier() {
        let base = run(OtpSchemeKind::Unsecure, Benchmark::Spmv);
        let sec = run(OtpSchemeKind::Private, Benchmark::Spmv);
        assert!(sec.total_cycles > base.total_cycles);
        assert!(sec.traffic.total() > base.traffic.total());
        assert!(sec.traffic.metadata().as_u64() > 0);
        assert!(sec.acks_sent > 0);
        assert_eq!(sec.otp.total(Direction::Send), sec.blocks);
        assert_eq!(sec.otp.total(Direction::Recv), sec.blocks);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(OtpSchemeKind::Cached, Benchmark::Fft);
        let b = run(OtpSchemeKind::Cached, Benchmark::Fft);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.traffic.total(), b.traffic.total());
    }

    #[test]
    fn shared_is_slowest_scheme() {
        let private = run(OtpSchemeKind::Private, Benchmark::PageRank);
        let shared = run(OtpSchemeKind::Shared, Benchmark::PageRank);
        assert!(
            shared.total_cycles >= private.total_cycles,
            "shared {} < private {}",
            shared.total_cycles,
            private.total_cycles
        );
    }

    #[test]
    fn batching_reduces_metadata_traffic_and_acks() {
        let mut cfg = config(OtpSchemeKind::Dynamic);
        let plain =
            Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42).run_for_requests(400);
        cfg.security.batching.enabled = true;
        let batched = Simulation::new(cfg, Benchmark::MatrixTranspose, 42).run_for_requests(400);
        assert!(
            batched.traffic.metadata() < plain.traffic.metadata(),
            "batched {} >= plain {}",
            batched.traffic.metadata(),
            plain.traffic.metadata()
        );
        assert!(batched.acks_sent < plain.acks_sent);
        assert!(batched.mean_batch_occupancy > 1.0);
    }

    #[test]
    fn metadata_ablation_sits_between_unsecure_and_full() {
        let base = run(OtpSchemeKind::Unsecure, Benchmark::Syr2k);
        let mut cfg = config(OtpSchemeKind::Private);
        cfg.security.charge_metadata_traffic = false;
        let commu_only = Simulation::new(cfg, Benchmark::Syr2k, 42).run_for_requests(400);
        let full = run(OtpSchemeKind::Private, Benchmark::Syr2k);
        assert!(commu_only.total_cycles >= base.total_cycles);
        assert!(full.total_cycles >= commu_only.total_cycles);
        assert_eq!(commu_only.traffic.metadata().as_u64(), 0);
    }

    #[test]
    fn page_migrations_move_64_blocks() {
        let r = run(OtpSchemeKind::Unsecure, Benchmark::FloydWarshall);
        assert!(
            r.blocks > r.requests + 60,
            "blocks {} requests {}",
            r.blocks,
            r.requests
        );
    }

    #[test]
    fn run_trace_accepts_explicit_requests() {
        let cfg = config(OtpSchemeKind::Private);
        let reqs = vec![
            Request::direct(Cycle::new(0), NodeId::gpu(1), NodeId::gpu(2)),
            Request::direct(Cycle::new(5), NodeId::gpu(2), NodeId::CPU),
            Request::migration(Cycle::new(9), NodeId::gpu(3), NodeId::gpu(1)),
        ];
        let r = Simulation::new(cfg, Benchmark::Atax, 0).run_trace(reqs);
        assert_eq!(r.requests, 3);
        assert_eq!(r.blocks, 1 + 1 + 64);
    }

    #[test]
    fn empty_trace_is_fine() {
        let cfg = config(OtpSchemeKind::Private);
        let r = Simulation::new(cfg, Benchmark::Atax, 0).run_trace(Vec::new());
        assert_eq!(r.requests, 0);
        assert_eq!(r.total_cycles.as_u64(), 0);
    }

    #[test]
    fn request_latency_includes_round_trip() {
        let cfg = config(OtpSchemeKind::Unsecure);
        let reqs = vec![Request::direct(
            Cycle::new(0),
            NodeId::gpu(1),
            NodeId::gpu(2),
        )];
        let r = Simulation::new(cfg.clone(), Benchmark::Atax, 0).run_trace(reqs);
        // request ser 1 + latency 100 + dram 200+1 + egress 2+100 + ingress 2.
        let expected = 1 + 100 + 201 + 2 + 100 + 2;
        assert_eq!(r.total_cycles.as_u64(), expected);
    }

    #[test]
    fn fault_free_run_logs_no_security_events() {
        let r = run(OtpSchemeKind::Private, Benchmark::Atax);
        assert!(r.security.is_clean());
        assert_eq!(r.tampered_crossings, 0);
    }

    #[test]
    fn adversarial_run_detects_every_injection() {
        use mgpu_types::AdversaryConfig;
        for batching in [false, true] {
            let mut cfg = config(OtpSchemeKind::Dynamic);
            cfg.security.batching.enabled = batching;
            cfg.adversary = AdversaryConfig::active(100);
            let r = Simulation::new(cfg, Benchmark::MatrixTranspose, 42).run_for_requests(300);
            let log = &r.security;
            assert!(log.total_injected() > 0, "batching={batching}");
            assert_eq!(log.total_missed(), 0, "batching={batching}: {log:?}");
            assert_eq!(log.false_positives(), 0, "batching={batching}: {log:?}");
            assert!((log.detection_rate() - 1.0).abs() < f64::EPSILON);
            assert!(r.tampered_crossings > 0);
            assert!(!log.pair_detections().is_empty());
        }
    }

    #[test]
    fn adversarial_runs_are_deterministic() {
        use mgpu_types::AdversaryConfig;
        let mut cfg = config(OtpSchemeKind::Dynamic);
        cfg.security.batching.enabled = true;
        cfg.adversary = AdversaryConfig::active(150);
        let a = Simulation::new(cfg.clone(), Benchmark::Spmv, 42).run_for_requests(250);
        let b = Simulation::new(cfg, Benchmark::Spmv, 42).run_for_requests(250);
        assert_eq!(a.security, b.security);
        assert_eq!(a.tampered_crossings, b.tampered_crossings);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn adversary_does_not_change_timing() {
        use mgpu_types::AdversaryConfig;
        let clean = run(OtpSchemeKind::Private, Benchmark::Spmv);
        let mut cfg = config(OtpSchemeKind::Private);
        cfg.adversary = AdversaryConfig::active(200);
        let attacked = Simulation::new(cfg, Benchmark::Spmv, 42).run_for_requests(400);
        // The attacker rewrites bytes in flight: detection is a security
        // outcome, not a performance one.
        assert_eq!(clean.total_cycles, attacked.total_cycles);
        assert_eq!(clean.traffic.total(), attacked.traffic.total());
    }

    #[test]
    fn multi_hop_topologies_run_end_to_end() {
        for kind in [TopologyKind::Ring, TopologyKind::Switch { radix: 4 }] {
            let mut cfg = config(OtpSchemeKind::Dynamic);
            cfg.gpu_count = 8;
            cfg.topology = kind;
            let r = Simulation::new(cfg, Benchmark::Spmv, 42).run_for_requests(150);
            assert_eq!(r.requests, 8 * 150, "{kind}");
            assert!(r.traffic.metadata().as_u64() > 0, "{kind}");
            assert!(r.security.is_clean(), "{kind}");
        }
    }

    #[test]
    fn multi_hop_amplifies_traffic_and_slows_completion() {
        let mut fc = config(OtpSchemeKind::Private);
        fc.gpu_count = 8;
        let flat = Simulation::new(fc.clone(), Benchmark::Spmv, 42).run_for_requests(150);
        let mut ring = fc.clone();
        ring.topology = TopologyKind::Ring;
        let ringed = Simulation::new(ring, Benchmark::Spmv, 42).run_for_requests(150);
        assert!(
            ringed.traffic.total() > flat.traffic.total(),
            "ring {} <= fc {}",
            ringed.traffic.total(),
            flat.traffic.total()
        );
        assert!(
            ringed.total_cycles >= flat.total_cycles,
            "ring {} < fc {}",
            ringed.total_cycles,
            flat.total_cycles
        );
    }

    #[test]
    fn adversarial_detection_holds_on_multi_hop_fabrics() {
        use mgpu_types::AdversaryConfig;
        let mut cfg = config(OtpSchemeKind::Dynamic);
        cfg.gpu_count = 8;
        cfg.topology = TopologyKind::Ring;
        cfg.security.batching.enabled = true;
        cfg.adversary = AdversaryConfig::active(100);
        let r = Simulation::new(cfg, Benchmark::MatrixTranspose, 42).run_for_requests(200);
        assert!(r.security.total_injected() > 0);
        assert_eq!(r.security.total_missed(), 0, "{:?}", r.security);
        assert_eq!(r.security.false_positives(), 0);
    }

    #[test]
    #[should_panic(expected = "valid system configuration")]
    fn invalid_config_panics() {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.gpu_count = 0;
        let _ = Simulation::new(cfg, Benchmark::Atax, 0);
    }
}
