//! Per-node secure NIC: crypto engine + OTP scheme + metadata batcher.
//!
//! The NIC sits between a node's memory system and its links. For every
//! outgoing data block it consults the OTP scheme (exposed pad latency),
//! decides the block's wire metadata (batched or not), and reports when
//! the block's batch closes so the simulation can charge the batched MAC
//! and the single ACK. Incoming blocks symmetrically pay the receive-side
//! pad latency.

use mgpu_crypto::AesEngine;
use mgpu_secure::batching::SenderBatcher;
use mgpu_secure::protocol::WireFormat;
use mgpu_secure::schemes::{build_scheme, OtpScheme, SchemeTelemetry};
use mgpu_sim::link::{TrafficClass, WireParts};
use mgpu_types::{ByteSize, Cycle, DenseNodeMap, Duration, NodeId, SystemConfig};

/// What the NIC decided for one outgoing block.
#[derive(Debug, Clone)]
pub struct PreparedBlock {
    /// Cycle at which the (encrypted, MACed) block is ready for the wire.
    pub ready: Cycle,
    /// The message counter carried by the block.
    pub counter: u64,
    /// Wire components to transmit together with the data.
    pub parts: WireParts,
    /// `true` when this block closed a batch (or is unbatched): exactly
    /// these blocks trigger an ACK from the receiver.
    pub acks: bool,
}

/// A node's secure network interface.
pub struct SecureNic {
    engine: AesEngine,
    scheme: Box<dyn OtpScheme>,
    wire: WireFormat,
    batching: bool,
    charge_metadata: bool,
    batcher: SenderBatcher,
    open_counts: DenseNodeMap<u32>,
    batch_size: u32,
}

impl core::fmt::Debug for SecureNic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SecureNic")
            .field("scheme", &self.scheme.kind())
            .field("batching", &self.batching)
            .finish_non_exhaustive()
    }
}

impl SecureNic {
    /// Builds the NIC for node `me` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configured scheme is `Unsecure` (the simulation
    /// bypasses the NIC entirely in that case).
    #[must_use]
    pub fn new(me: NodeId, config: &SystemConfig) -> Self {
        let mut engine = AesEngine::new(config.security.aes_latency);
        let scheme = build_scheme(me, config, &mut engine);
        let b = &config.security.batching;
        let mut batcher = SenderBatcher::new(b.batch_size, b.flush_timeout);
        if b.deadline_close {
            batcher = batcher.with_deadline_close(b.deadline_slack);
        }
        let d = &config.security.defense;
        if d.close_jitter {
            // Each sender draws from its own jitter subsequence so an
            // observer cannot cancel the offsets across ports.
            let seed = d.jitter_seed.wrapping_add(u64::from(me.raw()) << 16);
            batcher = batcher.with_close_jitter(d.jitter_bound, seed);
        }
        SecureNic {
            engine,
            scheme,
            wire: WireFormat::default(),
            batching: b.enabled,
            charge_metadata: config.security.charge_metadata_traffic,
            batcher,
            open_counts: DenseNodeMap::new(),
            batch_size: b.batch_size,
        }
    }

    /// The wire format used for metadata sizing.
    #[must_use]
    pub fn wire(&self) -> &WireFormat {
        &self.wire
    }

    /// Prepares one outgoing data block to `dst` whose payload is ready at
    /// `now`. Returns timing, metadata parts, and whether an ACK is due.
    pub fn prepare_send(&mut self, now: Cycle, dst: NodeId) -> PreparedBlock {
        self.scheme.advance(now, &mut self.engine);
        let outcome = self.scheme.on_send(now, dst, &mut self.engine);
        let exposed = outcome.timing.exposed_latency(self.engine.latency());
        let ready = now + exposed;

        let mut parts = WireParts::of(self.wire.header + self.wire.block, TrafficClass::Data);
        let acks;
        if !self.charge_metadata {
            // +SecureCommu ablation: latency modeled, metadata bytes free,
            // and no ACK bandwidth either.
            acks = false;
        } else if self.batching {
            let index = self.open_counts.get(dst).copied().unwrap_or(0);
            parts.push(
                self.wire.msg_ctr + self.wire.sender_id,
                TrafficClass::Counter,
            );
            if index == 0 {
                parts.push(self.wire.batch_len, TrafficClass::BatchHeader);
            }
            let closed = self.batcher.add_block(now, dst, [0; 8]);
            if closed.is_some() {
                parts.push(self.wire.msg_mac, TrafficClass::Mac);
                self.open_counts.insert(dst, 0);
                acks = true;
            } else {
                self.open_counts.insert(dst, index + 1);
                acks = false;
            }
        } else {
            parts.push(self.wire.msg_ctr, TrafficClass::Counter);
            parts.push(self.wire.msg_mac, TrafficClass::Mac);
            parts.push(self.wire.sender_id, TrafficClass::SenderId);
            acks = true;
        }
        PreparedBlock {
            ready,
            counter: outcome.counter,
            parts,
            acks,
        }
    }

    /// Flushes batches older than the timeout at `now`; returns one
    /// `(destination, mac_bytes)` entry per flushed batch — the standalone
    /// MAC message to transmit (an ACK follows from each destination).
    pub fn flush_due(&mut self, now: Cycle) -> Vec<(NodeId, ByteSize)> {
        if !self.batching {
            return Vec::new();
        }
        self.batcher
            .flush_due(now)
            .into_iter()
            .map(|b| {
                self.open_counts.insert(b.dst, 0);
                (b.dst, self.wire.msg_mac)
            })
            .collect()
    }

    /// Drains every open batch at end of run (same contract as
    /// [`flush_due`]).
    ///
    /// [`flush_due`]: SecureNic::flush_due
    pub fn flush_all(&mut self) -> Vec<(NodeId, ByteSize)> {
        if !self.batching {
            return Vec::new();
        }
        self.batcher
            .flush_all()
            .into_iter()
            .map(|b| {
                self.open_counts.insert(b.dst, 0);
                (b.dst, self.wire.msg_mac)
            })
            .collect()
    }

    /// Pays the receive-side pad latency for a block from `src` carrying
    /// counter `ctr`, arriving at `now`. Returns when the data is usable.
    pub fn receive(&mut self, now: Cycle, src: NodeId, ctr: u64) -> Cycle {
        self.scheme.advance(now, &mut self.engine);
        let timing = self.scheme.on_recv(now, src, ctr, &mut self.engine);
        now + timing.exposed_latency(self.engine.latency())
    }

    /// ACK wire size (zero-sized when metadata is not charged).
    #[must_use]
    pub fn ack_bytes(&self) -> ByteSize {
        if self.charge_metadata {
            self.wire.ack_message()
        } else {
            ByteSize::ZERO
        }
    }

    /// Next deadline at which [`flush_due`] would close something.
    ///
    /// [`flush_due`]: SecureNic::flush_due
    #[must_use]
    pub fn next_flush_deadline(&self) -> Option<Cycle> {
        if self.batching {
            self.batcher.next_deadline()
        } else {
            None
        }
    }

    /// Mean blocks per closed batch.
    #[must_use]
    pub fn mean_batch_occupancy(&self) -> f64 {
        self.batcher.mean_occupancy()
    }

    /// Configured batch size.
    #[must_use]
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// The scheme's accumulated OTP statistics.
    #[must_use]
    pub fn otp_stats(&self) -> &mgpu_secure::OtpStats {
        self.scheme.stats()
    }

    /// Total pads issued by the engine (generation work).
    #[must_use]
    pub fn pads_issued(&self) -> u64 {
        self.engine.issued()
    }

    /// Lets the scheme process interval boundaries during idle periods.
    pub fn advance(&mut self, now: Cycle) {
        self.scheme.advance(now, &mut self.engine);
    }

    /// The scheme's interval-resolved internals for observability
    /// sampling; `None` for non-adaptive schemes.
    #[must_use]
    pub fn scheme_telemetry(&self) -> Option<SchemeTelemetry> {
        self.scheme.telemetry()
    }

    /// Cumulative `(closed full, closed by flush)` batch counts.
    #[must_use]
    pub fn batch_closes(&self) -> (u64, u64) {
        (self.batcher.closed_full(), self.batcher.closed_by_flush())
    }
}

/// Duration alias kept for doc examples.
pub type NicDuration = Duration;

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_types::OtpSchemeKind;

    fn config(scheme: OtpSchemeKind, batching: bool) -> SystemConfig {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.scheme = scheme;
        cfg.security.batching.enabled = batching;
        cfg
    }

    #[test]
    fn unbatched_block_carries_full_metadata() {
        let mut nic = SecureNic::new(NodeId::gpu(1), &config(OtpSchemeKind::Private, false));
        let p = nic.prepare_send(Cycle::new(10_000), NodeId::gpu(2));
        let total: u64 = p.parts.iter().map(|(b, _)| b.as_u64()).sum();
        // header 8 + block 64 + ctr 8 + mac 8 + id 1.
        assert_eq!(total, 89);
        assert!(p.acks);
        assert_eq!(p.counter, 0);
        // Warm pad: only the XOR cycle is exposed.
        assert_eq!(p.ready, Cycle::new(10_001));
    }

    #[test]
    fn batched_blocks_amortize_mac() {
        let mut nic = SecureNic::new(NodeId::gpu(1), &config(OtpSchemeKind::Dynamic, true));
        let dst = NodeId::gpu(2);
        let mut acks = 0;
        let mut mac_bytes = 0u64;
        for i in 0..16u64 {
            let p = nic.prepare_send(Cycle::new(10_000 + i), dst);
            if p.acks {
                acks += 1;
            }
            mac_bytes += p
                .parts
                .iter()
                .filter(|(_, c)| *c == TrafficClass::Mac)
                .map(|(b, _)| b.as_u64())
                .sum::<u64>();
        }
        // One ACK and one 8 B MAC for the whole 16-block batch.
        assert_eq!(acks, 1);
        assert_eq!(mac_bytes, 8);
    }

    #[test]
    fn batch_header_only_on_first_block() {
        let mut nic = SecureNic::new(NodeId::gpu(1), &config(OtpSchemeKind::Dynamic, true));
        let dst = NodeId::gpu(2);
        let first = nic.prepare_send(Cycle::new(10_000), dst);
        let second = nic.prepare_send(Cycle::new(10_001), dst);
        let has_header =
            |p: &PreparedBlock| p.parts.iter().any(|(_, c)| *c == TrafficClass::BatchHeader);
        assert!(has_header(&first));
        assert!(!has_header(&second));
    }

    #[test]
    fn flush_returns_pending_batches() {
        let mut nic = SecureNic::new(NodeId::gpu(1), &config(OtpSchemeKind::Dynamic, true));
        let dst = NodeId::gpu(2);
        nic.prepare_send(Cycle::new(100), dst);
        nic.prepare_send(Cycle::new(110), dst);
        assert!(nic.flush_due(Cycle::new(150)).is_empty());
        let flushed = nic.flush_due(Cycle::new(400));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].0, dst);
        // After a flush, the next block restarts a batch (header again).
        let p = nic.prepare_send(Cycle::new(500), dst);
        assert!(p.parts.iter().any(|(_, c)| *c == TrafficClass::BatchHeader));
    }

    #[test]
    fn metadata_free_ablation() {
        let mut cfg = config(OtpSchemeKind::Private, false);
        cfg.security.charge_metadata_traffic = false;
        let mut nic = SecureNic::new(NodeId::gpu(1), &cfg);
        let p = nic.prepare_send(Cycle::new(10_000), NodeId::gpu(2));
        let total: u64 = p.parts.iter().map(|(b, _)| b.as_u64()).sum();
        assert_eq!(total, 72); // data + header only
        assert!(!p.acks);
        assert_eq!(nic.ack_bytes(), ByteSize::ZERO);
        // Crypto latency still applies (ready > now).
        assert!(p.ready > Cycle::new(10_000));
    }

    #[test]
    fn receive_pays_pad_latency() {
        let mut nic = SecureNic::new(NodeId::gpu(1), &config(OtpSchemeKind::Private, false));
        // Warm window: hit -> 1 cycle.
        let usable = nic.receive(Cycle::new(10_000), NodeId::gpu(3), 0);
        assert_eq!(usable, Cycle::new(10_001));
        // Out-of-sync counter -> full latency exposed.
        let usable = nic.receive(Cycle::new(20_000), NodeId::gpu(3), 99);
        assert_eq!(usable, Cycle::new(20_041));
    }

    #[test]
    fn stats_flow_through() {
        let mut nic = SecureNic::new(NodeId::gpu(1), &config(OtpSchemeKind::Cached, false));
        nic.prepare_send(Cycle::new(10_000), NodeId::gpu(2));
        nic.receive(Cycle::new(10_000), NodeId::gpu(2), 0);
        assert_eq!(nic.otp_stats().total(mgpu_types::Direction::Send), 1);
        assert_eq!(nic.otp_stats().total(mgpu_types::Direction::Recv), 1);
        assert!(nic.pads_issued() > 0);
    }
}
