//! Sweep helpers: run benchmarks under scheme variants against a shared
//! unsecure baseline.

use crate::metrics::RunReport;
use crate::simulation::Simulation;
use mgpu_types::{
    AdversaryConfig, ObservabilityConfig, OtpSchemeKind, SecurityConfig, SystemConfig,
};
use mgpu_workloads::Benchmark;

/// One scheme's results on one benchmark, normalized to the unsecure
/// baseline of the same configuration.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Human-readable configuration label (e.g. `"private-4x"`).
    pub label: String,
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Execution time / unsecure execution time (≥ 1).
    pub normalized_time: f64,
    /// Traffic / unsecure traffic (≥ 1).
    pub traffic_ratio: f64,
    /// The underlying secure run.
    pub report: RunReport,
}

/// Runs `config` and its unsecure twin on `benchmark`, returning the
/// normalized execution time. A degenerate zero-cycle baseline (empty
/// workload) normalizes to 1.0.
///
/// # Examples
///
/// ```
/// use mgpu_system::runner::normalized_time;
/// use mgpu_types::SystemConfig;
/// use mgpu_workloads::Benchmark;
///
/// let slowdown = normalized_time(&SystemConfig::paper_4gpu(), Benchmark::Atax, 400, 42);
/// assert!(slowdown >= 1.0);
/// ```
#[must_use]
pub fn normalized_time(
    config: &SystemConfig,
    benchmark: Benchmark,
    per_gpu: usize,
    seed: u64,
) -> f64 {
    let (secure, baseline) = run_with_baseline(config, benchmark, per_gpu, seed);
    secure.normalized_time(&baseline).unwrap_or(1.0)
}

/// Runs `config` on `benchmark` together with the matching unsecure
/// baseline (identical except for the disabled security layer); returns
/// `(secure, baseline)`.
#[must_use]
pub fn run_with_baseline(
    config: &SystemConfig,
    benchmark: Benchmark,
    per_gpu: usize,
    seed: u64,
) -> (RunReport, RunReport) {
    let mut base_cfg = config.clone();
    base_cfg.security.scheme = OtpSchemeKind::Unsecure;
    base_cfg.security.batching.enabled = false;
    let baseline = Simulation::new(base_cfg, benchmark, seed).run_for_requests(per_gpu);
    let secure = Simulation::new(config.clone(), benchmark, seed).run_for_requests(per_gpu);
    (secure, baseline)
}

/// The parts of a configuration that determine the unsecure baseline:
/// everything except the security layer, the adversary schedule and the
/// (timing-neutral) observability settings.
fn baseline_view(config: &SystemConfig) -> SystemConfig {
    let mut c = config.clone();
    c.security = SecurityConfig::default();
    c.adversary = AdversaryConfig::default();
    c.observability = ObservabilityConfig::default();
    c
}

/// Runs several labeled configurations on one benchmark against a single
/// shared unsecure baseline.
///
/// All configurations must agree on every baseline-relevant field
/// (topology, bandwidths, latencies — everything outside `security` and
/// `adversary`): the shared baseline is built from the first entry, and a
/// heterogeneous list would silently normalize later entries against a
/// mismatched baseline.
///
/// # Panics
///
/// Panics if a configuration disagrees with the first on a
/// baseline-relevant field, naming the offending label.
#[must_use]
pub fn compare_schemes(
    benchmark: Benchmark,
    configs: &[(String, SystemConfig)],
    per_gpu: usize,
    seed: u64,
) -> Vec<SchemeResult> {
    compare_schemes_with(
        benchmark,
        configs,
        per_gpu,
        seed,
        crate::simulation::default_shards(),
    )
}

/// [`compare_schemes`] with an explicit shard (worker-thread) count per
/// simulation, bypassing the process-wide default. Reports are bit-for-bit
/// identical for every `shards` value; the parity tests rely on this
/// entry point to compare shard counts without racing on the process
/// global.
///
/// # Panics
///
/// Panics if a configuration disagrees with the first on a
/// baseline-relevant field, naming the offending label.
#[must_use]
pub fn compare_schemes_with(
    benchmark: Benchmark,
    configs: &[(String, SystemConfig)],
    per_gpu: usize,
    seed: u64,
    shards: u16,
) -> Vec<SchemeResult> {
    if let Some((first_label, first)) = configs.first() {
        let reference = baseline_view(first);
        for (label, cfg) in configs {
            assert!(
                baseline_view(cfg) == reference,
                "config {label:?} differs from {first_label:?} on a baseline-relevant \
                 field; compare_schemes shares one unsecure baseline across the list"
            );
        }
    }
    let baseline = {
        let mut base_cfg = configs
            .first()
            .map(|(_, c)| c.clone())
            .unwrap_or_else(SystemConfig::paper_4gpu);
        base_cfg.security.scheme = OtpSchemeKind::Unsecure;
        base_cfg.security.batching.enabled = false;
        Simulation::new(base_cfg, benchmark, seed)
            .with_shards(shards)
            .run_for_requests(per_gpu)
    };
    configs
        .iter()
        .map(|(label, cfg)| {
            let report = Simulation::new(cfg.clone(), benchmark, seed)
                .with_shards(shards)
                .run_for_requests(per_gpu);
            SchemeResult {
                label: label.clone(),
                benchmark,
                // Degenerate zero-cycle / zero-byte baselines normalize
                // to 1.0 rather than aborting the whole sweep.
                normalized_time: report.normalized_time(&baseline).unwrap_or(1.0),
                traffic_ratio: report.traffic_ratio(&baseline).unwrap_or(1.0),
                report,
            }
        })
        .collect()
}

/// Convenience constructors for the paper's standard configurations.
pub mod configs {
    use mgpu_types::{OtpSchemeKind, SystemConfig};

    /// `Private (OTP Nx)`.
    #[must_use]
    pub fn private(base: &SystemConfig, multiplier: u32) -> SystemConfig {
        let mut cfg = base.clone();
        cfg.security.scheme = OtpSchemeKind::Private;
        cfg.security.otp_multiplier = multiplier;
        cfg.security.batching.enabled = false;
        cfg
    }

    /// `Shared` with the same total buffer budget.
    #[must_use]
    pub fn shared(base: &SystemConfig, multiplier: u32) -> SystemConfig {
        let mut cfg = private(base, multiplier);
        cfg.security.scheme = OtpSchemeKind::Shared;
        cfg
    }

    /// `Cached (OTP Nx)`.
    #[must_use]
    pub fn cached(base: &SystemConfig, multiplier: u32) -> SystemConfig {
        let mut cfg = private(base, multiplier);
        cfg.security.scheme = OtpSchemeKind::Cached;
        cfg
    }

    /// The paper's `Dynamic (OTP Nx)` without batching.
    #[must_use]
    pub fn dynamic(base: &SystemConfig, multiplier: u32) -> SystemConfig {
        let mut cfg = private(base, multiplier);
        cfg.security.scheme = OtpSchemeKind::Dynamic;
        cfg
    }

    /// The paper's full proposal: `Dynamic` + metadata `Batching`.
    #[must_use]
    pub fn batching(base: &SystemConfig, multiplier: u32) -> SystemConfig {
        let mut cfg = dynamic(base, multiplier);
        cfg.security.batching.enabled = true;
        cfg
    }

    /// `Dynamic` with load-triggered repartitioning: the OTP pool is
    /// repartitioned when the observed arrival rate shifts, instead of
    /// at every fixed interval.
    #[must_use]
    pub fn load_dynamic(base: &SystemConfig, multiplier: u32) -> SystemConfig {
        let mut cfg = dynamic(base, multiplier);
        cfg.security.dynamic.load_triggered = true;
        cfg
    }

    /// `Dynamic` + `Batching` with deadline-aware batch close: open
    /// batches close early when the oldest queued block's SLO slack
    /// drops below the estimated time to fill the batch.
    #[must_use]
    pub fn deadline_batching(base: &SystemConfig, multiplier: u32) -> SystemConfig {
        let mut cfg = batching(base, multiplier);
        cfg.security.batching.deadline_close = true;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_time_is_at_least_one() {
        let cfg = configs::private(&SystemConfig::paper_4gpu(), 4);
        let t = normalized_time(&cfg, Benchmark::Gesummv, 200, 1);
        assert!(t >= 1.0, "secure cannot beat unsecure: {t}");
    }

    #[test]
    fn compare_schemes_shares_baseline() {
        let base = SystemConfig::paper_4gpu();
        let results = compare_schemes(
            Benchmark::Atax,
            &[
                ("private-4x".into(), configs::private(&base, 4)),
                ("dynamic-4x".into(), configs::dynamic(&base, 4)),
            ],
            200,
            1,
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "private-4x");
        for r in &results {
            assert!(r.normalized_time >= 1.0);
            assert!(r.traffic_ratio > 1.0);
        }
    }

    #[test]
    fn config_constructors_set_fields() {
        let base = SystemConfig::paper_4gpu();
        assert_eq!(configs::private(&base, 16).security.otp_multiplier, 16);
        assert_eq!(
            configs::shared(&base, 4).security.scheme,
            mgpu_types::OtpSchemeKind::Shared
        );
        let b = configs::batching(&base, 4);
        assert!(b.security.batching.enabled);
        assert_eq!(b.security.scheme, mgpu_types::OtpSchemeKind::Dynamic);
    }

    #[test]
    fn empty_compare_is_empty() {
        assert!(compare_schemes(Benchmark::Atax, &[], 10, 1).is_empty());
    }

    #[test]
    fn compare_accepts_heterogeneous_security_settings() {
        // Different OTP multipliers / schemes share the same baseline —
        // only non-security fields must agree.
        let base = SystemConfig::paper_4gpu();
        let results = compare_schemes(
            Benchmark::Atax,
            &[
                ("private-4x".into(), configs::private(&base, 4)),
                ("private-16x".into(), configs::private(&base, 16)),
                ("batching-4x".into(), configs::batching(&base, 4)),
            ],
            100,
            1,
        );
        assert_eq!(results.len(), 3);
    }

    #[test]
    #[should_panic(expected = "baseline-relevant")]
    fn compare_rejects_mismatched_topology() {
        let base = SystemConfig::paper_4gpu();
        let mut bigger = base.clone();
        bigger.gpu_count = 8;
        let _ = compare_schemes(
            Benchmark::Atax,
            &[
                ("4gpu".into(), configs::private(&base, 4)),
                ("8gpu".into(), configs::private(&bigger, 4)),
            ],
            50,
            1,
        );
    }
}
